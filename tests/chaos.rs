//! Chaos suite: injected faults, cancellation, timeouts, resource
//! budgets and worker panics must all surface as *typed* errors, leave
//! the temp-result registry empty, and leave the `Database` usable for
//! the next statement. Every fault here is deterministic (hit-count or
//! seeded PRNG), so a failure reproduces exactly.

use std::sync::Arc;
use std::time::Duration;

use spinner_engine::{
    Database, EngineConfig, Error, FaultConfig, FaultKind, FaultSite, QueryGuard, Value,
};
use spinner_procedural::pagerank;

/// Fresh database with the toy cyclic graph the engine tests use.
fn db_with_edges(config: EngineConfig) -> Database {
    let db = Database::new(config).unwrap();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
         (4, 1, 1.0)",
    )
    .unwrap();
    db
}

/// A simple iterative CTE touching materialize, rename and loop sites.
fn counting_cte(iterations: u64) -> String {
    format!(
        "WITH ITERATIVE t (k, v) AS (
             SELECT src, 0 FROM edges
         ITERATE SELECT k, v + 1 FROM t
         UNTIL {iterations} ITERATIONS)
         SELECT * FROM t"
    )
}

/// After any failure the registry must be empty and the same `Database`
/// must answer a follow-up query.
fn assert_recovered(db: &Database) {
    assert_eq!(
        db.temp_result_count(),
        0,
        "temp registry must be empty after failure"
    );
    let batch = db.query("SELECT COUNT(*) FROM edges").unwrap();
    assert_eq!(batch.rows()[0][0], spinner_engine::Value::Int(5));
}

#[test]
fn injected_fault_at_each_site_is_a_clean_error() {
    // (site, expected error-site string, query that reaches the site)
    let cases = [
        (FaultSite::Exchange, "exchange", pagerank(5, false).cte),
        (FaultSite::Materialize, "materialize", counting_cte(5)),
        (FaultSite::Rename, "rename", counting_cte(5)),
        (FaultSite::LoopIteration, "loop", counting_cte(5)),
    ];
    for (site, name, sql) in cases {
        // Load data under a clean config, then arm the fault, so setup
        // statements cannot consume the single-shot trigger.
        let mut db = db_with_edges(EngineConfig::default());
        db.set_config(EngineConfig::default().with_fault(FaultConfig::fail_nth(site, 1)))
            .unwrap();
        let err = db.query(&sql).unwrap_err();
        assert_eq!(
            err,
            Error::FaultInjected {
                site: name.to_string()
            },
            "site {name}: expected the injected fault to surface"
        );
        assert_recovered(&db);
        // The Nth trigger fired once; the same query now succeeds.
        db.query(&sql)
            .unwrap_or_else(|e| panic!("site {name}: retry failed: {e}"));
    }
}

#[test]
fn guard_timeout_stops_pagerank_mid_iteration() {
    // A seeded always-fire delay makes each loop iteration take ≥10 ms,
    // so a 50 ms deadline trips deterministically mid-loop instead of
    // depending on dataset size.
    let config = EngineConfig::default().with_fault(FaultConfig::seeded(
        FaultSite::LoopIteration,
        FaultKind::DelayMs(10),
        1,
        1_000_000,
    ));
    let db = db_with_edges(config);
    db.take_stats();
    let guard = QueryGuard::unlimited().with_timeout_ms(50);
    let err = db
        .query_with_guard(&pagerank(200, false).cte, &guard)
        .unwrap_err();
    match err {
        Error::Timeout {
            elapsed_ms,
            limit_ms,
        } => {
            assert_eq!(limit_ms, 50);
            assert!(elapsed_ms >= 50, "elapsed {elapsed_ms} < limit");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    let iterations = db.take_stats().iterations;
    assert!(
        iterations < 200,
        "deadline must stop the loop early, ran {iterations} iterations"
    );
    assert_recovered(&db);
}

#[test]
fn config_timeout_applies_to_plain_execute() {
    let config = EngineConfig::default()
        .with_query_timeout_ms(50)
        .with_fault(FaultConfig::seeded(
            FaultSite::LoopIteration,
            FaultKind::DelayMs(10),
            2,
            1_000_000,
        ));
    let db = db_with_edges(config);
    let err = db.query(&counting_cte(200)).unwrap_err();
    assert!(
        matches!(err, Error::Timeout { limit_ms: 50, .. }),
        "got {err:?}"
    );
    assert_recovered(&db);
}

#[test]
fn cancel_from_another_thread_stops_the_query() {
    let config = EngineConfig::default().with_fault(FaultConfig::seeded(
        FaultSite::LoopIteration,
        FaultKind::DelayMs(5),
        3,
        1_000_000,
    ));
    let db = db_with_edges(config);
    let guard = Arc::new(QueryGuard::unlimited());
    let canceller = {
        let guard = Arc::clone(&guard);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            guard.cancel();
        })
    };
    let err = db
        .query_with_guard(&counting_cte(100_000), &guard)
        .unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err, Error::Cancelled);
    assert!(guard.is_cancelled());
    assert_recovered(&db);
}

#[test]
fn row_budget_trips_resource_exhausted() {
    let db = db_with_edges(EngineConfig::default());
    // Each iteration materializes the 4-node working table; a 10-row
    // budget survives setup plus at most a couple of iterations.
    let guard = QueryGuard::unlimited().with_max_rows_materialized(10);
    let err = db
        .query_with_guard(&counting_cte(1000), &guard)
        .unwrap_err();
    match err {
        Error::ResourceExhausted {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "rows_materialized");
            assert_eq!(limit, 10);
            assert!(used >= limit, "used {used} must be >= limit {limit}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

#[test]
fn rows_moved_budget_applies_to_exchanges() {
    // PageRank's joins shuffle rows every iteration; a tiny movement
    // budget trips via the session config (no explicit guard needed).
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(EngineConfig::default().with_max_rows_moved(3))
        .unwrap();
    let err = db.query(&pagerank(50, false).cte).unwrap_err();
    match err {
        Error::ResourceExhausted {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "rows_moved");
            assert!(used >= limit);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

#[test]
fn intermediate_bytes_budget_trips() {
    // Pin the fail-fast path: with spilling explicitly off (even under
    // the CI forced-spill env) the cumulative budget must trip instead
    // of degrading to disk. tests/spill.rs covers the spill-enabled
    // semantics.
    let config = EngineConfig {
        spill_threshold_bytes: None,
        ..EngineConfig::default()
    };
    let db = db_with_edges(config);
    let guard = QueryGuard::unlimited().with_max_intermediate_bytes(500);
    let err = db
        .query_with_guard(&counting_cte(1000), &guard)
        .unwrap_err();
    match err {
        Error::ResourceExhausted {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "intermediate_bytes");
            assert!(used >= limit);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

#[test]
fn worker_panic_is_isolated_and_typed() {
    let mut db = db_with_edges(EngineConfig::default().with_parallel_partitions(true));
    db.set_config(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_fault(FaultConfig::panic_nth(FaultSite::Worker, 1)),
    )
    .unwrap();
    let err = db.query(&counting_cte(5)).unwrap_err();
    match err {
        Error::WorkerPanicked { partition, message } => {
            assert!(partition < 4, "partition index {partition} out of range");
            assert!(
                message.contains("injected panic at worker"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The panic was confined to the worker: the process is alive, the
    // registry is clean, and the same database keeps answering.
    assert_recovered(&db);
    db.query(&counting_cte(5)).unwrap();
}

#[test]
fn worker_panic_under_seeded_storm_never_poisons() {
    // A 30%-per-hit panic storm across many statements: every failure
    // must be typed, never a propagated panic or poisoned lock.
    let mut db = db_with_edges(EngineConfig::default().with_parallel_partitions(true));
    db.set_config(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_fault(FaultConfig::seeded(
                FaultSite::Worker,
                FaultKind::Panic,
                99,
                300_000,
            )),
    )
    .unwrap();
    let mut failures = 0;
    for _ in 0..20 {
        match db.query(&counting_cte(3)) {
            Ok(_) => {}
            Err(Error::WorkerPanicked { .. }) | Err(Error::Cancelled) => failures += 1,
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
        assert_eq!(db.temp_result_count(), 0);
    }
    assert!(
        failures > 0,
        "a 30% panic rate must hit at least once in 20 runs"
    );
    // Disarm the storm; the surviving database must be fully usable.
    db.set_config(EngineConfig::default().with_parallel_partitions(true))
        .unwrap();
    assert_recovered(&db);
}

#[test]
fn iteration_limit_fires_under_delta_termination_in_parallel() {
    let db = db_with_edges(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_max_iterations(7),
    );
    db.take_stats();
    // Every iteration rewrites every row, so the delta never reaches 0
    // and the safety limit must fire.
    let err = db
        .query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL DELTA < 1)
             SELECT * FROM t",
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::IterationLimitExceeded { limit: 7, .. }),
        "got {err:?}"
    );
    // The stats reflect the partial run: exactly `limit` completed
    // iterations before the limit check stopped the loop.
    assert_eq!(db.take_stats().iterations, 7);
    assert_recovered(&db);
}

#[test]
fn iteration_limit_fires_under_data_termination_in_parallel() {
    let db = db_with_edges(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_max_iterations(7),
    );
    db.take_stats();
    // v only grows, so the data condition `v < 0` never holds.
    let err = db
        .query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL (v < 0))
             SELECT * FROM t",
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::IterationLimitExceeded { limit: 7, .. }),
        "got {err:?}"
    );
    assert_eq!(db.take_stats().iterations, 7);
    assert_recovered(&db);
}

#[test]
fn faults_injected_counter_tracks_fired_faults() {
    let mut db = db_with_edges(EngineConfig::default());
    db.take_stats();
    db.set_config(
        EngineConfig::default().with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 3)),
    )
    .unwrap();
    let err = db.query(&counting_cte(10)).unwrap_err();
    assert!(matches!(err, Error::FaultInjected { .. }));
    let stats = db.take_stats();
    assert_eq!(stats.faults_injected, 1);
    // Two full iterations completed before the third one's fault fired.
    assert_eq!(stats.iterations, 2);
}

// ---------------------------------------------------------------------------
// Recovery: iteration-level checkpointing, transient retry, and mid-loop
// rollback-and-replay. Every schedule below is deterministic (Nth or
// seeded), so a failure reproduces exactly.
// ---------------------------------------------------------------------------

/// Rows of a batch, sorted, for order-insensitive comparison.
fn sorted_rows(batch: &spinner_engine::Batch) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = batch.rows().iter().map(|r| r.to_vec()).collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

/// The acceptance scenario: a fault mid-loop (iteration 4, past the
/// checkpoint interval of 2) rolls the loop back to the iteration-2
/// checkpoint and replays; the final rows are identical to a fault-free
/// run and the stats report the full recovery story.
#[test]
fn mid_loop_fault_recovers_identically_after_rollback() {
    let sql = pagerank(8, false).cte;
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        EngineConfig::default()
            .with_checkpoint_interval(2)
            .with_max_loop_recoveries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 4)),
    )
    .unwrap();
    db.take_stats();
    let batch = db.query(&sql).unwrap();
    assert_eq!(
        sorted_rows(&batch),
        sorted_rows(&expected),
        "recovered run must be row-identical to the fault-free run"
    );
    let stats = db.take_stats();
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(stats.loop_rollbacks, 1);
    assert_eq!(
        stats.iterations_replayed, 2,
        "fault at iteration 4, checkpoint at 2: iterations 3..=4 replay"
    );
    assert!(stats.checkpoints_taken >= 2, "entry + periodic checkpoints");
    assert!(stats.checkpoint_bytes > 0);
    assert_recovered(&db);
}

/// Join-state-cache invalidation across rollback-and-replay (PR 5): the
/// invariant build for PR-VS is hashed on iteration 1, before the
/// iteration-2 checkpoint; when a fault at iteration 4 rolls the loop
/// back and the replay crosses the original build point, the restored
/// registry state must NOT be probed through the pre-fault cache entry —
/// `restore_checkpoint` clears the cache, so the replay rebuilds and the
/// rows match a fault-free run exactly.
#[test]
fn join_cache_rebuilt_after_rollback_and_replay() {
    let sql = pagerank(8, true).cte;
    let clean_db = db_with_edges(EngineConfig::default());
    clean_db
        .execute("CREATE TABLE vertexstatus (node INT, status INT)")
        .unwrap();
    clean_db
        .execute("INSERT INTO vertexstatus VALUES (1, 1), (2, 1), (3, 0), (4, 1)")
        .unwrap();
    let expected = clean_db.query(&sql).unwrap();
    clean_db.take_stats();

    let mut db = db_with_edges(EngineConfig::default());
    db.execute("CREATE TABLE vertexstatus (node INT, status INT)")
        .unwrap();
    db.execute("INSERT INTO vertexstatus VALUES (1, 1), (2, 1), (3, 0), (4, 1)")
        .unwrap();
    // Threshold pinned high so the reuse assertion survives CI's
    // forced-spill env (eviction-driven invalidation lives in
    // tests/spill.rs).
    db.set_config(
        EngineConfig::default()
            .with_spill_threshold_bytes(u64::MAX)
            .with_checkpoint_interval(2)
            .with_max_loop_recoveries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 4)),
    )
    .unwrap();
    db.take_stats();
    let batch = db.query(&sql).unwrap();
    assert_eq!(
        sorted_rows(&batch),
        sorted_rows(&expected),
        "replaying through the build point must not serve a stale build"
    );
    let stats = db.take_stats();
    assert_eq!(stats.loop_rollbacks, 1);
    assert!(
        stats.join_builds >= 2,
        "rollback must invalidate the cache and force a rebuild, \
         got {} builds",
        stats.join_builds
    );
    assert!(
        stats.join_builds_reused >= 1,
        "iterations after the rebuild re-probe the fresh entry"
    );
    assert_recovered(&db);
}

/// Same scenario through `EXPLAIN ANALYZE`: the profile's loop node must
/// carry the recovery story (rollback count, replayed range, snapshot
/// bytes) so the operator can see what happened.
#[test]
fn explain_analyze_reports_the_recovery_story() {
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        EngineConfig::default()
            .with_checkpoint_interval(2)
            .with_max_loop_recoveries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 4)),
    )
    .unwrap();
    let profile = db.explain_analyze(&pagerank(8, false).cte).unwrap();
    let loops = profile.loops();
    assert_eq!(loops.len(), 1);
    let rec = &loops[0].recovery;
    assert_eq!(rec.rollbacks, 1);
    assert_eq!(rec.replayed_ranges, vec![(3, 4)], "replay covers 3..=4");
    assert!(rec.checkpoints_taken >= 2);
    assert!(rec.bytes_snapshotted > 0);
    // The recovery block survives the JSON round trip.
    let back = spinner_engine::QueryProfile::from_json(&profile.to_json()).unwrap();
    assert_eq!(back, profile);
    // The rendering mentions it.
    assert!(
        profile.render().contains("recovery:"),
        "{}",
        profile.render()
    );
}

/// A transient worker fault is absorbed in place by the per-partition
/// retry — no rollback needed, results identical.
#[test]
fn worker_fault_is_absorbed_by_partition_retry() {
    let sql = counting_cte(6);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    for kind in [FaultKind::Error, FaultKind::Panic] {
        let mut db = db_with_edges(EngineConfig::default().with_parallel_partitions(true));
        db.set_config(
            EngineConfig::default()
                .with_parallel_partitions(true)
                .with_max_partition_retries(1)
                .with_fault(FaultConfig {
                    site: FaultSite::Worker,
                    kind,
                    trigger: spinner_engine::FaultTrigger::Nth(5),
                }),
        )
        .unwrap();
        db.take_stats();
        let batch = db.query(&sql).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(sorted_rows(&batch), sorted_rows(&expected));
        let stats = db.take_stats();
        assert_eq!(stats.loop_rollbacks, 0, "{kind:?}: retry, not rollback");
        assert!(
            stats.partition_retries + stats.step_retries >= 1,
            "{kind:?}: the fault must have been retried"
        );
    }
}

/// Satellite (a): a fault killing the checkpoint itself must never
/// corrupt live loop state. Without recovery it surfaces typed; with
/// recovery the loop replays to the exact fault-free rows.
#[test]
fn failed_checkpoint_never_corrupts_live_loop_state() {
    let sql = counting_cte(6);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    // Recovery off: the checkpoint fault surfaces as a clean typed error.
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        EngineConfig::default()
            .with_checkpoint_interval(1)
            .with_fault(FaultConfig::fail_nth(FaultSite::Checkpoint, 3)),
    )
    .unwrap();
    let err = db.query(&sql).unwrap_err();
    assert_eq!(
        err,
        Error::FaultInjected {
            site: "checkpoint".to_string()
        }
    );
    assert_recovered(&db);
    // Recovery on: the killed checkpoint rolls back and replays; a
    // corrupted snapshot or live table would change the final rows.
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        EngineConfig::default()
            .with_checkpoint_interval(1)
            .with_max_loop_recoveries(1)
            .with_fault(FaultConfig::fail_nth(FaultSite::Checkpoint, 3)),
    )
    .unwrap();
    db.take_stats();
    let batch = db.query(&sql).unwrap();
    assert_eq!(sorted_rows(&batch), sorted_rows(&expected));
    assert_eq!(db.take_stats().loop_rollbacks, 1);
}

/// Satellite (a), restore side: a fault during the rollback's restore
/// consumes another recovery attempt (all-or-nothing restore), and the
/// budget bounds the total attempts.
#[test]
fn fault_during_restore_consumes_another_recovery_attempt() {
    let sql = counting_cte(6);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let armed = |recoveries: u64| {
        EngineConfig::default()
            .with_checkpoint_interval(1)
            .with_max_loop_recoveries(recoveries)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 4))
            .with_fault(FaultConfig::fail_nth(FaultSite::Recovery, 1))
    };
    // Budget 2: the first restore is killed, the second lands.
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(armed(2)).unwrap();
    db.take_stats();
    let batch = db.query(&sql).unwrap();
    assert_eq!(sorted_rows(&batch), sorted_rows(&expected));
    let stats = db.take_stats();
    assert_eq!(
        stats.loop_rollbacks, 1,
        "the killed restore must not count as a completed rollback"
    );
    // Budget 1: the killed restore exhausts the budget, typed error.
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(armed(1)).unwrap();
    let err = db.query(&sql).unwrap_err();
    match err {
        Error::RecoveryExhausted {
            recoveries, source, ..
        } => {
            assert_eq!(recoveries, 1);
            assert!(source.is_retryable(), "source was transient: {source:?}");
        }
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

/// A fault that fires on *every* replay exhausts the recovery budget and
/// surfaces as `RecoveryExhausted` wrapping the underlying fault.
#[test]
fn persistent_loop_fault_exhausts_recovery_with_typed_error() {
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        EngineConfig::default()
            .with_checkpoint_interval(1)
            .with_max_loop_recoveries(3)
            .with_fault(FaultConfig::seeded(
                FaultSite::LoopIteration,
                FaultKind::Error,
                7,
                1_000_000, // always fire: every attempt of iteration 1 dies
            )),
    )
    .unwrap();
    db.take_stats();
    let err = db.query(&counting_cte(6)).unwrap_err();
    match err {
        Error::RecoveryExhausted { recoveries, .. } => assert_eq!(recoveries, 3),
        other => panic!("expected RecoveryExhausted, got {other:?}"),
    }
    let stats = db.take_stats();
    assert_eq!(stats.loop_rollbacks, 3, "one rollback per recovery attempt");
    assert_recovered(&db);
}

/// Satellite (d): an every-iteration fault storm (checkpoint_interval=1,
/// seeded faults armed at every loop-path site) must either converge to
/// the exact fault-free answer or fail with `RecoveryExhausted` — never
/// a wrong answer, an untyped error, or a hang.
#[test]
fn every_iteration_fault_storm_converges_or_fails_typed() {
    let sql = counting_cte(6);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let mut converged = 0;
    for seed in 0..12u64 {
        let mut db = db_with_edges(EngineConfig::default());
        db.set_config(
            EngineConfig::default()
                .with_checkpoint_interval(1)
                .with_max_partition_retries(2)
                .with_max_loop_recoveries(4)
                .with_fault(FaultConfig::seeded(
                    FaultSite::LoopIteration,
                    FaultKind::Error,
                    seed,
                    200_000,
                ))
                .with_fault(FaultConfig::seeded(
                    FaultSite::Checkpoint,
                    FaultKind::Error,
                    seed.wrapping_add(101),
                    200_000,
                ))
                .with_fault(FaultConfig::seeded(
                    FaultSite::Recovery,
                    FaultKind::Error,
                    seed.wrapping_add(202),
                    200_000,
                ))
                .with_fault(FaultConfig::seeded(
                    FaultSite::Worker,
                    FaultKind::Error,
                    seed.wrapping_add(303),
                    100_000,
                )),
        )
        .unwrap();
        match db.query(&sql) {
            Ok(batch) => {
                assert_eq!(
                    sorted_rows(&batch),
                    sorted_rows(&expected),
                    "seed {seed}: storm survivor returned a WRONG answer"
                );
                converged += 1;
            }
            Err(Error::RecoveryExhausted { .. }) => {}
            Err(other) => panic!("seed {seed}: unexpected failure kind: {other:?}"),
        }
        assert_eq!(db.temp_result_count(), 0, "seed {seed}: registry leak");
    }
    assert!(
        converged > 0,
        "at 20% fault rates some seeds must still converge"
    );
}

/// Satellite (f): the fault matrix the CI chaos job runs — partitions=4,
/// parallel workers on, checkpoint_interval in {0, 1, 5}, one
/// deterministic fault per site. With retries and recovery enabled, every
/// single-fault schedule must finish with the exact fault-free rows.
#[test]
fn fault_matrix_across_checkpoint_intervals() {
    let sql = counting_cte(8);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let faults = [
        FaultConfig::fail_nth(FaultSite::Exchange, 3),
        FaultConfig::fail_nth(FaultSite::Materialize, 2),
        FaultConfig::fail_nth(FaultSite::Rename, 2),
        FaultConfig::fail_nth(FaultSite::LoopIteration, 3),
        FaultConfig::fail_nth(FaultSite::Worker, 5),
        FaultConfig::panic_nth(FaultSite::Worker, 5),
        FaultConfig::fail_nth(FaultSite::Checkpoint, 2),
        FaultConfig::fail_nth(FaultSite::Recovery, 1),
    ];
    for interval in [0u64, 1, 5] {
        for fault in &faults {
            let mut db = db_with_edges(EngineConfig::default());
            db.set_config(
                EngineConfig::default()
                    .with_partitions(4)
                    .with_parallel_partitions(true)
                    .with_checkpoint_interval(interval)
                    .with_max_partition_retries(2)
                    .with_max_loop_recoveries(3)
                    .with_fault(fault.clone()),
            )
            .unwrap();
            let batch = db
                .query(&sql)
                .unwrap_or_else(|e| panic!("interval={interval}, fault={fault:?}: {e}"));
            assert_eq!(
                sorted_rows(&batch),
                sorted_rows(&expected),
                "interval={interval}, fault={fault:?}: wrong rows"
            );
            assert_eq!(db.temp_result_count(), 0);
        }
    }
}

#[test]
fn invalid_configs_are_rejected_up_front() {
    assert!(matches!(
        Database::new(EngineConfig::default().with_partitions(0)),
        Err(Error::InvalidConfig(_))
    ));
    assert!(matches!(
        Database::new(EngineConfig::default().with_query_timeout_ms(0)),
        Err(Error::InvalidConfig(_))
    ));
    let mut db = Database::new(EngineConfig::default()).unwrap();
    let err = db
        .set_config(EngineConfig::default().with_max_iterations(0))
        .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig(_)));
    // The rejected config was not installed.
    assert_eq!(db.config().max_iterations, 10_000);
}
