//! Chaos suite: injected faults, cancellation, timeouts, resource
//! budgets and worker panics must all surface as *typed* errors, leave
//! the temp-result registry empty, and leave the `Database` usable for
//! the next statement. Every fault here is deterministic (hit-count or
//! seeded PRNG), so a failure reproduces exactly.

use std::sync::Arc;
use std::time::Duration;

use spinner_engine::{
    Database, EngineConfig, Error, FaultConfig, FaultKind, FaultSite, QueryGuard,
};
use spinner_procedural::pagerank;

/// Fresh database with the toy cyclic graph the engine tests use.
fn db_with_edges(config: EngineConfig) -> Database {
    let db = Database::new(config).unwrap();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
         (4, 1, 1.0)",
    )
    .unwrap();
    db
}

/// A simple iterative CTE touching materialize, rename and loop sites.
fn counting_cte(iterations: u64) -> String {
    format!(
        "WITH ITERATIVE t (k, v) AS (
             SELECT src, 0 FROM edges
         ITERATE SELECT k, v + 1 FROM t
         UNTIL {iterations} ITERATIONS)
         SELECT * FROM t"
    )
}

/// After any failure the registry must be empty and the same `Database`
/// must answer a follow-up query.
fn assert_recovered(db: &Database) {
    assert_eq!(
        db.temp_result_count(),
        0,
        "temp registry must be empty after failure"
    );
    let batch = db.query("SELECT COUNT(*) FROM edges").unwrap();
    assert_eq!(batch.rows()[0][0], spinner_engine::Value::Int(5));
}

#[test]
fn injected_fault_at_each_site_is_a_clean_error() {
    // (site, expected error-site string, query that reaches the site)
    let cases = [
        (FaultSite::Exchange, "exchange", pagerank(5, false).cte),
        (FaultSite::Materialize, "materialize", counting_cte(5)),
        (FaultSite::Rename, "rename", counting_cte(5)),
        (FaultSite::LoopIteration, "loop", counting_cte(5)),
    ];
    for (site, name, sql) in cases {
        // Load data under a clean config, then arm the fault, so setup
        // statements cannot consume the single-shot trigger.
        let mut db = db_with_edges(EngineConfig::default());
        db.set_config(EngineConfig::default().with_fault(FaultConfig::fail_nth(site, 1)))
            .unwrap();
        let err = db.query(&sql).unwrap_err();
        assert_eq!(
            err,
            Error::FaultInjected {
                site: name.to_string()
            },
            "site {name}: expected the injected fault to surface"
        );
        assert_recovered(&db);
        // The Nth trigger fired once; the same query now succeeds.
        db.query(&sql)
            .unwrap_or_else(|e| panic!("site {name}: retry failed: {e}"));
    }
}

#[test]
fn guard_timeout_stops_pagerank_mid_iteration() {
    // A seeded always-fire delay makes each loop iteration take ≥10 ms,
    // so a 50 ms deadline trips deterministically mid-loop instead of
    // depending on dataset size.
    let config = EngineConfig::default().with_fault(FaultConfig::seeded(
        FaultSite::LoopIteration,
        FaultKind::DelayMs(10),
        1,
        1_000_000,
    ));
    let db = db_with_edges(config);
    db.take_stats();
    let guard = QueryGuard::unlimited().with_timeout_ms(50);
    let err = db
        .query_with_guard(&pagerank(200, false).cte, &guard)
        .unwrap_err();
    match err {
        Error::Timeout {
            elapsed_ms,
            limit_ms,
        } => {
            assert_eq!(limit_ms, 50);
            assert!(elapsed_ms >= 50, "elapsed {elapsed_ms} < limit");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    let iterations = db.take_stats().iterations;
    assert!(
        iterations < 200,
        "deadline must stop the loop early, ran {iterations} iterations"
    );
    assert_recovered(&db);
}

#[test]
fn config_timeout_applies_to_plain_execute() {
    let config = EngineConfig::default()
        .with_query_timeout_ms(50)
        .with_fault(FaultConfig::seeded(
            FaultSite::LoopIteration,
            FaultKind::DelayMs(10),
            2,
            1_000_000,
        ));
    let db = db_with_edges(config);
    let err = db.query(&counting_cte(200)).unwrap_err();
    assert!(
        matches!(err, Error::Timeout { limit_ms: 50, .. }),
        "got {err:?}"
    );
    assert_recovered(&db);
}

#[test]
fn cancel_from_another_thread_stops_the_query() {
    let config = EngineConfig::default().with_fault(FaultConfig::seeded(
        FaultSite::LoopIteration,
        FaultKind::DelayMs(5),
        3,
        1_000_000,
    ));
    let db = db_with_edges(config);
    let guard = Arc::new(QueryGuard::unlimited());
    let canceller = {
        let guard = Arc::clone(&guard);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(25));
            guard.cancel();
        })
    };
    let err = db
        .query_with_guard(&counting_cte(100_000), &guard)
        .unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err, Error::Cancelled);
    assert!(guard.is_cancelled());
    assert_recovered(&db);
}

#[test]
fn row_budget_trips_resource_exhausted() {
    let db = db_with_edges(EngineConfig::default());
    // Each iteration materializes the 4-node working table; a 10-row
    // budget survives setup plus at most a couple of iterations.
    let guard = QueryGuard::unlimited().with_max_rows_materialized(10);
    let err = db
        .query_with_guard(&counting_cte(1000), &guard)
        .unwrap_err();
    match err {
        Error::ResourceExhausted {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "rows_materialized");
            assert_eq!(limit, 10);
            assert!(used >= limit, "used {used} must be >= limit {limit}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

#[test]
fn rows_moved_budget_applies_to_exchanges() {
    // PageRank's joins shuffle rows every iteration; a tiny movement
    // budget trips via the session config (no explicit guard needed).
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(EngineConfig::default().with_max_rows_moved(3))
        .unwrap();
    let err = db.query(&pagerank(50, false).cte).unwrap_err();
    match err {
        Error::ResourceExhausted {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "rows_moved");
            assert!(used >= limit);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

#[test]
fn intermediate_bytes_budget_trips() {
    let db = db_with_edges(EngineConfig::default());
    let guard = QueryGuard::unlimited().with_max_intermediate_bytes(500);
    let err = db
        .query_with_guard(&counting_cte(1000), &guard)
        .unwrap_err();
    match err {
        Error::ResourceExhausted {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "intermediate_bytes");
            assert!(used >= limit);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_recovered(&db);
}

#[test]
fn worker_panic_is_isolated_and_typed() {
    let mut db = db_with_edges(EngineConfig::default().with_parallel_partitions(true));
    db.set_config(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_fault(FaultConfig::panic_nth(FaultSite::Worker, 1)),
    )
    .unwrap();
    let err = db.query(&counting_cte(5)).unwrap_err();
    match err {
        Error::WorkerPanicked { partition, message } => {
            assert!(partition < 4, "partition index {partition} out of range");
            assert!(
                message.contains("injected panic at worker"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The panic was confined to the worker: the process is alive, the
    // registry is clean, and the same database keeps answering.
    assert_recovered(&db);
    db.query(&counting_cte(5)).unwrap();
}

#[test]
fn worker_panic_under_seeded_storm_never_poisons() {
    // A 30%-per-hit panic storm across many statements: every failure
    // must be typed, never a propagated panic or poisoned lock.
    let mut db = db_with_edges(EngineConfig::default().with_parallel_partitions(true));
    db.set_config(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_fault(FaultConfig::seeded(
                FaultSite::Worker,
                FaultKind::Panic,
                99,
                300_000,
            )),
    )
    .unwrap();
    let mut failures = 0;
    for _ in 0..20 {
        match db.query(&counting_cte(3)) {
            Ok(_) => {}
            Err(Error::WorkerPanicked { .. }) | Err(Error::Cancelled) => failures += 1,
            Err(other) => panic!("unexpected error kind: {other:?}"),
        }
        assert_eq!(db.temp_result_count(), 0);
    }
    assert!(
        failures > 0,
        "a 30% panic rate must hit at least once in 20 runs"
    );
    // Disarm the storm; the surviving database must be fully usable.
    db.set_config(EngineConfig::default().with_parallel_partitions(true))
        .unwrap();
    assert_recovered(&db);
}

#[test]
fn iteration_limit_fires_under_delta_termination_in_parallel() {
    let db = db_with_edges(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_max_iterations(7),
    );
    db.take_stats();
    // Every iteration rewrites every row, so the delta never reaches 0
    // and the safety limit must fire.
    let err = db
        .query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL DELTA < 1)
             SELECT * FROM t",
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::IterationLimitExceeded { limit: 7, .. }),
        "got {err:?}"
    );
    // The stats reflect the partial run: exactly `limit` completed
    // iterations before the limit check stopped the loop.
    assert_eq!(db.take_stats().iterations, 7);
    assert_recovered(&db);
}

#[test]
fn iteration_limit_fires_under_data_termination_in_parallel() {
    let db = db_with_edges(
        EngineConfig::default()
            .with_parallel_partitions(true)
            .with_max_iterations(7),
    );
    db.take_stats();
    // v only grows, so the data condition `v < 0` never holds.
    let err = db
        .query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL (v < 0))
             SELECT * FROM t",
        )
        .unwrap_err();
    assert!(
        matches!(err, Error::IterationLimitExceeded { limit: 7, .. }),
        "got {err:?}"
    );
    assert_eq!(db.take_stats().iterations, 7);
    assert_recovered(&db);
}

#[test]
fn faults_injected_counter_tracks_fired_faults() {
    let mut db = db_with_edges(EngineConfig::default());
    db.take_stats();
    db.set_config(
        EngineConfig::default().with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 3)),
    )
    .unwrap();
    let err = db.query(&counting_cte(10)).unwrap_err();
    assert!(matches!(err, Error::FaultInjected { .. }));
    let stats = db.take_stats();
    assert_eq!(stats.faults_injected, 1);
    // Two full iterations completed before the third one's fault fired.
    assert_eq!(stats.iterations, 2);
}

#[test]
fn invalid_configs_are_rejected_up_front() {
    assert!(matches!(
        Database::new(EngineConfig::default().with_partitions(0)),
        Err(Error::InvalidConfig(_))
    ));
    assert!(matches!(
        Database::new(EngineConfig::default().with_query_timeout_ms(0)),
        Err(Error::InvalidConfig(_))
    ));
    let mut db = Database::new(EngineConfig::default()).unwrap();
    let err = db
        .set_config(EngineConfig::default().with_max_iterations(0))
        .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig(_)));
    // The rejected config was not installed.
    assert_eq!(db.config().max_iterations, 10_000);
}
