//! Property-based tests (proptest): invariants that must hold for *random*
//! graphs, values and configurations — not just the fixtures the unit
//! tests pin down.

use proptest::prelude::*;
use spinner_common::Value;
use spinner_datagen::{load_edges_into, load_vertex_status_into, oracle, GraphSpec};
use spinner_engine::{Database, EngineConfig, FaultConfig, FaultSite, RecoveryPolicy};
use spinner_procedural::{connected_components, ff, pagerank, run_script, sssp};

/// Strategy: a small random graph spec.
fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (8usize..60, 0u64..1_000_000, 1u32..20).prop_flat_map(|(nodes, seed, max_weight)| {
        (Just(nodes), nodes..nodes * 5, Just(seed), Just(max_weight)).prop_map(
            |(nodes, edges, seed, max_weight)| GraphSpec {
                nodes,
                edges,
                seed,
                max_weight,
            },
        )
    })
}

fn load(spec: &GraphSpec, config: EngineConfig) -> Database {
    let db = Database::new(config).unwrap();
    load_edges_into(&db, "edges", spec).unwrap();
    db
}

fn load_with_vs(spec: &GraphSpec, config: EngineConfig, with_vs: bool) -> Database {
    let db = load(spec, config);
    if with_vs {
        load_vertex_status_into(&db, "vertexstatus", spec, 0.8).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The rename fast path and the merge path must agree on any graph and
    /// any (keyed, duplicate-free) iterative computation.
    #[test]
    fn rename_and_merge_paths_agree(spec in graph_spec(), iters in 1u64..8) {
        let sql = format!(
            "WITH ITERATIVE t (k, a, b) AS (
                 SELECT DISTINCT src, CAST(src AS FLOAT), 1.0 FROM edges
             ITERATE
                 SELECT k, a + b, a - b FROM t
             UNTIL {iters} ITERATIONS)
             SELECT k, a, b FROM t ORDER BY k"
        );
        let fast = load(&spec, EngineConfig::default()).query(&sql).unwrap();
        let slow = load(&spec, EngineConfig::default().with_minimize_data_movement(false))
            .query(&sql)
            .unwrap();
        prop_assert_eq!(fast.rows(), slow.rows());
    }

    /// SSSP run to convergence equals Dijkstra on any random graph.
    #[test]
    fn sssp_matches_dijkstra(spec in graph_spec()) {
        let db = load(&spec, EngineConfig::default());
        let w = sssp(spec.nodes as u64 + 1, 1, false);
        let batch = db.query(&w.cte).unwrap();
        let dist = oracle::dijkstra(&spec, 1);
        for row in batch.rows() {
            let node = row[0].as_i64().unwrap() as usize;
            let got = row[1].as_f64().unwrap();
            match dist[node] {
                Some(d) => prop_assert!((got - d).abs() < 1e-6,
                    "node {}: sql {} vs dijkstra {}", node, got, d),
                None => prop_assert_eq!(got, 9_999_999.0),
            }
        }
    }

    /// Predicate push-down never changes FF results, for any selectivity.
    #[test]
    fn ff_pushdown_preserves_results(
        spec in graph_spec(),
        mod_x in 1i64..50,
        iters in 1u64..10,
    ) {
        let w = ff(iters, mod_x);
        let on = load(&spec, EngineConfig::default()).query(&w.cte).unwrap();
        let off = load(&spec, EngineConfig::default().with_predicate_pushdown(false))
            .query(&w.cte)
            .unwrap();
        prop_assert_eq!(on.rows(), off.rows());
    }

    /// The three execution strategies agree on FF for random graphs.
    #[test]
    fn strategies_agree_on_random_graphs(spec in graph_spec(), iters in 1u64..6) {
        let w = ff(iters, 5);
        let db = load(&spec, EngineConfig::default());
        let native = db.query(&w.cte).unwrap();
        let proc_rows = run_script(&db, &w.procedure).unwrap().rows;
        prop_assert_eq!(native.rows(), proc_rows.rows());
    }

    /// Connected components by label propagation finds exactly the
    /// constructed components: striped node ids mean node n belongs to
    /// component (n-1) % k, whose minimum id — the converged label — is
    /// ((n-1) % k) + 1.
    #[test]
    fn connected_components_match_construction(
        nodes in 20usize..120,
        k in 1usize..6,
        seed in 0u64..100_000,
    ) {
        let spec = GraphSpec { nodes, edges: nodes * 2, seed, max_weight: 5 };
        let rows = spec.generate_symmetric_components(k);
        let db = Database::default();
        let schema = spinner_common::Schema::new(vec![
            spinner_common::Field::new("src", spinner_common::DataType::Int),
            spinner_common::Field::new("dst", spinner_common::DataType::Int),
            spinner_common::Field::new("weight", spinner_common::DataType::Float),
        ]);
        db.create_table_from_rows("edges", schema, rows, None, Some(1)).unwrap();
        let w = spinner_procedural::connected_components(None);
        let batch = db.query(&w.cte).unwrap();
        prop_assert_eq!(batch.len(), nodes);
        for row in batch.rows() {
            let node = row[0].as_i64().unwrap();
            let label = row[1].as_i64().unwrap();
            let expected = oracle::striped_component_label(node, k);
            prop_assert_eq!(label, expected, "node {} labelled {}", node, label);
        }
    }

    /// ORDER BY returns a permutation sorted by the key.
    #[test]
    fn sort_is_a_sorted_permutation(spec in graph_spec()) {
        let db = load(&spec, EngineConfig::default());
        let sorted = db.query("SELECT weight FROM edges ORDER BY weight").unwrap();
        let unsorted = db.query("SELECT weight FROM edges").unwrap();
        prop_assert_eq!(sorted.len(), unsorted.len());
        let vals: Vec<f64> = sorted.rows().iter().map(|r| r[0].as_f64().unwrap()).collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        let mut a: Vec<Value> = sorted.rows().iter().map(|r| r[0].clone()).collect();
        let mut b: Vec<Value> = unsorted.rows().iter().map(|r| r[0].clone()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// COUNT(*) equals the generated edge count; GROUP BY counts sum to it.
    #[test]
    fn aggregation_conservation(spec in graph_spec()) {
        let db = load(&spec, EngineConfig::default());
        let total = db.query("SELECT COUNT(*) FROM edges").unwrap();
        prop_assert_eq!(total.rows()[0][0].as_i64().unwrap(), spec.edges as i64);
        let per_src = db
            .query("SELECT SUM(n) FROM (SELECT src, COUNT(*) AS n FROM edges GROUP BY src)")
            .unwrap();
        prop_assert_eq!(per_src.rows()[0][0].as_i64().unwrap(), spec.edges as i64);
    }

    /// Partition count never affects results.
    #[test]
    fn partition_count_is_transparent(spec in graph_spec(), parts in 1usize..9) {
        let sql = "SELECT src, COUNT(*) AS n FROM edges GROUP BY src ORDER BY src";
        let base = load(&spec, EngineConfig::default().with_partitions(1))
            .query(sql)
            .unwrap();
        let multi = load(&spec, EngineConfig::default().with_partitions(parts))
            .query(sql)
            .unwrap();
        prop_assert_eq!(base.rows(), multi.rows());
    }

    /// The persistent worker pool is semantically invisible (PR 5): for
    /// any random graph, every benchmark query shape (fig8 FF/PR, fig9
    /// PR-VS, fig11 SSSP-VS, ablation CC) and partitions ∈ {1, 2, 4},
    /// pooled-parallel execution returns exactly the serial rows. Both
    /// sides share one partition count, so even float accumulation order
    /// matches and the comparison is exact.
    #[test]
    fn pooled_parallel_matches_serial(
        spec in graph_spec(),
        shape in 0usize..5,
        parts_idx in 0usize..3,
    ) {
        let parts = [1usize, 2, 4][parts_idx];
        let (sql, with_vs) = match shape {
            0 => (ff(5, 7).cte, false),
            1 => (pagerank(5, false).cte, false),
            2 => (pagerank(5, true).cte, true),
            3 => (sssp(6, 1, true).cte, true),
            _ => (connected_components(Some(8)).cte, false),
        };
        let serial = load_with_vs(&spec, EngineConfig::default().with_partitions(parts), with_vs)
            .query(&sql)
            .unwrap();
        let pooled = load_with_vs(
            &spec,
            EngineConfig::default()
                .with_partitions(parts)
                .with_parallel_partitions(true),
            with_vs,
        )
        .query(&sql)
        .unwrap();
        prop_assert_eq!(
            sorted_rows(&pooled),
            sorted_rows(&serial),
            "shape {} with {} partitions diverged under the pool", shape, parts
        );
    }

    /// UNION is idempotent: (A UNION A) == DISTINCT A.
    #[test]
    fn union_idempotent(spec in graph_spec()) {
        let db = load(&spec, EngineConfig::default());
        let twice = db
            .query("SELECT COUNT(*) FROM (SELECT src FROM edges UNION SELECT src FROM edges)")
            .unwrap();
        let once = db
            .query("SELECT COUNT(*) FROM (SELECT DISTINCT src FROM edges)")
            .unwrap();
        prop_assert_eq!(twice.rows(), once.rows());
    }
}

/// Strategy: one deterministic fault (site × position × kind). Panic
/// kind is restricted to the Worker site — that is the only site behind
/// a catch_unwind boundary; everywhere else a panic is a driver bug by
/// design, not a recoverable fault.
fn single_fault() -> impl Strategy<Value = FaultConfig> {
    (0usize..7, 1u64..60, any::<bool>()).prop_map(|(site_idx, nth, panic)| {
        let site = [
            FaultSite::Exchange,
            FaultSite::Materialize,
            FaultSite::Rename,
            FaultSite::LoopIteration,
            FaultSite::Worker,
            FaultSite::Checkpoint,
            FaultSite::Recovery,
        ][site_idx];
        if panic && site == FaultSite::Worker {
            FaultConfig::panic_nth(site, nth)
        } else {
            FaultConfig::fail_nth(site, nth)
        }
    })
}

/// Strategy: a recovery policy with every mechanism enabled (≥1 retry,
/// ≥1 loop recovery, some checkpoint cadence, no backoff sleep so the
/// suite stays fast).
fn enabled_recovery_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (1u64..5, 1u64..3, 1u64..4).prop_map(|(interval, retries, recoveries)| RecoveryPolicy {
        checkpoint_interval: interval,
        max_partition_retries: retries,
        retry_backoff_ms: 0,
        max_loop_recoveries: recoveries,
    })
}

fn sorted_rows(batch: &spinner_common::Batch) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = batch.rows().iter().map(|r| r.to_vec()).collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery is semantically invisible: for any random graph, any
    /// single-fault schedule, and any enabled retry/checkpoint policy,
    /// PageRank and SSSP return rows identical to a fault-free run —
    /// whether the fault was absorbed by a partition retry, a step
    /// retry, or a full rollback-and-replay (or never fired at all).
    #[test]
    fn single_fault_with_recovery_is_invisible(
        spec in graph_spec(),
        fault in single_fault(),
        policy in enabled_recovery_policy(),
        parallel in any::<bool>(),
        use_pagerank in any::<bool>(),
    ) {
        let w = if use_pagerank {
            pagerank(6, false)
        } else {
            sssp(8, 1, false)
        };
        let clean = load(&spec, EngineConfig::default()).query(&w.cte).unwrap();
        let config = EngineConfig::default()
            .with_parallel_partitions(parallel)
            .with_recovery(policy)
            .with_fault(fault.clone());
        let faulty = load(&spec, config).query(&w.cte).unwrap_or_else(|e| {
            panic!("fault {fault:?} escaped recovery: {e}")
        });
        prop_assert_eq!(
            sorted_rows(&faulty),
            sorted_rows(&clean),
            "fault {:?} changed the result rows", fault
        );
    }

    /// Spilling is semantically invisible: under a 1-byte threshold
    /// (every allocation pushes cold state to disk) PageRank and SSSP
    /// over random graphs return rows identical to the in-memory run —
    /// alone and composed with an enabled recovery policy, whose
    /// checkpoints then live in spill files too.
    #[test]
    fn forced_spill_is_invisible(
        spec in graph_spec(),
        policy in proptest::option::of(enabled_recovery_policy()),
        use_pagerank in any::<bool>(),
    ) {
        let w = if use_pagerank {
            pagerank(6, false)
        } else {
            sssp(8, 1, false)
        };
        let in_memory = EngineConfig {
            spill_threshold_bytes: None,
            ..EngineConfig::default()
        };
        let clean = load(&spec, in_memory).query(&w.cte).unwrap();
        let mut config = EngineConfig::default().with_spill_threshold_bytes(1);
        if let Some(policy) = policy {
            config = config.with_recovery(policy);
        }
        let db = load(&spec, config);
        db.take_stats();
        let spilled = db.query(&w.cte).unwrap();
        prop_assert_eq!(
            sorted_rows(&spilled),
            sorted_rows(&clean),
            "forced spill changed the result rows"
        );
        let stats = db.take_stats();
        prop_assert!(stats.spill_events > 0, "a 1-byte threshold must spill");
    }
}
