//! End-to-end iterative-CTE semantics across the full optimization matrix.
//!
//! Every combination of the three paper optimizations (data-movement
//! minimization, common-result extraction, predicate push-down) must
//! produce byte-identical results for every workload — the optimizations
//! change cost, never answers.

use spinner_datagen::{load_edges_into, load_vertex_status_into, GraphSpec};
use spinner_engine::{Database, EngineConfig, Value};
use spinner_procedural::{ff, pagerank, sssp};

fn fresh_db(config: EngineConfig, spec: &GraphSpec, with_vs: bool) -> Database {
    let db = Database::new(config).unwrap();
    load_edges_into(&db, "edges", spec).unwrap();
    if with_vs {
        load_vertex_status_into(&db, "vertexstatus", spec, 0.8).unwrap();
    }
    db
}

fn all_configs() -> Vec<EngineConfig> {
    let mut configs = Vec::new();
    for dm in [true, false] {
        for cr in [true, false] {
            for pp in [true, false] {
                configs.push(
                    EngineConfig::default()
                        .with_minimize_data_movement(dm)
                        .with_common_result(cr)
                        .with_predicate_pushdown(pp),
                );
            }
        }
    }
    configs
}

fn assert_config_invariant(sql: &str, with_vs: bool) {
    let spec = GraphSpec {
        nodes: 200,
        edges: 900,
        seed: 99,
        max_weight: 10,
    };
    let reference = fresh_db(EngineConfig::naive(), &spec, with_vs)
        .query(sql)
        .unwrap();
    for config in all_configs() {
        let got = fresh_db(config.clone(), &spec, with_vs).query(sql).unwrap();
        assert_eq!(
            got.rows(),
            reference.rows(),
            "results diverged under config {config:?}"
        );
    }
}

#[test]
fn pagerank_invariant_under_all_configs() {
    assert_config_invariant(&pagerank(8, false).cte, false);
}

#[test]
fn pagerank_vs_invariant_under_all_configs() {
    assert_config_invariant(&pagerank(8, true).cte, true);
}

#[test]
fn sssp_invariant_under_all_configs() {
    assert_config_invariant(&sssp(8, 1, false).cte, false);
}

#[test]
fn sssp_vs_invariant_under_all_configs() {
    assert_config_invariant(&sssp(8, 1, true).cte, true);
}

#[test]
fn ff_invariant_under_all_configs() {
    assert_config_invariant(&ff(8, 10).cte, false);
}

#[test]
fn ff_pushdown_reduces_materialized_rows() {
    let spec = GraphSpec {
        nodes: 1_000,
        edges: 4_000,
        seed: 5,
        max_weight: 10,
    };
    let measure = |pushdown: bool| {
        let db = fresh_db(
            EngineConfig::default().with_predicate_pushdown(pushdown),
            &spec,
            false,
        );
        db.query(&ff(25, 100).cte).unwrap();
        db.take_stats().rows_materialized
    };
    let with = measure(true);
    let without = measure(false);
    assert!(
        with * 10 < without,
        "push-down should shrink per-iteration work by ~100x: with={with} without={without}"
    );
}

#[test]
fn rename_avoids_merge_work_entirely() {
    let spec = GraphSpec {
        nodes: 500,
        edges: 2_000,
        seed: 6,
        max_weight: 10,
    };
    let measure = |minimize: bool| {
        // Push-down disabled so the CTE keeps all 500 rows and the merge
        // cost is measured on the full table.
        let db = fresh_db(
            EngineConfig::default()
                .with_minimize_data_movement(minimize)
                .with_predicate_pushdown(false),
            &spec,
            false,
        );
        db.query(&ff(25, 10).cte).unwrap();
        db.take_stats()
    };
    let optimized = measure(true);
    let baseline = measure(false);
    assert_eq!(optimized.merges, 0);
    assert_eq!(baseline.merges, 25);
    assert!(baseline.merge_rows_examined >= 25 * 500);
    assert!(optimized.renames >= 25);
}

#[test]
fn common_result_reduces_per_iteration_joins() {
    let spec = GraphSpec {
        nodes: 400,
        edges: 2_000,
        seed: 7,
        max_weight: 10,
    };
    let measure = |common: bool| {
        let db = fresh_db(
            EngineConfig::default().with_common_result(common),
            &spec,
            true,
        );
        db.query(&pagerank(20, true).cte).unwrap();
        db.take_stats()
    };
    let optimized = measure(true);
    let baseline = measure(false);
    // Hoisting the edges ⨝ vertexStatus join replaces a per-iteration join
    // with a single pre-loop one: 20 iterations x 3 joins baseline vs
    // 1 + 20 x 2 optimized.
    assert!(
        optimized.joins_executed + 19 <= baseline.joins_executed,
        "common-result should save one join per iteration: {} vs {}",
        optimized.joins_executed,
        baseline.joins_executed
    );
}

#[test]
fn data_termination_matches_iteration_count() {
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2, 1.0), (2, 1, 1.0)")
        .unwrap();
    // Stop when both rows exceed 5: both get +1 per iteration from 0.
    let batch = db
        .query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL (v > 5), 2 ROWS)
             SELECT MIN(v) FROM t",
        )
        .unwrap();
    assert_eq!(batch.rows()[0][0], Value::Int(6));
    assert_eq!(db.take_stats().iterations, 6);
}

#[test]
fn iterative_cte_composes_with_regular_cte() {
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 1, 1.0)")
        .unwrap();
    // A regular CTE downstream of the iterative CTE's result.
    let batch = db
        .query(
            "WITH ITERATIVE grow (k, v) AS (
                 SELECT src, 1 FROM edges
             ITERATE SELECT k, v * 2 FROM grow
             UNTIL 4 ITERATIONS)
             SELECT SUM(v) FROM grow",
        )
        .unwrap();
    assert_eq!(batch.rows()[0][0], Value::Int(3 * 16));
}

#[test]
fn two_iterative_ctes_in_one_query() {
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2, 1.0)").unwrap();
    let batch = db
        .query(
            "WITH ITERATIVE a (k, v) AS (
                 SELECT 1, 1 ITERATE SELECT k, v + 1 FROM a UNTIL 3 ITERATIONS),
             b (k, v) AS (
                 SELECT 1, 100 ITERATE SELECT k, v + 10 FROM b UNTIL 2 ITERATIONS)
             SELECT a.v, b.v FROM a JOIN b ON a.k = b.k",
        )
        .unwrap();
    assert_eq!(batch.rows()[0][0], Value::Int(4));
    assert_eq!(batch.rows()[0][1], Value::Int(120));
}

#[test]
fn iterative_result_feeds_downstream_join() {
    // The paper's motivation: use the iterative result directly as input
    // to another SQL query.
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2, 3.0), (2, 3, 4.0)")
        .unwrap();
    let batch = db
        .query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges UNION SELECT dst, 0 FROM edges
             ITERATE SELECT k, v + k FROM t
             UNTIL 2 ITERATIONS)
             SELECT e.src, e.dst, t.v FROM edges e JOIN t ON t.k = e.dst ORDER BY e.src",
        )
        .unwrap();
    assert_eq!(batch.len(), 2);
    assert_eq!(batch.rows()[0][2], Value::Int(4)); // node 2 accumulated 2+2
}
