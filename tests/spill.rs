//! Spill-to-disk suite: with a tiny `spill_threshold_bytes` every query
//! runs under artificial memory pressure, so intermediate state is
//! constantly written to spill files and rehydrated on access. Results
//! must be row-identical to in-memory runs, spill I/O faults must stay
//! typed-and-transient (absorbed by retry/rollback, never a wrong
//! answer), and the counters must tell the story in stats and
//! `EXPLAIN ANALYZE`.

use spinner_engine::{
    Database, EngineConfig, Error, FaultConfig, FaultKind, FaultSite, QueryGuard, RecoveryPolicy,
    Value,
};
use spinner_procedural::{pagerank, sssp};

/// Fresh database with the toy cyclic graph the engine tests use.
fn db_with_edges(config: EngineConfig) -> Database {
    let db = Database::new(config).unwrap();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
         (4, 1, 1.0)",
    )
    .unwrap();
    db
}

/// A simple iterative CTE touching materialize, rename and loop sites.
fn counting_cte(iterations: u64) -> String {
    format!(
        "WITH ITERATIVE t (k, v) AS (
             SELECT src, 0 FROM edges
         ITERATE SELECT k, v + 1 FROM t
         UNTIL {iterations} ITERATIONS)
         SELECT * FROM t"
    )
}

/// Adds the `vertexstatus` table the `*-VS` workloads join against —
/// the join the common-result rule hoists into a `__common_*` temp.
fn add_vertex_status(db: &Database) {
    db.execute("CREATE TABLE vertexstatus (node INT, status INT)")
        .unwrap();
    db.execute("INSERT INTO vertexstatus VALUES (1, 1), (2, 1), (3, 0), (4, 1)")
        .unwrap();
}

/// Rows of a batch, sorted, for order-insensitive comparison.
fn sorted_rows(batch: &spinner_engine::Batch) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = batch.rows().iter().map(|r| r.to_vec()).collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

/// Force-spill config: a 1-byte high-water mark spills every unprotected
/// region after every allocation.
fn forced_spill() -> EngineConfig {
    EngineConfig::default().with_spill_threshold_bytes(1)
}

/// Config with spilling explicitly off, even when the CI forced-spill
/// env (`SPINNER_SPILL_THRESHOLD`) is set — for tests that pin down the
/// fail-fast budget semantics of spill-disabled sessions.
fn no_spill() -> EngineConfig {
    EngineConfig {
        spill_threshold_bytes: None,
        ..EngineConfig::default()
    }
}

/// The tentpole acceptance: PageRank and SSSP under a 1-byte threshold
/// produce rows identical to the unconstrained in-memory run, and the
/// engine actually spilled along the way.
#[test]
fn forced_spill_matches_in_memory_for_pagerank_and_sssp() {
    let workloads = [
        ("PR", pagerank(8, false).cte),
        ("SSSP", sssp(8, 1, false).cte),
        ("COUNT", counting_cte(8)),
    ];
    for (name, sql) in workloads {
        let expected = db_with_edges(EngineConfig::default().with_spill_threshold_bytes(u64::MAX))
            .query(&sql)
            .unwrap();
        let db = db_with_edges(forced_spill());
        db.take_stats();
        let batch = db.query(&sql).unwrap();
        assert_eq!(
            sorted_rows(&batch),
            sorted_rows(&expected),
            "{name}: forced-spill run must be row-identical to in-memory"
        );
        let stats = db.take_stats();
        assert!(stats.spill_events > 0, "{name}: nothing was spilled");
        assert!(stats.spill_bytes_written > 0, "{name}: no bytes written");
        assert!(
            stats.peak_tracked_bytes > 0,
            "{name}: accountant saw no state"
        );
    }
}

/// Rehydration happens transparently on next access: a rollback must
/// read its checkpoint back from the spill file (checkpoints are cold,
/// so under a 1-byte threshold they are always spilled), converge to the
/// fault-free rows, and count the bytes read.
#[test]
fn rollback_rehydrates_a_spilled_checkpoint() {
    let sql = counting_cte(8);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let mut db = db_with_edges(EngineConfig::default());
    db.set_config(
        forced_spill()
            .with_checkpoint_interval(2)
            .with_max_loop_recoveries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 5)),
    )
    .unwrap();
    db.take_stats();
    let batch = db.query(&sql).unwrap();
    assert_eq!(sorted_rows(&batch), sorted_rows(&expected));
    let stats = db.take_stats();
    assert_eq!(stats.loop_rollbacks, 1);
    assert!(
        stats.spill_bytes_read > 0,
        "the restore must have read the spilled checkpoint: {stats:?}"
    );
}

/// The rename fast path must stay correct when the table being renamed
/// over (or the renamed table itself) lives in a spill file: rename
/// moves the file handle, no I/O, and the loop's final rows are exact.
#[test]
fn rename_optimization_survives_forced_spill() {
    // PageRank replaces the whole dataset per iteration (unique node
    // keys), so it runs both the rename fast path and the merge+diff
    // baseline.
    let sql = pagerank(8, false).cte;
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    for minimize in [true, false] {
        let db = db_with_edges(forced_spill().with_minimize_data_movement(minimize));
        db.take_stats();
        let batch = db.query(&sql).unwrap();
        assert_eq!(
            sorted_rows(&batch),
            sorted_rows(&expected),
            "minimize_data_movement={minimize}: wrong rows under forced spill"
        );
        let stats = db.take_stats();
        if minimize {
            assert!(stats.renames > 0, "rename path must have been exercised");
        }
        assert!(stats.spill_events > 0);
    }
}

/// `ResourceExhausted` is still raised when spilling cannot get the
/// resident set under the budget — here by pinning operator hash state
/// bigger than the budget — and is raised eagerly when spilling is off.
#[test]
fn byte_budget_still_enforced_when_spill_cannot_help() {
    // Spilling disabled: the cumulative fail-fast budget trips (seed
    // behaviour preserved).
    let db = db_with_edges(no_spill().with_max_intermediate_bytes(64));
    match db.query(&pagerank(5, false).cte) {
        Err(Error::ResourceExhausted { resource, .. }) => {
            assert_eq!(resource, "intermediate_bytes");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    // Spilling enabled with a roomy threshold but a 1-byte *budget*: the
    // resident set can never fit, so the typed error still surfaces.
    let db = db_with_edges(
        EngineConfig::default()
            .with_spill_threshold_bytes(u64::MAX)
            .with_max_intermediate_bytes(1),
    );
    match db.query(&pagerank(5, false).cte) {
        Err(Error::ResourceExhausted { resource, .. }) => {
            assert_eq!(resource, "intermediate_bytes");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    // Same budget, but spilling allowed to evict: the query now succeeds
    // because cold state moves to disk instead of counting against the
    // resident budget.
    let db = db_with_edges(forced_spill().with_max_intermediate_bytes(1_000_000));
    db.query(&pagerank(5, false).cte)
        .expect("spilling should keep the resident set under the budget");
}

/// Spill I/O faults are transient: the fault matrix over
/// `SpillWrite`/`SpillRead` × checkpoint_interval {0, 1, 5} must either
/// converge to the exact fault-free rows or fail with a typed,
/// retryable-classified error — never a wrong answer or a hang.
#[test]
fn spill_fault_matrix_across_checkpoint_intervals() {
    let sql = counting_cte(8);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let faults = [
        FaultConfig::fail_nth(FaultSite::SpillWrite, 1),
        FaultConfig::fail_nth(FaultSite::SpillWrite, 3),
        FaultConfig::fail_nth(FaultSite::SpillRead, 1),
        FaultConfig::fail_nth(FaultSite::SpillRead, 2),
    ];
    for interval in [0u64, 1, 5] {
        for fault in &faults {
            let mut db = db_with_edges(EngineConfig::default());
            db.set_config(
                forced_spill()
                    .with_checkpoint_interval(interval)
                    .with_max_partition_retries(2)
                    .with_max_loop_recoveries(3)
                    .with_fault(fault.clone()),
            )
            .unwrap();
            match db.query(&sql) {
                Ok(batch) => assert_eq!(
                    sorted_rows(&batch),
                    sorted_rows(&expected),
                    "interval={interval}, fault={fault:?}: WRONG rows"
                ),
                Err(
                    e @ (Error::FaultInjected { .. }
                    | Error::RecoveryExhausted { .. }
                    | Error::SpillUnavailable { .. }
                    | Error::StorageCorrupt { .. }),
                ) => {
                    // Typed failure is acceptable; silent corruption is not.
                    drop(e);
                }
                Err(other) => {
                    panic!("interval={interval}, fault={fault:?}: untyped failure {other:?}")
                }
            }
            assert_eq!(db.temp_result_count(), 0);
            // The database stays usable for the next statement.
            let batch = db.query("SELECT COUNT(*) FROM edges").unwrap();
            assert_eq!(batch.rows()[0][0], Value::Int(5));
        }
    }
}

/// A seeded spill-fault storm composed with the standard recovery
/// policy: every seed must converge identically or fail typed, and at
/// least some seeds must converge.
#[test]
fn spill_fault_storm_with_recovery_policy_converges_or_fails_typed() {
    let sql = counting_cte(6);
    let expected = db_with_edges(EngineConfig::default()).query(&sql).unwrap();
    let mut converged = 0;
    for seed in 0..10u64 {
        let mut db = db_with_edges(EngineConfig::default());
        db.set_config(
            forced_spill()
                .with_recovery(RecoveryPolicy::standard())
                .with_fault(FaultConfig::seeded(
                    FaultSite::SpillWrite,
                    FaultKind::Error,
                    seed,
                    100_000,
                ))
                .with_fault(FaultConfig::seeded(
                    FaultSite::SpillRead,
                    FaultKind::Error,
                    seed.wrapping_add(17),
                    100_000,
                )),
        )
        .unwrap();
        match db.query(&sql) {
            Ok(batch) => {
                assert_eq!(
                    sorted_rows(&batch),
                    sorted_rows(&expected),
                    "seed {seed}: storm survivor returned a WRONG answer"
                );
                converged += 1;
            }
            Err(
                Error::FaultInjected { .. }
                | Error::RecoveryExhausted { .. }
                | Error::SpillUnavailable { .. }
                | Error::StorageCorrupt { .. },
            ) => {}
            Err(other) => panic!("seed {seed}: unexpected failure kind: {other:?}"),
        }
        assert_eq!(db.temp_result_count(), 0, "seed {seed}: registry leak");
    }
    assert!(
        converged > 0,
        "at 10% fault rates some seeds must still converge"
    );
}

/// A disk-level spill failure (directory vanished after validation)
/// surfaces as the typed, retryable `SpillUnavailable`, and the database
/// recovers once the directory is back.
#[test]
fn vanished_spill_dir_is_typed_and_transient() {
    let dir = std::env::temp_dir().join(format!("spinner_vanishing_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = db_with_edges(
        EngineConfig::default()
            .with_spill_threshold_bytes(1)
            .with_spill_dir(dir.to_str().unwrap()),
    );
    std::fs::remove_dir_all(&dir).unwrap();
    match db.query(&counting_cte(4)) {
        Err(Error::SpillUnavailable { region, message }) => {
            assert!(!region.is_empty());
            assert!(!message.is_empty());
            assert!(
                Error::SpillUnavailable { region, message }.is_retryable(),
                "spill unavailability is transient by contract"
            );
        }
        other => panic!("expected SpillUnavailable, got {other:?}"),
    }
    // Directory restored: the same session works again.
    std::fs::create_dir_all(&dir).unwrap();
    db.query(&counting_cte(4)).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Engine-level config validation: an unusable spill directory is rejected
/// at `Database::new`, before any query can hit it — while a merely
/// *missing* (but creatable) one is created on the spot.
#[test]
fn bad_spill_dir_rejected_at_construction() {
    // Uncreatable: the path's parent is a regular file.
    let file = std::env::temp_dir().join(format!("spinner_blocker_{}", std::process::id()));
    std::fs::write(&file, b"x").unwrap();
    match Database::new(
        EngineConfig::default()
            .with_spill_threshold_bytes(1024)
            .with_spill_dir(file.join("sub").to_str().unwrap()),
    ) {
        Err(Error::InvalidConfig(_)) => {}
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(_) => panic!("uncreatable spill_dir must be rejected"),
    }
    std::fs::remove_file(&file).unwrap();
    match Database::new(EngineConfig::default().with_spill_threshold_bytes(0)) {
        Err(Error::InvalidConfig(_)) => {}
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(_) => panic!("zero threshold must be rejected"),
    }
    // Missing-but-creatable: validation creates it and the engine works.
    let fresh = std::env::temp_dir().join(format!("spinner_fresh_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fresh);
    let db = Database::new(
        EngineConfig::default()
            .with_spill_threshold_bytes(1)
            .with_spill_dir(fresh.to_str().unwrap()),
    )
    .expect("creatable spill_dir must validate");
    db.execute("CREATE TABLE probe (x INT)").unwrap();
    db.execute("INSERT INTO probe VALUES (1), (2)").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM probe").unwrap().rows()[0][0],
        Value::Int(2)
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&fresh);
}

/// `EXPLAIN ANALYZE` carries the statement's spill counters in the text
/// rendering and through the JSON round trip.
#[test]
fn explain_analyze_reports_spill_counters() {
    let db = db_with_edges(forced_spill());
    let profile = db.explain_analyze(&counting_cte(6)).unwrap();
    assert!(profile.spill.events > 0, "profile must see the spills");
    assert!(profile.spill.bytes_written > 0);
    assert!(profile.spill.peak_tracked_bytes > 0);
    assert!(
        profile.render().contains("spill:"),
        "rendering must mention spill activity:\n{}",
        profile.render()
    );
    let back = spinner_engine::QueryProfile::from_json(&profile.to_json()).unwrap();
    assert_eq!(
        back, profile,
        "spill block must survive the JSON round trip"
    );
    // With spilling off entirely there is nothing to track, so the
    // profile stays spill-silent.
    let db = db_with_edges(no_spill());
    let profile = db.explain_analyze(&counting_cte(6)).unwrap();
    assert_eq!(profile.spill.events, 0);
    assert!(!profile.render().contains("spill: events"));
}

/// Join-state-cache invalidation under memory pressure (PR 5): the
/// cached build table is registered as an evictable `join_build` region,
/// so when the accountant reclaims it (a drop, not a disk write) the
/// next probe must rebuild from the — possibly itself spilled —
/// `__common_*` temp instead of reusing a stale pointer. Rows stay
/// identical either way.
#[test]
fn join_cache_rebuilt_after_spill_evicts_build() {
    let sql = pagerank(8, true).cte;
    // In-memory baseline: the invariant build is hashed once and every
    // later iteration re-probes it.
    let db = db_with_edges(EngineConfig::default().with_spill_threshold_bytes(u64::MAX));
    add_vertex_status(&db);
    db.take_stats();
    let expected = db.query(&sql).unwrap();
    let in_memory = db.take_stats();
    assert!(in_memory.join_builds >= 1);
    assert!(
        in_memory.join_builds_reused > in_memory.join_builds,
        "in memory the cache must win: {} builds / {} reuses",
        in_memory.join_builds,
        in_memory.join_builds_reused
    );
    // 1-byte threshold: every allocation makes the build region a spill
    // victim, so reuse is impossible — each probe rebuilds, and the
    // answer is still row-identical.
    let db = db_with_edges(forced_spill());
    add_vertex_status(&db);
    db.take_stats();
    let batch = db.query(&sql).unwrap();
    assert_eq!(
        sorted_rows(&batch),
        sorted_rows(&expected),
        "evicting the cached build must never change rows"
    );
    let stats = db.take_stats();
    assert!(
        stats.join_builds > in_memory.join_builds,
        "eviction must force rebuilds: {} spilled vs {} in-memory",
        stats.join_builds,
        in_memory.join_builds
    );
    assert!(stats.spill_events > 0);
}

/// Checkpoint bytes count against the intermediate-state budget
/// (satellite bugfix): with checkpointing every iteration, a budget that
/// exactly fits the loop tables alone must now trip. The budget is
/// measured, not guessed: an unlimited guard reports the bytes actually
/// charged with and without checkpoints.
#[test]
fn checkpoint_bytes_charge_the_intermediate_budget() {
    let sql = counting_cte(8);
    let measure = |interval: u64| {
        let db = db_with_edges(no_spill().with_checkpoint_interval(interval));
        let guard = QueryGuard::unlimited();
        db.query_with_guard(&sql, &guard).unwrap();
        guard.intermediate_bytes_used()
    };
    let without_ckpt = measure(0);
    let with_ckpt = measure(1);
    assert!(
        with_ckpt > without_ckpt,
        "snapshots must be charged: {with_ckpt} <= {without_ckpt}"
    );
    // A budget that exactly covers the checkpoint-free run passes...
    let db = db_with_edges(no_spill().with_max_intermediate_bytes(without_ckpt));
    db.query(&sql).unwrap();
    // ...and trips once per-iteration snapshots are charged on top.
    let db = db_with_edges(
        no_spill()
            .with_max_intermediate_bytes(without_ckpt)
            .with_checkpoint_interval(1),
    );
    match db.query(&sql) {
        Err(Error::ResourceExhausted { resource, .. }) => {
            assert_eq!(resource, "intermediate_bytes");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}
