//! General SQL semantics: the substrate the iterative rewrite relies on.
//! Hand-computed expectations over a fixed mini-dataset.

use spinner_engine::{Database, Error, Value};

fn db() -> Database {
    let db = Database::default();
    db.execute_script(
        "CREATE TABLE people (id INT, name TEXT, city TEXT, age INT);
         INSERT INTO people VALUES
             (1, 'ann', 'rome', 30),
             (2, 'bob', 'rome', 25),
             (3, 'cat', 'oslo', 35),
             (4, 'dan', 'oslo', NULL),
             (5, 'eve', 'lima', 28);
         CREATE TABLE visits (person INT, place TEXT);
         INSERT INTO visits VALUES
             (1, 'oslo'), (1, 'lima'), (2, 'rome'), (9, 'nowhere');",
    )
    .unwrap();
    db
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    db.query(sql)
        .unwrap()
        .rows()
        .iter()
        .map(|r| r[0].as_i64().unwrap())
        .collect()
}

#[test]
fn where_with_null_drops_unknown() {
    // dan's age is NULL: excluded by both age > 20 and NOT(age > 20).
    assert_eq!(
        ints(&db(), "SELECT COUNT(*) FROM people WHERE age > 20"),
        vec![4]
    );
    assert_eq!(
        ints(&db(), "SELECT COUNT(*) FROM people WHERE NOT (age > 20)"),
        vec![0]
    );
    assert_eq!(
        ints(&db(), "SELECT COUNT(*) FROM people WHERE age IS NULL"),
        vec![1]
    );
}

#[test]
fn aggregates_over_groups() {
    let batch = db()
        .query(
            "SELECT city, COUNT(*) AS n, AVG(age) AS a FROM people \
             GROUP BY city ORDER BY city",
        )
        .unwrap();
    let rows: Vec<(String, i64)> = batch
        .rows()
        .iter()
        .map(|r| (r[0].to_string(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(
        rows,
        vec![("lima".into(), 1), ("oslo".into(), 2), ("rome".into(), 2)]
    );
    // oslo's AVG ignores dan's NULL: 35.0, not 17.5.
    assert_eq!(batch.rows()[1][2], Value::Float(35.0));
}

#[test]
fn having_filters_groups() {
    assert_eq!(
        ints(
            &db(),
            "SELECT COUNT(*) FROM people GROUP BY city HAVING COUNT(*) > 1"
        ),
        vec![2, 2]
    );
}

#[test]
fn count_distinct() {
    assert_eq!(
        ints(&db(), "SELECT COUNT(DISTINCT city) FROM people"),
        vec![3]
    );
}

#[test]
fn inner_left_right_full_joins() {
    let d = db();
    // inner: only people with visits (ann x2, bob x1)
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM people p JOIN visits v ON p.id = v.person"
        ),
        vec![3]
    );
    // left: everyone, plus multiplicity
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM people p LEFT JOIN visits v ON p.id = v.person"
        ),
        vec![6]
    );
    // right: all visits, even person 9
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM people p RIGHT JOIN visits v ON p.id = v.person"
        ),
        vec![4]
    );
    // full: 6 left-join rows + the orphan visit
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM people p FULL JOIN visits v ON p.id = v.person"
        ),
        vec![7]
    );
}

#[test]
fn non_equi_join_falls_back_to_nested_loop() {
    // Pairs of people where the first is strictly older.
    assert_eq!(
        ints(
            &db(),
            "SELECT COUNT(*) FROM people a JOIN people b ON a.age > b.age"
        ),
        vec![6]
    );
}

#[test]
fn cross_join_cardinality() {
    assert_eq!(ints(&db(), "SELECT COUNT(*) FROM people, visits"), vec![20]);
}

#[test]
fn set_operations() {
    let d = db();
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM (SELECT city FROM people UNION SELECT place FROM visits)"
        ),
        vec![4] // rome, oslo, lima, nowhere
    );
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM (SELECT city FROM people UNION ALL SELECT place FROM visits)"
        ),
        vec![9]
    );
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM (SELECT city FROM people EXCEPT SELECT place FROM visits)"
        ),
        vec![0]
    );
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM (SELECT place FROM visits EXCEPT SELECT city FROM people)"
        ),
        vec![1] // nowhere
    );
    assert_eq!(
        ints(
            &d,
            "SELECT COUNT(*) FROM (SELECT city FROM people INTERSECT SELECT place FROM visits)"
        ),
        vec![3]
    );
}

#[test]
fn order_by_with_nulls_and_limit() {
    let batch = db()
        .query("SELECT name, age FROM people ORDER BY age DESC NULLS LAST LIMIT 2")
        .unwrap();
    assert_eq!(batch.rows()[0][0].to_string(), "cat");
    assert_eq!(batch.rows()[1][0].to_string(), "ann");
    let batch = db()
        .query("SELECT name FROM people ORDER BY age ASC NULLS FIRST LIMIT 1")
        .unwrap();
    assert_eq!(batch.rows()[0][0].to_string(), "dan");
}

#[test]
fn distinct_dedupes() {
    assert_eq!(
        ints(
            &db(),
            "SELECT COUNT(*) FROM (SELECT DISTINCT city FROM people)"
        ),
        vec![3]
    );
}

#[test]
fn case_when_and_scalar_functions() {
    let batch = db()
        .query(
            "SELECT name,
                    CASE WHEN age >= 30 THEN 'senior'
                         WHEN age >= 26 THEN 'mid'
                         ELSE 'junior' END AS band,
                    COALESCE(age, -1) AS age2,
                    UPPER(name) AS up
             FROM people ORDER BY id",
        )
        .unwrap();
    assert_eq!(batch.rows()[0][1].to_string(), "senior");
    assert_eq!(batch.rows()[1][1].to_string(), "junior");
    // dan: NULL age falls to ELSE and coalesces to -1
    assert_eq!(batch.rows()[3][1].to_string(), "junior");
    assert_eq!(batch.rows()[3][2], Value::Int(-1));
    assert_eq!(batch.rows()[0][3].to_string(), "ANN");
}

#[test]
fn in_list_and_between() {
    assert_eq!(
        ints(
            &db(),
            "SELECT COUNT(*) FROM people WHERE city IN ('rome', 'lima')"
        ),
        vec![3]
    );
    assert_eq!(
        ints(
            &db(),
            "SELECT COUNT(*) FROM people WHERE age BETWEEN 25 AND 30"
        ),
        vec![3]
    );
}

#[test]
fn scalar_subquery_free_select() {
    assert_eq!(ints(&db(), "SELECT 2 + 3 * 4"), vec![14]);
}

#[test]
fn division_by_zero_is_a_runtime_error() {
    let err = db().query("SELECT age / 0 FROM people").unwrap_err();
    assert!(matches!(err, Error::Arithmetic(_)));
}

#[test]
fn ambiguous_column_is_a_plan_error() {
    let err = db()
        .query("SELECT id FROM people a JOIN people b ON a.id = b.id")
        .unwrap_err();
    assert!(matches!(err, Error::Plan(_)));
}

#[test]
fn recursive_cte_numbers() {
    let batch = db()
        .query(
            "WITH RECURSIVE nums (n) AS (
                 SELECT 1 UNION ALL SELECT n + 1 FROM nums WHERE n < 10)
             SELECT SUM(n) FROM nums",
        )
        .unwrap();
    assert_eq!(batch.rows()[0][0], Value::Int(55));
}

#[test]
fn qualified_wildcard_expansion() {
    let batch = db()
        .query("SELECT v.* FROM people p JOIN visits v ON p.id = v.person LIMIT 1")
        .unwrap();
    assert_eq!(batch.schema().len(), 2);
}

#[test]
fn update_and_delete_roundtrip() {
    let d = db();
    d.execute("UPDATE people SET age = age + 1 WHERE city = 'rome'")
        .unwrap();
    assert_eq!(
        ints(&d, "SELECT SUM(age) FROM people WHERE city = 'rome'"),
        vec![57]
    );
    d.execute("DELETE FROM people WHERE age IS NULL").unwrap();
    assert_eq!(ints(&d, "SELECT COUNT(*) FROM people"), vec![4]);
}

#[test]
fn insert_select_with_column_list() {
    let d = db();
    d.execute("CREATE TABLE names (nick TEXT, id INT)").unwrap();
    d.execute("INSERT INTO names (id, nick) SELECT id, name FROM people")
        .unwrap();
    let batch = d.query("SELECT nick FROM names WHERE id = 3").unwrap();
    assert_eq!(batch.rows()[0][0].to_string(), "cat");
}

#[test]
fn text_comparisons_and_concat() {
    let batch = db()
        .query("SELECT CONCAT(name, '@', city) FROM people WHERE name = 'eve'")
        .unwrap();
    assert_eq!(batch.rows()[0][0].to_string(), "eve@lima");
}
