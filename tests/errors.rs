//! Negative-path coverage: every user error class must surface as the
//! right `Error` variant with an actionable message — not a panic, not a
//! wrong result.

use spinner_engine::{Database, Error};

fn db() -> Database {
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("INSERT INTO edges VALUES (1, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)")
        .unwrap();
    db
}

#[test]
fn parse_errors_carry_position() {
    let err = db().execute("SELECT * FRM edges").unwrap_err();
    assert!(
        matches!(
            err,
            Error::Parse {
                position: Some(_),
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn unknown_table_and_column() {
    assert!(matches!(
        db().execute("SELECT * FROM ghosts").unwrap_err(),
        Error::TableNotFound(_)
    ));
    assert!(matches!(
        db().execute("SELECT ghost FROM edges").unwrap_err(),
        Error::ColumnNotFound(_)
    ));
    assert!(matches!(
        db().execute("SELECT e.ghost FROM edges e").unwrap_err(),
        Error::ColumnNotFound(_)
    ));
}

#[test]
fn unknown_function() {
    let err = db()
        .execute("SELECT frobnicate(src) FROM edges")
        .unwrap_err();
    assert!(matches!(err, Error::Plan(m) if m.contains("frobnicate")));
}

#[test]
fn wrong_function_arity() {
    let err = db().execute("SELECT mod(src) FROM edges").unwrap_err();
    assert!(matches!(err, Error::Plan(m) if m.contains("arguments")));
}

#[test]
fn aggregate_in_where_rejected() {
    let err = db()
        .execute("SELECT src FROM edges WHERE SUM(dst) > 1")
        .unwrap_err();
    assert!(matches!(err, Error::Plan(m) if m.contains("aggregate")));
}

#[test]
fn union_arity_mismatch() {
    let err = db()
        .execute("SELECT src FROM edges UNION SELECT src, dst FROM edges")
        .unwrap_err();
    assert!(matches!(err, Error::Plan(m) if m.contains("column counts")));
}

#[test]
fn cte_column_count_mismatch() {
    let err = db()
        .execute("WITH t (a, b, c) AS (SELECT src FROM edges) SELECT * FROM t")
        .unwrap_err();
    assert!(matches!(err, Error::Plan(_)));
}

#[test]
fn iterative_cte_width_mismatch_between_parts() {
    let err = db()
        .execute(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT src, 0 FROM edges
             ITERATE SELECT k FROM t
             UNTIL 2 ITERATIONS) SELECT * FROM t",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Plan(m) if m.contains("columns")));
}

#[test]
fn duplicate_iteration_key_names_the_cte() {
    let err = db()
        .execute(
            "WITH ITERATIVE dup (k, v) AS (
                 SELECT DISTINCT src, 0 FROM edges
             ITERATE SELECT 1, v + 1 FROM dup WHERE k < 99
             UNTIL 2 ITERATIONS) SELECT * FROM dup",
        )
        .unwrap_err();
    let Error::DuplicateIterationKey { cte, .. } = err else {
        panic!("wrong error: {err}")
    };
    assert_eq!(cte, "dup");
}

#[test]
fn invalid_termination_expression_rejected_at_plan_time() {
    let err = db()
        .execute(
            "WITH ITERATIVE t (k) AS (
                 SELECT src FROM edges
             ITERATE SELECT k FROM t
             UNTIL (ghost_column > 3)) SELECT * FROM t",
        )
        .unwrap_err();
    assert!(matches!(err, Error::Plan(m) if m.contains("termination")));
}

#[test]
fn runaway_data_condition_stops_at_safety_limit() {
    let mut database = db();
    let mut config = database.config().clone();
    config.max_iterations = 50;
    database.set_config(config).unwrap();
    let err = database
        .execute(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT 1, 0
             ITERATE SELECT k, v + 1 FROM t
             UNTIL (v < 0)) SELECT * FROM t",
        )
        .unwrap_err();
    assert!(matches!(
        err,
        Error::IterationLimitExceeded { limit: 50, .. }
    ));
}

#[test]
fn insert_width_mismatch() {
    let err = db().execute("INSERT INTO edges VALUES (1, 2)").unwrap_err();
    assert!(matches!(err, Error::Plan(_)));
}

#[test]
fn insert_bad_cast_is_runtime_error() {
    let err = db()
        .execute("INSERT INTO edges VALUES ('not-a-number', 2, 1.0)")
        .unwrap_err();
    assert!(matches!(err, Error::Type(_)));
}

#[test]
fn update_unknown_column() {
    let err = db().execute("UPDATE edges SET ghost = 1").unwrap_err();
    assert!(matches!(err, Error::ColumnNotFound(_)));
}

#[test]
fn recursive_cte_requires_union_shape() {
    let err = db()
        .execute("WITH RECURSIVE r (n) AS (SELECT 1) SELECT * FROM r")
        .unwrap_err();
    assert!(matches!(err, Error::Parse { .. }));
}

#[test]
fn reserved_word_as_column_rejected() {
    let err = db().execute("SELECT select FROM edges").unwrap_err();
    assert!(matches!(err, Error::Parse { .. }));
}

#[test]
fn failed_statement_leaves_tables_intact() {
    let d = db();
    let before = d.query("SELECT COUNT(*) FROM edges").unwrap();
    // Division by zero mid-update must not partially apply.
    let _ = d.execute("UPDATE edges SET weight = 1 / (src - src)");
    let after = d.query("SELECT COUNT(*) FROM edges").unwrap();
    assert_eq!(before.rows(), after.rows());
    // All weights unchanged.
    let sum = d.query("SELECT SUM(weight) FROM edges").unwrap();
    assert_eq!(sum.rows()[0][0].as_f64().unwrap(), 3.0);
}
