//! The PR-10 workload suite: four iterative workloads (k-means, label
//! propagation, triangle-weighted ranking, logistic-regression gradient
//! descent), each checked against its hand-rolled oracle in
//! `spinner_datagen::oracle` over *random* inputs, across partition
//! counts {1, 2, 4} and semi-naive on/off — plus mode-selection
//! assertions (graph workloads take the delta rewrite, non-monotone ML
//! bodies must not) and a fault/spill/checkpoint matrix proving the
//! durability machinery never changes workload results. Float rows are
//! compared with `rows_approx_eq`, which absorbs the aggregation-order
//! drift documented in `spinner_common::approx`; integer workloads
//! compare exactly.

use proptest::prelude::*;
use spinner_common::{
    row_of, rows_approx_eq, EngineConfig, FaultConfig, FaultSite, RecoveryPolicy, Row, Value,
    DEFAULT_TOLERANCE,
};
use spinner_datagen::{
    load_edges_into, load_features_into, load_labeled_graph_into, load_points_into, oracle,
    FeatureSpec, GraphSpec, LabeledGraphSpec, PointsSpec,
};
use spinner_engine::{Database, Error};
use spinner_procedural::{
    kmeans_cte, label_propagation_cte, logistic_regression_cte, triangle_rank_cte,
};

fn config(partitions: usize, semi_naive: bool) -> EngineConfig {
    EngineConfig::default()
        .with_partitions(partitions)
        .with_semi_naive(semi_naive)
}

fn parts() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2usize), Just(4usize)]
}

/// Strategy: a random clustered-points spec (k well-separated clusters).
fn points_spec() -> impl Strategy<Value = PointsSpec> {
    (2usize..5, 0u64..1_000_000, 1u32..8).prop_flat_map(|(clusters, seed, spread)| {
        (clusters * 4..100).prop_map(move |points| PointsSpec {
            points,
            clusters,
            seed,
            spread: spread as f64,
        })
    })
}

/// Strategy: a random partially-labeled symmetric graph.
fn labeled_spec() -> impl Strategy<Value = LabeledGraphSpec> {
    (8usize..40, 0u64..1_000_000, 1usize..4, 0u32..=10).prop_flat_map(
        |(nodes, seed, components, frac)| {
            (nodes..nodes * 3).prop_map(move |edges| LabeledGraphSpec {
                graph: GraphSpec {
                    nodes,
                    edges,
                    seed,
                    max_weight: 5,
                },
                components,
                seed_fraction: frac as f64 / 10.0,
            })
        },
    )
}

/// Strategy: a small directed graph (the triangle oracle is cubic-ish in
/// degree, so keep it compact).
fn tri_graph_spec() -> impl Strategy<Value = GraphSpec> {
    (8usize..24, 0u64..1_000_000).prop_flat_map(|(nodes, seed)| {
        (nodes..nodes * 3).prop_map(move |edges| GraphSpec {
            nodes,
            edges,
            seed,
            max_weight: 5,
        })
    })
}

/// Strategy: a random feature matrix.
fn feature_spec() -> impl Strategy<Value = FeatureSpec> {
    (10usize..100, 0u64..1_000_000).prop_map(|(rows, seed)| FeatureSpec { rows, seed })
}

fn kmeans_oracle_rows(spec: &PointsSpec, iterations: u64) -> Vec<Row> {
    oracle::kmeans(&spec.generate(), spec.clusters, iterations)
        .into_iter()
        .map(|(cid, cx, cy)| row_of([Value::Int(cid), Value::Float(cx), Value::Float(cy)]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// K-means (ARG_MIN assignment + COALESCE'd AVG re-centering) equals
    /// the Lloyd-iteration oracle on any clustered input, at any
    /// partition count, with semi-naive on or off.
    #[test]
    fn kmeans_matches_oracle(
        spec in points_spec(),
        partitions in parts(),
        semi_naive in any::<bool>(),
        iterations in 1u64..5,
    ) {
        let db = Database::new(config(partitions, semi_naive)).unwrap();
        load_points_into(&db, "points", &spec).unwrap();
        let batch = db.query(&kmeans_cte(spec.clusters, iterations)).unwrap();
        let want = kmeans_oracle_rows(&spec, iterations);
        if let Err(msg) = rows_approx_eq(batch.rows(), &want, DEFAULT_TOLERANCE) {
            prop_assert!(false, "kmeans diverged from oracle: {}", msg);
        }
    }

    /// Label propagation run to DELTA-termination equals the integer
    /// min-label fixpoint oracle *exactly* — sparse seeds, unseeded
    /// components and all.
    #[test]
    fn label_propagation_matches_oracle(
        spec in labeled_spec(),
        partitions in parts(),
        semi_naive in any::<bool>(),
    ) {
        let db = Database::new(config(partitions, semi_naive)).unwrap();
        load_labeled_graph_into(&db, "edges", "labels", &spec).unwrap();
        let batch = db.query(&label_propagation_cte()).unwrap();
        let want: Vec<Row> = oracle::min_label_propagation(&spec.edges(), &spec.labels())
            .into_iter()
            .map(|(node, label)| row_of([Value::Int(node), Value::Int(label)]))
            .collect();
        prop_assert_eq!(batch.rows(), &want[..]);
    }

    /// Triangle-weighted ranking (three-way self-join invariant + SUM
    /// redistribution) equals the multiplicity-aware counting oracle.
    #[test]
    fn triangle_rank_matches_oracle(
        spec in tri_graph_spec(),
        partitions in parts(),
        semi_naive in any::<bool>(),
        iterations in 1u64..4,
    ) {
        let db = Database::new(config(partitions, semi_naive)).unwrap();
        load_edges_into(&db, "edges", &spec).unwrap();
        let batch = db.query(&triangle_rank_cte(iterations)).unwrap();
        let want: Vec<Row> = oracle::triangle_rank(&spec.generate(), iterations)
            .into_iter()
            .map(|(node, rank)| row_of([Value::Int(node), Value::Float(rank)]))
            .collect();
        if let Err(msg) = rows_approx_eq(batch.rows(), &want, DEFAULT_TOLERANCE) {
            prop_assert!(false, "triangle rank diverged from oracle: {}", msg);
        }
    }

    /// Logistic-regression gradient descent (wide sigmoid projections
    /// over the scalar `exp` kernel) equals the batch-gradient oracle.
    #[test]
    fn logistic_regression_matches_oracle(
        spec in feature_spec(),
        partitions in parts(),
        semi_naive in any::<bool>(),
        iterations in 1u64..6,
    ) {
        let db = Database::new(config(partitions, semi_naive)).unwrap();
        load_features_into(&db, "observations", &spec).unwrap();
        let batch = db.query(&logistic_regression_cte(iterations, 0.1)).unwrap();
        let (w1, w2, b) = oracle::logistic_regression(&spec.generate(), iterations, 0.1);
        let want = vec![row_of([Value::Float(w1), Value::Float(w2), Value::Float(b)])];
        if let Err(msg) = rows_approx_eq(batch.rows(), &want, DEFAULT_TOLERANCE) {
            prop_assert!(false, "logreg diverged from oracle: {}", msg);
        }
    }

    /// The ARG_MIN/ARG_MAX kernel itself: on random (group, value, key)
    /// tuples at any partition count, each group returns the value whose
    /// (key, value) pair is lexicographically smallest/largest — i.e.
    /// ties on the key break deterministically by value, never by
    /// arrival or merge order.
    #[test]
    fn arg_extremes_match_lexicographic_reference(
        rows in proptest::collection::vec((0i64..5, -20i64..20, -5i64..5), 1..60),
        partitions in parts(),
    ) {
        let db = Database::new(config(partitions, false)).unwrap();
        db.execute("CREATE TABLE t (g INT, v INT, k INT)").unwrap();
        let values: Vec<String> = rows.iter().map(|(g, v, k)| format!("({g}, {v}, {k})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(", "))).unwrap();
        let batch = db
            .query("SELECT g, ARG_MIN(v, k), ARG_MAX(v, k) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        // (key, value) pairs for the min and max side of each group.
        type ArgPair = (i64, i64);
        let mut best: std::collections::BTreeMap<i64, (ArgPair, ArgPair)> = Default::default();
        for &(g, v, k) in &rows {
            let e = best.entry(g).or_insert(((k, v), (k, v)));
            e.0 = e.0.min((k, v));
            e.1 = e.1.max((k, v));
        }
        let want: Vec<Row> = best
            .into_iter()
            .map(|(g, ((_, vmin), (_, vmax)))| {
                row_of([Value::Int(g), Value::Int(vmin), Value::Int(vmax)])
            })
            .collect();
        prop_assert_eq!(batch.rows(), &want[..]);
    }
}

// ---------------------------------------------------------------------
// Mode selection: the optimizer must pick the right iteration mode for
// each workload — and say so through stats and EXPLAIN ANALYZE.
// ---------------------------------------------------------------------

fn fixed_labeled_spec() -> LabeledGraphSpec {
    LabeledGraphSpec {
        graph: GraphSpec {
            nodes: 24,
            edges: 48,
            seed: 5,
            max_weight: 5,
        },
        components: 2,
        seed_fraction: 0.3,
    }
}

fn fixed_tri_spec() -> GraphSpec {
    GraphSpec {
        nodes: 16,
        edges: 48,
        seed: 9,
        max_weight: 5,
    }
}

#[test]
fn label_propagation_runs_semi_naive() {
    let db = Database::new(config(2, true)).unwrap();
    load_labeled_graph_into(&db, "edges", "labels", &fixed_labeled_spec()).unwrap();
    db.query(&label_propagation_cte()).unwrap();
    let stats = db.stats();
    assert_eq!(stats.semi_naive_loops, 1, "monotone MIN body must rewrite");
    assert!(stats.delta_rows_fed > 0, "delta never consumed");
    let text = db
        .explain_analyze(&label_propagation_cte())
        .unwrap()
        .render();
    assert!(
        text.contains("iteration: mode=semi_naive"),
        "missing semi-naive mode line:\n{text}"
    );
}

#[test]
fn non_monotone_ml_workloads_fall_back_to_full() {
    // Even with semi-naive enabled, ARG_MIN/AVG (k-means), SUM (triangle
    // rank) and the gradient updates (logreg) are not monotone MIN/MAX
    // accumulators — rewriting them would be unsound.
    let pspec = PointsSpec::small();
    let fspec = FeatureSpec::small();
    type Loader = Box<dyn Fn(&Database)>;
    let cases: [(&str, String, Loader); 3] = [
        (
            "kmeans",
            kmeans_cte(pspec.clusters, 3),
            Box::new(move |db| {
                load_points_into(db, "points", &pspec).unwrap();
            }),
        ),
        (
            "triangle_rank",
            triangle_rank_cte(3),
            Box::new(move |db| {
                load_edges_into(db, "edges", &fixed_tri_spec()).unwrap();
            }),
        ),
        (
            "logreg",
            logistic_regression_cte(3, 0.1),
            Box::new(move |db| {
                load_features_into(db, "observations", &fspec).unwrap();
            }),
        ),
    ];
    for (name, sql, load) in cases {
        let db = Database::new(config(2, true)).unwrap();
        load(&db);
        db.query(&sql).unwrap();
        assert_eq!(
            db.stats().semi_naive_loops,
            0,
            "unsound rewrite applied to {name}"
        );
        let text = db.explain_analyze(&sql).unwrap().render();
        assert!(
            text.contains("iteration: mode=full"),
            "{name} missing full mode line:\n{text}"
        );
    }
}

// ---------------------------------------------------------------------
// Fault / spill / checkpoint matrix: the durability machinery must be
// semantically invisible for every new workload.
// ---------------------------------------------------------------------

/// Strategy: one deterministic fault (site × position), panic kind only
/// at the Worker site (the only catch_unwind boundary) — mirrors the
/// matrix in `tests/properties.rs`.
fn single_fault() -> impl Strategy<Value = FaultConfig> {
    (0usize..7, 1u64..40, any::<bool>()).prop_map(|(site_idx, nth, panic)| {
        let site = [
            FaultSite::Exchange,
            FaultSite::Materialize,
            FaultSite::Rename,
            FaultSite::LoopIteration,
            FaultSite::Worker,
            FaultSite::Checkpoint,
            FaultSite::Recovery,
        ][site_idx];
        if panic && site == FaultSite::Worker {
            FaultConfig::panic_nth(site, nth)
        } else {
            FaultConfig::fail_nth(site, nth)
        }
    })
}

/// Strategy: a recovery policy with every mechanism enabled.
fn enabled_recovery_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (1u64..5, 1u64..3, 1u64..4).prop_map(|(interval, retries, recoveries)| RecoveryPolicy {
        checkpoint_interval: interval,
        max_partition_retries: retries,
        retry_backoff_ms: 0,
        max_loop_recoveries: recoveries,
    })
}

/// Load the shape's tables and run its query under `config`.
fn run_workload(shape: usize, config: EngineConfig) -> spinner_common::Batch {
    let db = Database::new(config).unwrap();
    let result = match shape {
        0 => {
            let spec = PointsSpec::small();
            load_points_into(&db, "points", &spec).unwrap();
            db.query(&kmeans_cte(spec.clusters, 4))
        }
        1 => {
            load_labeled_graph_into(&db, "edges", "labels", &fixed_labeled_spec()).unwrap();
            db.query(&label_propagation_cte())
        }
        2 => {
            load_edges_into(&db, "edges", &fixed_tri_spec()).unwrap();
            db.query(&triangle_rank_cte(3))
        }
        _ => {
            load_features_into(&db, "observations", &FeatureSpec::small()).unwrap();
            db.query(&logistic_regression_cte(4, 0.1))
        }
    };
    result.unwrap_or_else(|e| panic!("workload shape {shape} failed: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single fault under any enabled recovery policy — optionally
    /// with every allocation spilling to disk — leaves every workload's
    /// results unchanged (tolerance only covers the replay's aggregation
    /// order; integer label propagation stays exact).
    #[test]
    fn workload_fault_spill_checkpoint_invariance(
        shape in 0usize..4,
        fault in single_fault(),
        policy in enabled_recovery_policy(),
        spill in any::<bool>(),
    ) {
        let clean = run_workload(shape, EngineConfig::default());
        let mut cfg = EngineConfig::default()
            .with_recovery(policy)
            .with_fault(fault.clone());
        if spill {
            cfg = cfg.with_spill_threshold_bytes(1);
        }
        let faulty = run_workload(shape, cfg);
        if let Err(msg) = rows_approx_eq(faulty.rows(), clean.rows(), DEFAULT_TOLERANCE) {
            prop_assert!(
                false,
                "shape {} fault {:?} spill {} changed results: {}",
                shape, fault, spill, msg
            );
        }
    }
}

// ---------------------------------------------------------------------
// Typed errors and EXPLAIN round-trips for the new aggregate.
// ---------------------------------------------------------------------

fn arg_db() -> Database {
    let db = Database::default();
    db.execute("CREATE TABLE t (g INT, v INT, k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10, 3), (1, 20, 1), (2, 30, 2)")
        .unwrap();
    db
}

#[test]
fn arg_extreme_misuse_is_a_typed_plan_error() {
    let db = arg_db();
    let err = db
        .query("SELECT g, ARG_MIN(v) FROM t GROUP BY g")
        .unwrap_err();
    assert!(
        matches!(err, Error::Plan(ref m) if m.contains("exactly two arguments")),
        "{err}"
    );
    let err = db
        .query("SELECT g, ARG_MAX(v, k, g) FROM t GROUP BY g")
        .unwrap_err();
    assert!(
        matches!(err, Error::Plan(ref m) if m.contains("exactly two arguments")),
        "{err}"
    );
    let err = db
        .query("SELECT g, ARG_MIN(DISTINCT v, k) FROM t GROUP BY g")
        .unwrap_err();
    assert!(
        matches!(err, Error::Plan(ref m) if m.contains("DISTINCT")),
        "{err}"
    );
    let err = db
        .query("SELECT g, ARG_MAX(*) FROM t GROUP BY g")
        .unwrap_err();
    assert!(
        matches!(err, Error::Plan(ref m) if m.contains("not supported")),
        "{err}"
    );
}

#[test]
fn explain_round_trips_arg_extremes() {
    let db = arg_db();
    let text = db
        .explain("SELECT g, ARG_MIN(v, k), ARG_MAX(v, k) FROM t GROUP BY g")
        .unwrap();
    // Both aggregates render with both arguments, in callable form.
    assert!(text.contains("arg_min(t.v"), "missing arg_min:\n{text}");
    assert!(text.contains("arg_max(t.v"), "missing arg_max:\n{text}");
    assert!(text.contains("t.k"), "missing the ordering key:\n{text}");
}

#[test]
fn arg_extremes_basic_semantics() {
    let db = arg_db();
    // Group 1: min key 1 carries v=20; max key 3 carries v=10.
    let batch = db
        .query("SELECT g, ARG_MIN(v, k), ARG_MAX(v, k) FROM t GROUP BY g ORDER BY g")
        .unwrap();
    let want = [
        row_of([Value::Int(1), Value::Int(20), Value::Int(10)]),
        row_of([Value::Int(2), Value::Int(30), Value::Int(30)]),
    ];
    assert_eq!(batch.rows(), &want[..]);
    // NULL keys are ignored; an all-NULL-key group yields NULL.
    db.execute("CREATE TABLE n (g INT, v INT, k INT)").unwrap();
    db.execute("INSERT INTO n VALUES (1, 5, NULL), (1, 7, 2), (2, 9, NULL)")
        .unwrap();
    let batch = db
        .query("SELECT g, ARG_MIN(v, k) FROM n GROUP BY g ORDER BY g")
        .unwrap();
    let want = [
        row_of([Value::Int(1), Value::Int(7)]),
        row_of([Value::Int(2), Value::Null]),
    ];
    assert_eq!(batch.rows(), &want[..]);
}
