//! Cross-checks between the native iterative-CTE execution and the two
//! baseline strategies (stored procedures, SQLoop middleware), plus the
//! cost asymmetries the paper attributes to each (§II, §VII-E).

use spinner_datagen::{load_edges_into, load_vertex_status_into, GraphSpec};
use spinner_engine::Database;
use spinner_procedural::{ff, pagerank, run_script, sssp};

fn spec() -> GraphSpec {
    GraphSpec {
        nodes: 300,
        edges: 1_500,
        seed: 17,
        max_weight: 10,
    }
}

fn db(with_vs: bool) -> Database {
    let db = Database::default();
    load_edges_into(&db, "edges", &spec()).unwrap();
    if with_vs {
        load_vertex_status_into(&db, "vertexstatus", &spec(), 0.8).unwrap();
    }
    db
}

#[test]
fn all_three_strategies_agree_on_pagerank_vs() {
    let w = pagerank(10, true);
    let d = db(true);
    let native = d.query(&w.cte).unwrap();
    let proc_rows = run_script(&d, &w.procedure).unwrap().rows;
    let mw_rows = run_script(&d, &w.middleware).unwrap().rows;
    assert_eq!(native.rows(), proc_rows.rows());
    assert_eq!(native.rows(), mw_rows.rows());
}

#[test]
fn all_three_strategies_agree_on_sssp_vs() {
    let w = sssp(10, 1, true);
    let d = db(true);
    let native = d.query(&w.cte).unwrap();
    let proc_rows = run_script(&d, &w.procedure).unwrap().rows;
    let mw_rows = run_script(&d, &w.middleware).unwrap().rows;
    assert_eq!(native.rows(), proc_rows.rows());
    assert_eq!(native.rows(), mw_rows.rows());
}

#[test]
fn all_three_strategies_agree_on_ff() {
    let w = ff(25, 2);
    let d = db(false);
    let native = d.query(&w.cte).unwrap();
    let proc_rows = run_script(&d, &w.procedure).unwrap().rows;
    let mw_rows = run_script(&d, &w.middleware).unwrap().rows;
    assert_eq!(native.rows(), proc_rows.rows());
    assert_eq!(native.rows(), mw_rows.rows());
}

#[test]
fn middleware_pays_ddl_per_iteration_native_pays_none() {
    let w = pagerank(10, false);
    let d = db(false);
    let ddl_before = d.catalog().ddl_op_count();
    d.query(&w.cte).unwrap();
    assert_eq!(
        d.catalog().ddl_op_count(),
        ddl_before,
        "native execution performs zero catalog operations"
    );
    let report = run_script(&d, &w.middleware).unwrap();
    // CREATE + DROP of the working table per iteration, plus setup/cleanup.
    assert!(report.ddl_ops >= 2 * 10);
}

#[test]
fn procedure_statement_count_scales_with_iterations() {
    let d = db(false);
    let r5 = run_script(&d, &ff(5, 10).procedure).unwrap();
    let r20 = run_script(&d, &ff(20, 10).procedure).unwrap();
    assert_eq!(
        r20.statements_executed - r5.statements_executed,
        15 * 3,
        "3 statements per extra iteration"
    );
}

#[test]
fn procedures_cannot_push_the_ff_predicate() {
    // The native plan with push-down materializes ~1/100 of the rows per
    // iteration; the procedure re-processes the whole table every time.
    // Compare DML rows touched by the procedure against the native
    // materialization counters.
    let d = db(false);
    let w = ff(25, 100);
    d.take_stats();
    d.query(&w.cte).unwrap();
    let native = d.take_stats();
    let report = run_script(&d, &w.procedure).unwrap();
    assert!(
        report.dml_rows > 10 * native.rows_materialized,
        "procedure touched {} rows vs native {} materialized",
        report.dml_rows,
        native.rows_materialized
    );
}

#[test]
fn native_uses_rename_baselines_use_dml() {
    let d = db(false);
    let w = ff(10, 10);
    d.take_stats();
    d.query(&w.cte).unwrap();
    let native = d.take_stats();
    assert!(native.renames >= 10, "one rename per iteration");
    let report = run_script(&d, &w.procedure).unwrap();
    // Each iteration DELETEs + INSERTs + UPDATEs the full working set.
    assert!(report.dml_rows as usize >= 10 * 3 * 100);
}
