//! MPP substrate checks: partitioning must be an implementation detail —
//! any partition count, any distribution column, parallel or sequential
//! workers — while the exchange counters reflect genuine data movement.

use spinner_datagen::{load_edges_into, GraphSpec};
use spinner_engine::{Database, EngineConfig, Value};
use spinner_procedural::pagerank;

fn load(config: EngineConfig) -> Database {
    let db = Database::new(config).unwrap();
    let spec = GraphSpec {
        nodes: 150,
        edges: 700,
        seed: 23,
        max_weight: 10,
    };
    load_edges_into(&db, "edges", &spec).unwrap();
    db
}

/// Compare result sets cell-by-cell, allowing relative float error: SUM
/// accumulates in partition order, so different partition counts may
/// differ in the last ulps — numerically equal, bitwise not.
fn assert_rows_approx_eq(a: &spinner_engine::Batch, b: &spinner_engine::Batch, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        for (va, vb) in ra.iter().zip(rb.iter()) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() / scale < 1e-9, "{what}: {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "{what}"),
            }
        }
    }
}

#[test]
fn pagerank_equal_across_partition_counts_up_to_float_order() {
    let sql = pagerank(8, false).cte;
    let reference = load(EngineConfig::default().with_partitions(1))
        .query(&sql)
        .unwrap();
    for parts in [2, 3, 4, 7, 16] {
        let got = load(EngineConfig::default().with_partitions(parts))
            .query(&sql)
            .unwrap();
        assert_rows_approx_eq(&got, &reference, &format!("{parts} partitions"));
    }
}

#[test]
fn pagerank_identical_with_parallel_workers() {
    // Same partitioning, so the accumulation order is identical and the
    // comparison can be exact: parallelism itself must not perturb results.
    let sql = pagerank(8, false).cte;
    let seq = load(EngineConfig::default()).query(&sql).unwrap();
    let par = load(EngineConfig::default().with_parallel_partitions(true))
        .query(&sql)
        .unwrap();
    assert_eq!(seq.rows(), par.rows());
}

#[test]
fn single_partition_moves_no_rows() {
    let db = load(EngineConfig::default().with_partitions(1));
    db.query(&pagerank(5, false).cte).unwrap();
    let stats = db.take_stats();
    assert_eq!(stats.rows_moved, 0, "one worker has nowhere to move rows");
}

#[test]
fn join_on_distribution_key_moves_less_than_on_other_key() {
    // `edges` is distributed on dst. Joining on dst should co-locate;
    // joining on weight must reshuffle.
    let db = load(EngineConfig::default().with_partitions(8));
    db.take_stats();
    db.query("SELECT COUNT(*) FROM edges a JOIN edges b ON a.dst = b.dst")
        .unwrap();
    let colocated = db.take_stats().rows_moved;
    db.query("SELECT COUNT(*) FROM edges a JOIN edges b ON a.weight = b.weight")
        .unwrap();
    let reshuffled = db.take_stats().rows_moved;
    assert!(
        colocated < reshuffled / 2,
        "co-located join moved {colocated}, reshuffled join moved {reshuffled}"
    );
}

#[test]
fn outer_joins_survive_skewed_partitions() {
    // All rows share one key -> they all land in a single partition; the
    // other partitions are empty, which exercises the empty-side padding
    // paths of the hash join.
    let db = Database::new(EngineConfig::default().with_partitions(8)).unwrap();
    db.execute("CREATE TABLE l (k INT, v INT)").unwrap();
    db.execute("CREATE TABLE r (k INT, w INT)").unwrap();
    db.execute("INSERT INTO l VALUES (7, 1), (7, 2), (8, 3)")
        .unwrap();
    db.execute("INSERT INTO r VALUES (7, 10)").unwrap();
    let batch = db
        .query("SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.v")
        .unwrap();
    assert_eq!(batch.len(), 3);
    assert_eq!(batch.rows()[0][1], Value::Int(10));
    assert!(batch.rows()[2][1].is_null(), "k=8 unmatched, padded");
    let full = db
        .query("SELECT COUNT(*) FROM l FULL JOIN r ON l.k = r.k")
        .unwrap();
    assert_eq!(full.rows()[0][0], Value::Int(3));
}

#[test]
fn two_phase_aggregation_moves_fewer_rows_same_results() {
    // edges is distributed on dst but grouped on src: single-phase must
    // reshuffle every raw row, two-phase ships one partial row per
    // (partition, group).
    let sql = "SELECT src, COUNT(*) AS n, SUM(weight) AS w, AVG(weight) AS a, \
               MIN(dst) AS lo, MAX(dst) AS hi \
               FROM edges GROUP BY src ORDER BY src";
    let one = load(EngineConfig::default().with_two_phase_aggregation(false));
    let two = load(EngineConfig::default());
    let r1 = one.query(sql).unwrap();
    let r2 = two.query(sql).unwrap();
    assert_eq!(r1.rows(), r2.rows());
    let m1 = one.take_stats().rows_moved;
    let m2 = two.take_stats().rows_moved;
    assert!(
        m2 < m1,
        "two-phase should move fewer rows: single={m1} two-phase={m2}"
    );
}

#[test]
fn distinct_aggregates_correct_under_two_phase_config() {
    let db = load(EngineConfig::default());
    let a = db.query("SELECT COUNT(DISTINCT dst) FROM edges").unwrap();
    let b = db
        .query("SELECT COUNT(*) FROM (SELECT DISTINCT dst FROM edges)")
        .unwrap();
    assert_eq!(a.rows(), b.rows());
    // Grouped DISTINCT falls back to single-phase — still correct.
    let per_src = db
        .query("SELECT src, COUNT(DISTINCT weight) FROM edges GROUP BY src ORDER BY src")
        .unwrap();
    assert!(!per_src.is_empty());
}

#[test]
fn broadcast_counter_tracks_replication() {
    // No broadcast exchanges are planned today, but the counter must stay
    // zero rather than accumulate garbage.
    let db = load(EngineConfig::default());
    db.query("SELECT COUNT(*) FROM edges").unwrap();
    assert_eq!(db.take_stats().rows_broadcast, 0);
}

#[test]
fn concurrent_readers_share_one_database() {
    // Database is &self for queries; catalog and registry use internal
    // locks, so read-only sessions can share an Arc across threads.
    let db = std::sync::Arc::new(load(EngineConfig::default()));
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let db = std::sync::Arc::clone(&db);
            std::thread::spawn(move || {
                let sql = format!(
                    "WITH ITERATIVE t (k, v) AS (
                         SELECT DISTINCT src, {i} FROM edges
                     ITERATE SELECT k, v + 1 FROM t
                     UNTIL 5 ITERATIONS) SELECT MAX(v) FROM t"
                );
                db.query(&sql).unwrap().rows()[0][0].as_i64().unwrap()
            })
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join().unwrap(), i as i64 + 5);
    }
}

#[test]
fn empty_table_edge_cases() {
    let db = Database::new(EngineConfig::default().with_partitions(4)).unwrap();
    db.execute("CREATE TABLE empty (a INT, b FLOAT)").unwrap();
    // Scans, joins, aggregates and limits over empty inputs.
    assert_eq!(db.query("SELECT * FROM empty").unwrap().len(), 0);
    assert_eq!(
        db.query("SELECT COUNT(*), SUM(b) FROM empty")
            .unwrap()
            .rows()[0][0],
        Value::Int(0)
    );
    assert_eq!(
        db.query("SELECT * FROM empty e1 JOIN empty e2 ON e1.a = e2.a")
            .unwrap()
            .len(),
        0
    );
    assert_eq!(
        db.query("SELECT a FROM empty ORDER BY a LIMIT 0")
            .unwrap()
            .len(),
        0
    );
    // An iterative CTE over an empty R0 still terminates.
    let batch = db
        .query(
            "WITH ITERATIVE t (a, b) AS (
                 SELECT a, b FROM empty
             ITERATE SELECT a, b + 1 FROM t
             UNTIL 3 ITERATIONS) SELECT COUNT(*) FROM t",
        )
        .unwrap();
    assert_eq!(batch.rows()[0][0], Value::Int(0));
}

#[test]
fn until_any_stops_at_first_satisfying_row() {
    let db = Database::default();
    db.execute("CREATE TABLE seeds (k INT, v INT)").unwrap();
    db.execute("INSERT INTO seeds VALUES (1, 0), (2, 5)")
        .unwrap();
    // Row 2 reaches v > 8 first; ANY stops the loop for everyone.
    db.query(
        "WITH ITERATIVE t (k, v) AS (
             SELECT k, v FROM seeds
         ITERATE SELECT k, v + 1 FROM t
         UNTIL ANY (v > 8))
         SELECT k, v FROM t ORDER BY k",
    )
    .unwrap();
    assert_eq!(db.take_stats().iterations, 4); // 5 + 4 = 9 > 8
}

#[test]
fn rename_is_constant_work_regardless_of_size() {
    // The rename path's registry re-point must not scale with table size:
    // compare renames (not rows) across two very different sizes.
    let run = |nodes: usize| {
        let db = Database::default();
        let spec = GraphSpec {
            nodes,
            edges: nodes * 3,
            seed: 1,
            max_weight: 5,
        };
        load_edges_into(&db, "edges", &spec).unwrap();
        db.query(
            "WITH ITERATIVE t (k, v) AS (
                 SELECT DISTINCT src, 0 FROM edges
             ITERATE SELECT k, v + 1 FROM t
             UNTIL 5 ITERATIONS) SELECT COUNT(*) FROM t",
        )
        .unwrap();
        db.take_stats()
    };
    let small = run(50);
    let large = run(1_000);
    assert_eq!(small.renames, large.renames);
    assert_eq!(small.merges, 0);
    assert_eq!(large.merges, 0);
}

#[test]
fn every_statement_returns_state_to_baseline() {
    // Leak check: after each statement — reads, DML, iterative loops,
    // EXPLAIN ANALYZE, failures — the temp-result registry, the memory
    // accountant and the admission controller are all back to baseline.
    let db = load(
        EngineConfig::default()
            .with_partitions(4)
            .with_max_concurrent_queries(2),
    );
    let baseline_bytes = db.resident_tracked_bytes();
    let baseline_regions = db.tracked_region_count();
    let statements = [
        "SELECT COUNT(*) FROM edges",
        &pagerank(5, false).cte,
        "INSERT INTO edges VALUES (9001, 9002, 1.0)",
        "EXPLAIN ANALYZE SELECT src, COUNT(*) FROM edges GROUP BY src",
        "SELECT * FROM no_such_table", // typed failure path
        "WITH ITERATIVE t (k, v) AS (
             SELECT DISTINCT src, 0 FROM edges
         ITERATE SELECT k, v + 1 FROM t
         UNTIL 6 ITERATIONS) SELECT COUNT(*) FROM t",
    ];
    for sql in statements {
        let _ = db.execute(sql); // failures are part of the matrix
        assert_eq!(db.temp_result_count(), 0, "temp leak after {sql:?}");
        assert_eq!(
            db.resident_tracked_bytes(),
            baseline_bytes,
            "resident-bytes leak after {sql:?}"
        );
        assert_eq!(
            db.tracked_region_count(),
            baseline_regions,
            "region leak after {sql:?}"
        );
        let snap = db.admission().unwrap().snapshot();
        assert_eq!(
            (snap.active, snap.queued),
            (0, 0),
            "admission leak after {sql:?}: {snap:?}"
        );
    }
}
