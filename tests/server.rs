//! Server front-end suite: the TCP protocol round-trips every result
//! shape, sessions isolate their guardrail overrides, overload is shed
//! with typed wire errors, dropped connections cancel their statement
//! and release their admission slot, network-path chaos (accept /
//! read / write faults) never wedges the server, and graceful drain
//! refuses new work while letting in-flight statements finish.
//!
//! Every test ends with the leak check: admission slots, temp results,
//! tracked memory regions and resident bytes all back to baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spinner_engine::{Database, EngineConfig, FaultConfig, FaultSite};
use spinner_server::{Client, Reply, Server};

/// Assert that a database holds no leaked per-statement state: no
/// admission slot occupied or queued, no temp results, and the memory
/// accountant back to its post-setup baseline.
fn assert_no_leaks(db: &Database, baseline_bytes: u64, baseline_regions: usize) {
    if let Some(ctrl) = db.admission() {
        // Shed or cancelled statements release their permits on the
        // error path; give stragglers a moment to unwind.
        assert!(
            ctrl.wait_idle(Duration::from_secs(10)),
            "admission controller still busy: {:?}",
            ctrl.snapshot()
        );
        let snap = ctrl.snapshot();
        assert_eq!(snap.active, 0, "leaked admission slot: {snap:?}");
        assert_eq!(snap.queued, 0, "leaked admission queue entry: {snap:?}");
    }
    assert_eq!(db.temp_result_count(), 0, "leaked temp results");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let bytes = db.resident_tracked_bytes();
        let regions = db.tracked_region_count();
        if bytes <= baseline_bytes && regions <= baseline_regions {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leaked tracked memory: {bytes} bytes / {regions} regions \
             (baseline {baseline_bytes} / {baseline_regions})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn server_with(config: EngineConfig) -> Server {
    let db = Arc::new(Database::new(config).unwrap());
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, NULL), (3, 'three')")
        .unwrap();
    Server::start(db, "127.0.0.1:0").unwrap()
}

/// An iterative statement that runs long enough to overlap other
/// clients but terminates on its own.
fn slow_cte(iterations: u64) -> String {
    format!(
        "WITH ITERATIVE x (k, v) AS (SELECT a, 0 FROM t \
         ITERATE SELECT k, v + 1 FROM x UNTIL {iterations} ITERATIONS) \
         SELECT COUNT(*) FROM x"
    )
}

#[test]
fn protocol_round_trips_every_result_shape() {
    let server = server_with(EngineConfig::default().with_max_concurrent_queries(2));
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert!(c.session_id() > 0);

    // Rows, including NULL cells and column names.
    let reply = c.query("SELECT a, b FROM t ORDER BY a").unwrap();
    match &reply {
        Reply::Rows { columns, rows } => {
            assert_eq!(columns, &["a".to_string(), "b".to_string()]);
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[1], vec![Some("2".into()), None]);
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // DML, DDL, EXPLAIN, EXPLAIN ANALYZE and errors.
    assert_eq!(
        c.query("INSERT INTO t VALUES (4, 'four')").unwrap(),
        Reply::Affected(1)
    );
    assert_eq!(c.query("CREATE TABLE u (x INT)").unwrap(), Reply::Ddl);
    match c.query("EXPLAIN SELECT * FROM t").unwrap() {
        Reply::Text(text) => assert!(!text.is_empty()),
        other => panic!("expected text, got {other:?}"),
    }
    match c
        .query(&format!("EXPLAIN ANALYZE {}", slow_cte(3)))
        .unwrap()
    {
        Reply::Text(text) => assert!(text.contains("Total"), "profile text: {text}"),
        other => panic!("expected text, got {other:?}"),
    }
    match c.query("SELECT * FROM no_such_table").unwrap() {
        Reply::Error { code, .. } => assert_eq!(code, "table_not_found"),
        other => panic!("expected error, got {other:?}"),
    }

    c.close().unwrap();
    let db = Arc::clone(server.database());
    let (bytes, regions) = (db.resident_tracked_bytes(), db.tracked_region_count());
    server.shutdown(Duration::from_secs(5));
    assert_no_leaks(&db, bytes, regions);
}

#[test]
fn session_overrides_stay_per_connection() {
    let server = server_with(EngineConfig::default().with_max_concurrent_queries(2));
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    assert_ne!(a.session_id(), b.session_id());

    // Session A starves itself; session B on the same database is
    // untouched by A's override.
    assert_eq!(
        a.query("SET SESSION MAX_ROWS_MATERIALIZED = 1").unwrap(),
        Reply::Ddl
    );
    let starved = a.query(&slow_cte(4)).unwrap();
    assert_eq!(
        starved.error_code(),
        Some("resource_exhausted"),
        "got {starved:?}"
    );
    assert_eq!(b.query(&slow_cte(4)).unwrap().scalar_i64(), Some(3));

    // RESET restores A.
    a.query("RESET SESSION ALL").unwrap();
    assert_eq!(a.query(&slow_cte(4)).unwrap().scalar_i64(), Some(3));

    a.close().unwrap();
    b.close().unwrap();
    server.shutdown(Duration::from_secs(5));
}

#[test]
fn overload_is_shed_with_typed_wire_errors() {
    // One slot, a one-deep queue, and a 100 ms admission timeout: while
    // a runaway statement hogs the slot, every probe must come back as
    // a typed shed (`admission_timeout` from the queue, `overloaded`
    // from queue overflow) — never wait unboundedly, never wedge.
    let server = server_with(
        EngineConfig::default()
            .with_max_concurrent_queries(1)
            .with_admission_queue_limit(1)
            .with_admission_timeout_ms(100)
            // Lift the iteration safety bound so the hog genuinely runs
            // until its session deadline, not until the loop limit.
            .with_max_iterations(1_000_000_000),
    );
    let addr = server.local_addr();
    let hog = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        // The runaway is bounded by its own session deadline, proving
        // the "shed or bounded" contract end to end.
        c.query("SET SESSION TIMEOUT_MS = 3000").unwrap();
        let reply = c.query(&slow_cte(100_000_000)).unwrap();
        c.close().unwrap();
        reply
    });
    // Let the hog claim the slot before probing.
    std::thread::sleep(Duration::from_millis(300));

    let mut shed = 0;
    let deadline = Instant::now() + Duration::from_secs(30);
    while shed < 3 {
        assert!(Instant::now() < deadline, "never observed an overload shed");
        let mut c = Client::connect(addr).unwrap();
        match c.query("SELECT COUNT(*) FROM t").unwrap() {
            Reply::Error { code, message } => {
                assert!(
                    code == "overloaded" || code == "admission_timeout",
                    "unexpected shed code {code}: {message}"
                );
                shed += 1;
            }
            // The hog hit its deadline and the slot is free again.
            reply => assert_eq!(reply.scalar_i64(), Some(3)),
        }
        c.close().unwrap();
    }
    let hog_reply = hog.join().unwrap();
    assert_eq!(
        hog_reply.error_code(),
        Some("timeout"),
        "runaway was not deadline-bounded: {hog_reply:?}"
    );

    let db = Arc::clone(server.database());
    let snap = db.admission().unwrap().snapshot();
    assert!(snap.shed_total() >= 1, "sheds not counted: {snap:?}");
    server.shutdown(Duration::from_secs(5));
    assert_no_leaks(&db, u64::MAX, usize::MAX);
}

#[test]
fn killed_connection_cancels_its_statement_and_releases_the_slot() {
    let server = server_with(
        EngineConfig::default()
            .with_max_concurrent_queries(1)
            .with_admission_queue_limit(4)
            // The orphaned statement must still be looping when the
            // watcher cancels it, not stopped by the iteration bound.
            .with_max_iterations(1_000_000_000),
    );
    let db = Arc::clone(server.database());
    let (bytes, regions) = (db.resident_tracked_bytes(), db.tracked_region_count());
    let addr = server.local_addr();

    // The victim starts an effectively unbounded loop, then the client
    // vanishes without a close frame, mid-query.
    let mut victim = Client::connect(addr).unwrap();
    victim.query("SET SESSION TIMEOUT_MS = 60000").unwrap();
    victim.fire(&slow_cte(100_000_000)).unwrap();
    // Give the statement a beat to be admitted and start looping, then
    // slam the socket shut without reading the reply.
    std::thread::sleep(Duration::from_millis(150));
    victim.kill();

    // The sole admission slot must come back: a fresh client's query
    // succeeds once the watcher cancels the orphaned statement.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut probe = Client::connect(addr).unwrap();
        let reply = probe.query("SELECT COUNT(*) FROM t").unwrap();
        probe.close().unwrap();
        match reply {
            Reply::Rows { .. } => break,
            Reply::Error { ref code, .. }
                if code == "overloaded" || code == "admission_timeout" =>
            {
                assert!(
                    Instant::now() < deadline,
                    "killed connection never released its admission slot"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("unexpected probe reply {other:?}"),
        }
    }

    server.shutdown(Duration::from_secs(5));
    assert_no_leaks(&db, bytes, regions);
}

#[test]
fn accept_and_session_faults_shed_connections_without_wedging() {
    // Deterministic chaos on the network path: the 1st accept, the 2nd
    // session read and the 2nd session write each fail once.
    let mut db = Database::new(EngineConfig::default()).unwrap();
    db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, NULL), (3, 'three')")
        .unwrap();
    db.set_config(
        EngineConfig::default()
            .with_max_concurrent_queries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::Accept, 1))
            .with_fault(FaultConfig::fail_nth(FaultSite::SessionRead, 2))
            .with_fault(FaultConfig::fail_nth(FaultSite::SessionWrite, 2)),
    )
    .unwrap();
    let db = Arc::new(db);
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Connection 1 is shed at the accept site: the server drops the
    // socket before greeting, so connect() fails reading the hello.
    assert!(Client::connect(addr).is_err(), "accept fault did not shed");

    // Later connections ride through read/write faults: each fault
    // kills one connection (typed teardown), never the server.
    let mut survived = 0;
    for _ in 0..8 {
        let Ok(mut c) = Client::connect(addr) else {
            continue;
        };
        match c.query("SELECT COUNT(*) FROM t") {
            Ok(reply) => {
                assert_eq!(reply.scalar_i64(), Some(3));
                survived += 1;
                let _ = c.close();
            }
            // Torn read or torn write: the connection died, by design.
            Err(_) => continue,
        }
    }
    assert!(
        survived >= 5,
        "server wedged after network faults: only {survived}/8 connections served"
    );

    server.shutdown(Duration::from_secs(5));
    assert_no_leaks(&db, u64::MAX, usize::MAX);
}

#[test]
fn graceful_drain_sheds_new_work_and_finishes_in_flight() {
    let server = server_with(
        EngineConfig::default()
            .with_max_concurrent_queries(4)
            .with_admission_queue_limit(8),
    );
    let db = Arc::clone(server.database());
    let addr = server.local_addr();

    // A statement in flight when the drain starts (kept under the
    // default iteration bound so it terminates on its own)...
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.query(&slow_cte(8_000))
    });
    // ...must still finish; give it a moment to be admitted first.
    std::thread::sleep(Duration::from_millis(100));
    let draining = std::thread::spawn(move || server.shutdown(Duration::from_secs(30)));

    // A connection error is also acceptable: the socket may be torn
    // down right after the grace period expires.
    if let Ok(reply) = in_flight.join().unwrap() {
        match reply {
            Reply::Rows { .. } => {}
            // If the drain won the race to the admission gate, the
            // typed shed signal is the acceptable alternative.
            Reply::Error { ref code, .. } if code == "shutting_down" => {}
            other => panic!("in-flight statement got {other:?}"),
        }
    }
    draining.join().unwrap();

    // After drain: no slot leaked, and the server is gone.
    let snap = db.admission().unwrap().snapshot();
    assert_eq!((snap.active, snap.queued), (0, 0), "drain leaked: {snap:?}");
    assert!(
        Client::connect(addr).is_err(),
        "listener still accepting after shutdown"
    );
}

#[test]
fn silent_connections_are_reaped_by_the_keepalive() {
    // Satellite: a half-open peer (client alive at the TCP level but
    // silent forever) is reaped once it idles past session_keepalive_ms,
    // while clients that keep issuing statements are untouched — the
    // idle budget resets on every frame.
    let server = server_with(
        EngineConfig::default()
            .with_max_concurrent_queries(2)
            .with_session_keepalive_ms(400),
    );
    let db = Arc::clone(server.database());
    let (bytes, regions) = (db.resident_tracked_bytes(), db.tracked_region_count());
    let addr = server.local_addr();

    // An active client paced just under the keepalive survives several
    // rounds: the deadline is per-frame, not per-connection-lifetime.
    let mut active = Client::connect(addr).unwrap();
    for _ in 0..4 {
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(
            active.query("SELECT COUNT(*) FROM t").unwrap().scalar_i64(),
            Some(3),
            "active client was reaped despite staying under the keepalive"
        );
    }
    active.close().unwrap();

    // A silent client is reaped: after idling past the keepalive the
    // server has closed the socket, so the next statement fails at the
    // wire (write error or torn reply), never with a served response.
    let mut idle = Client::connect(addr).unwrap();
    assert_eq!(
        idle.query("SELECT COUNT(*) FROM t").unwrap().scalar_i64(),
        Some(3)
    );
    std::thread::sleep(Duration::from_millis(1200));
    assert!(
        idle.query("SELECT COUNT(*) FROM t").is_err(),
        "silent connection was not reaped after the keepalive expired"
    );

    // The server itself is healthy: fresh clients are served normally.
    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(
        fresh.query("SELECT COUNT(*) FROM t").unwrap().scalar_i64(),
        Some(3)
    );
    fresh.close().unwrap();

    server.shutdown(Duration::from_secs(5));
    assert_no_leaks(&db, bytes, regions);
}

#[test]
fn post_statement_leak_check_across_every_result_shape() {
    // Satellite: after EVERY statement — success, typed failure, shed —
    // temp results, accountant regions and resident bytes are back to
    // baseline and no admission slot is held.
    let server = server_with(
        EngineConfig::default()
            .with_max_concurrent_queries(2)
            .with_max_intermediate_bytes(1 << 30),
    );
    let db = Arc::clone(server.database());
    let baseline_bytes = db.resident_tracked_bytes();
    let baseline_regions = db.tracked_region_count();
    let mut c = Client::connect(server.local_addr()).unwrap();

    let statements = [
        "SELECT a, b FROM t ORDER BY a",
        "INSERT INTO t VALUES (10, 'ten')",
        "EXPLAIN SELECT COUNT(*) FROM t",
        &slow_cte(50),
        &format!("EXPLAIN ANALYZE {}", slow_cte(10)),
        "SELECT * FROM no_such_table",
        "SET SESSION MAX_ROWS_MATERIALIZED = 1",
        &slow_cte(50), // now starved: typed failure path
        "RESET SESSION ALL",
    ];
    for sql in statements {
        let _ = c.query(sql).unwrap();
        assert_no_leaks(&db, baseline_bytes, baseline_regions);
    }

    c.close().unwrap();
    server.shutdown(Duration::from_secs(5));
    assert_no_leaks(&db, baseline_bytes, baseline_regions);
}
