//! Reproduction of the paper's **Table I**: the logical plan DBSpinner's
//! functional rewrite produces for the PR query. `EXPLAIN` renders the same
//! numbered step structure — materialize the non-iterative part, initialize
//! the loop operator, materialize the iterative part, rename, jump back.

use spinner_engine::{Database, EngineConfig};
use spinner_procedural::{ff, pagerank};

fn db() -> Database {
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute("CREATE TABLE vertexstatus (node INT, status INT)")
        .unwrap();
    db
}

#[test]
fn table1_pagerank_plan_structure() {
    let text = db().explain(&pagerank(10, false).cte).unwrap();
    // Step 1: materialize the union of src/dst into the CTE table.
    assert!(text.contains("1. Materialize"), "missing step 1:\n{text}");
    assert!(text.contains("Union"), "R0 is a UNION:\n{text}");
    // Step 2: loop operator initialized with the metadata condition, N=10.
    assert!(
        text.contains("Initialize loop operator <<Type:metadata, N:10 iterations, Expr:NONE>>"),
        "missing loop init:\n{text}"
    );
    // Step 3: the iterative part — a GROUP BY over two left outer joins.
    assert!(text.contains("Aggregate"), "Ri aggregates:\n{text}");
    assert!(text.contains("Left Join"), "Ri left-joins:\n{text}");
    // Step 4: rename (PR updates the entire dataset — no merge).
    assert!(text.contains("Rename"), "missing rename:\n{text}");
    assert!(
        !text.contains("Merge"),
        "PR must take the rename path:\n{text}"
    );
    // Step 5/6: the conditional jump.
    assert!(text.contains("Go to step"), "missing loop-back:\n{text}");
}

#[test]
fn naive_config_plans_a_merge_instead() {
    let mut database = db();
    database.set_config(EngineConfig::naive()).unwrap();
    let text = database.explain(&pagerank(10, false).cte).unwrap();
    assert!(
        text.contains("Merge"),
        "baseline always pays the merge (Fig. 8 baseline):\n{text}"
    );
}

#[test]
fn common_result_appears_as_pre_loop_materialization() {
    let text = db().explain(&pagerank(10, true).cte).unwrap();
    assert!(
        text.contains("__common_"),
        "PR-VS should hoist edges ⨝ vertexStatus before the loop:\n{text}"
    );
    // The hoisted materialization must come before the loop operator.
    let common_pos = text.find("__common_").unwrap();
    let loop_pos = text.find("Initialize loop operator").unwrap();
    assert!(
        common_pos < loop_pos,
        "common result must precede the loop:\n{text}"
    );
    // With the optimization disabled, no hoisting happens.
    let mut database = db();
    database
        .set_config(EngineConfig::default().with_common_result(false))
        .unwrap();
    let text = database.explain(&pagerank(10, true).cte).unwrap();
    assert!(!text.contains("__common_"));
}

#[test]
fn ff_pushdown_filters_the_non_iterative_part() {
    let text = db().explain(&ff(25, 100).cte).unwrap();
    // The MOD predicate must appear inside step 1 (the R0 materialization),
    // i.e. before the loop operator is initialized.
    let filter_pos = text.find("mod(").expect("predicate in plan");
    let loop_pos = text.find("Initialize loop operator").unwrap();
    assert!(
        filter_pos < loop_pos,
        "predicate should be pushed into R0:\n{text}"
    );
    // Without the optimization it stays in the final query (after the loop).
    let mut database = db();
    database
        .set_config(EngineConfig::default().with_predicate_pushdown(false))
        .unwrap();
    let text = database.explain(&ff(25, 100).cte).unwrap();
    let filter_pos = text.find("mod(").expect("predicate in plan");
    let loop_pos = text.find("Initialize loop operator").unwrap();
    assert!(
        filter_pos > loop_pos,
        "baseline keeps the predicate in Qf:\n{text}"
    );
}

#[test]
fn pagerank_pushdown_is_refused() {
    // §V-B: pushing a node filter into PR's R0 would corrupt ranks because
    // the iterative part self-joins the CTE. The engine must refuse.
    let sql = "WITH ITERATIVE PageRank (node, rank, delta) AS ( \
                SELECT src, 0, 0.15 \
                FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
              ITERATE \
                SELECT PageRank.node, PageRank.rank + PageRank.delta, \
                       0.85 * SUM(IncomingRank.delta * IncomingEdges.weight) \
                FROM PageRank \
                  LEFT JOIN edges AS IncomingEdges ON PageRank.node = IncomingEdges.dst \
                  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.node = IncomingEdges.src \
                GROUP BY PageRank.node, PageRank.rank + PageRank.delta \
              UNTIL 10 ITERATIONS ) \
              SELECT node, rank FROM PageRank WHERE node = 10";
    let text = db().explain(sql).unwrap();
    let filter_pos = text.find("= 10)").expect("predicate in plan");
    let loop_pos = text.find("Initialize loop operator").unwrap();
    assert!(
        filter_pos > loop_pos,
        "PR's Qf filter must NOT move into R0:\n{text}"
    );
}

#[test]
fn delta_and_data_conditions_render_in_plan() {
    let database = db();
    let text = database
        .explain(
            "WITH ITERATIVE t (k, v) AS (SELECT 1, 0 ITERATE SELECT k, v + 1 FROM t \
             UNTIL DELTA < 5) SELECT * FROM t",
        )
        .unwrap();
    assert!(text.contains("<<Type:delta, N:5, Expr:NONE>>"), "{text}");
    let text = database
        .explain(
            "WITH ITERATIVE t (k, v) AS (SELECT 1, 0 ITERATE SELECT k, v + 1 FROM t \
             UNTIL (v > 3)) SELECT * FROM t",
        )
        .unwrap();
    assert!(text.contains("<<Type:data, N:1, Expr:"), "{text}");
}

/// Like [`db`], but with rows, so `EXPLAIN ANALYZE` has something to run.
fn db_with_data() -> Database {
    let database = db();
    database
        .execute(
            "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), \
             (1, 3, 5.0), (4, 1, 1.0)",
        )
        .unwrap();
    database
        .execute("INSERT INTO vertexstatus VALUES (1, 1), (2, 1), (3, 0), (4, 1)")
        .unwrap();
    database
}

#[test]
fn explain_analyze_pagerank_annotates_every_step() {
    // The Figure-2 PR query, executed under EXPLAIN ANALYZE: the rendering
    // must keep the Table-I step structure AND carry actual row counts,
    // timings and a per-iteration metrics table.
    let profile = db_with_data()
        .explain_analyze(&pagerank(10, false).cte)
        .unwrap();
    let text = profile.render();
    // Same numbered skeleton as plain EXPLAIN.
    assert!(text.contains("1. Materialize"), "missing step 1:\n{text}");
    assert!(
        text.contains("Initialize loop operator <<Type:metadata, N:10 iterations, Expr:NONE>>"),
        "missing loop init:\n{text}"
    );
    assert!(text.contains("Rename"), "missing rename:\n{text}");
    assert!(text.contains("Go to step"), "missing loop-back:\n{text}");
    // Actual per-step counters.
    assert!(text.contains("actual rows="), "missing row counts:\n{text}");
    assert!(
        text.contains("execs=10"),
        "body steps ran 10 times:\n{text}"
    );
    assert!(text.contains("time="), "missing timings:\n{text}");
    // Per-iteration convergence table under the loop.
    assert!(text.contains("iter"), "missing iteration table:\n{text}");
    assert!(
        text.contains("working"),
        "missing working-size column:\n{text}"
    );
    // Structured view: one loop with ten iteration records, operators
    // nested under steps, and rows moved through exchanges accounted.
    let loops = profile.loops();
    assert_eq!(loops.len(), 1);
    assert_eq!(loops[0].iterations.len(), 10);
    assert!(loops[0].iterations.iter().all(|it| it.working_rows == 4));
    assert!(profile.find("SeqScan: edges").is_some(), "{text}");
    let materialize = profile.find("Materialize").unwrap();
    assert!(
        !materialize.children.is_empty(),
        "operators nest under steps"
    );
}

#[test]
fn explain_analyze_delta_termination_reports_convergence() {
    // Delta termination stops when fewer than 5 rows change; v saturates
    // at 10 via LEAST, so deltas shrink monotonically to zero.
    let profile = db_with_data()
        .explain_analyze(
            "WITH ITERATIVE t (k, v) AS (SELECT src, 0 FROM edges \
             ITERATE SELECT k, LEAST(v + 3, 10) FROM t \
             UNTIL DELTA < 1) SELECT * FROM t",
        )
        .unwrap();
    let text = profile.render();
    assert!(text.contains("<<Type:delta, N:1, Expr:NONE>>"), "{text}");
    let loops = profile.loops();
    assert_eq!(loops.len(), 1);
    let iters = &loops[0].iterations;
    // 0 -> 3 -> 6 -> 9 -> 10 -> 10: four changing iterations then a
    // zero-delta one that triggers termination.
    assert_eq!(iters.len(), 5, "{text}");
    assert_eq!(iters.last().unwrap().delta_rows, 0);
    assert!(
        iters.windows(2).all(|w| w[1].delta_rows <= w[0].delta_rows),
        "deltas must not grow: {iters:?}"
    );
}

#[test]
fn explain_analyze_json_round_trips_from_sql() {
    use spinner_engine::QueryProfile;
    let profile = db_with_data()
        .explain_analyze(&pagerank(5, false).cte)
        .unwrap();
    let json = profile.to_json();
    let back = QueryProfile::from_json(&json).unwrap();
    assert_eq!(back, profile);
    assert!(json.contains("\"iterations\""));
    assert!(json.contains("\"rows_moved\""));
}

#[test]
fn merge_path_explain_shows_merge_step() {
    let text = db()
        .explain(
            "WITH ITERATIVE t (k, v) AS (SELECT src, 0 FROM edges \
             ITERATE SELECT k, v + 1 FROM t WHERE k < 5 \
             UNTIL 3 ITERATIONS) SELECT * FROM t",
        )
        .unwrap();
    assert!(
        text.contains("Merge"),
        "WHERE in Ri forces the merge path:\n{text}"
    );
    assert!(text.contains("by key column #0"), "{text}");
}
