//! Worker-pool scheduling and join-state-cache accounting.
//!
//! With `parallel_partitions` on, the persistent pool (PR 5) must absorb
//! every per-partition task — the spawn-per-operator fallback is reserved
//! for `worker_pool = false` — and the loop-invariant join cache must
//! build each `__common_*` hash table once and re-probe it on every later
//! iteration. The counters (`threads_spawned`, `pool_tasks`,
//! `join_builds`, `join_builds_reused`) make both claims testable.

use spinner_datagen::{load_edges_into, load_vertex_status_into, GraphSpec};
use spinner_engine::{Database, EngineConfig};
use spinner_procedural::{pagerank, sssp};

fn spec() -> GraphSpec {
    GraphSpec {
        nodes: 200,
        edges: 900,
        seed: 99,
        max_weight: 10,
    }
}

fn load(config: EngineConfig, with_vs: bool) -> Database {
    let db = Database::new(config).unwrap();
    load_edges_into(&db, "edges", &spec()).unwrap();
    if with_vs {
        load_vertex_status_into(&db, "vertexstatus", &spec(), 0.8).unwrap();
    }
    db
}

#[test]
fn pool_absorbs_all_parallel_tasks() {
    let db = load(
        EngineConfig::default()
            .with_partitions(4)
            .with_parallel_partitions(true),
        false,
    );
    db.query(&pagerank(5, false).cte).unwrap();
    let stats = db.take_stats();
    assert_eq!(
        stats.threads_spawned, 0,
        "pool enabled: no operator may spawn its own threads"
    );
    assert!(
        stats.pool_tasks > 0,
        "parallel work must go through the pool"
    );
}

#[test]
fn pool_off_falls_back_to_spawning() {
    let db = load(
        EngineConfig::default()
            .with_partitions(4)
            .with_parallel_partitions(true)
            .with_worker_pool(false),
        false,
    );
    db.query(&pagerank(5, false).cte).unwrap();
    let stats = db.take_stats();
    assert!(
        stats.threads_spawned > 0,
        "pool disabled: parallel operators spawn scoped threads"
    );
    assert_eq!(stats.pool_tasks, 0);
}

#[test]
fn serial_execution_neither_spawns_nor_pools() {
    let db = load(EngineConfig::default().with_partitions(4), false);
    db.query(&pagerank(5, false).cte).unwrap();
    let stats = db.take_stats();
    assert_eq!(stats.threads_spawned, 0);
    assert_eq!(stats.pool_tasks, 0);
}

#[test]
fn empty_partitions_run_inline() {
    // All rows share one key, so they hash into a single partition; the
    // other seven are empty and must not cost a task or a thread.
    let db = Database::new(
        EngineConfig::default()
            .with_partitions(8)
            .with_parallel_partitions(true),
    )
    .unwrap();
    db.execute("CREATE TABLE l (k INT, v INT)").unwrap();
    db.execute("INSERT INTO l VALUES (7, 1), (7, 2), (7, 3)")
        .unwrap();
    let batch = db
        .query("SELECT k, SUM(v) FROM l WHERE v > 0 GROUP BY k")
        .unwrap();
    assert_eq!(batch.len(), 1);
    let stats = db.take_stats();
    assert_eq!(
        stats.pool_tasks, 0,
        "a single occupied partition runs on the coordinator"
    );
    assert_eq!(stats.threads_spawned, 0);
}

#[test]
fn join_cache_reuses_invariant_build_across_iterations() {
    // PR-VS hoists the loop-invariant edges ⋈ vertexstatus subtree into a
    // `__common_*` temp (paper §V-A); its build side must be hashed once.
    // Threshold pinned high: under CI's forced-spill env the build region
    // would be evicted between probes and reuse legitimately drops to 0
    // (covered by tests/spill.rs).
    let db = load(
        EngineConfig::default().with_spill_threshold_bytes(u64::MAX),
        true,
    );
    db.query(&pagerank(8, true).cte).unwrap();
    let stats = db.take_stats();
    assert!(
        stats.join_builds >= 1,
        "the invariant build must be constructed"
    );
    assert!(
        stats.join_builds_reused >= 1,
        "later iterations must re-probe the cached build, got {} builds / {} reuses",
        stats.join_builds,
        stats.join_builds_reused
    );
    assert!(
        stats.join_builds_reused > stats.join_builds,
        "an 8-iteration loop re-probes far more often than it builds"
    );
}

#[test]
fn join_cache_does_not_change_results() {
    for with_vs in [true, false] {
        let sql = if with_vs {
            sssp(8, 1, true).cte
        } else {
            pagerank(8, false).cte
        };
        let cached = load(EngineConfig::default(), with_vs).query(&sql).unwrap();
        let uncached = load(
            EngineConfig::default().with_join_state_cache(false),
            with_vs,
        )
        .query(&sql)
        .unwrap();
        assert_eq!(cached.rows(), uncached.rows(), "with_vs={with_vs}");
    }
}

#[test]
fn explain_analyze_surfaces_pool_profile_on_fig9_workload() {
    // The PR-5 acceptance criterion: with parallel partitions on, EXPLAIN
    // ANALYZE of the fig9 common-result workload reports zero mid-loop
    // thread spawns and at least one reused join build.
    let db = load(
        EngineConfig::default()
            .with_partitions(4)
            .with_parallel_partitions(true)
            .with_spill_threshold_bytes(u64::MAX),
        true,
    );
    let profile = db.explain_analyze(&pagerank(8, true).cte).unwrap();
    assert_eq!(profile.pool.threads_spawned, 0);
    assert!(profile.pool.pool_tasks > 0);
    assert!(profile.pool.join_builds >= 1);
    assert!(profile.pool.join_builds_reused >= 1);
    // The pool section round-trips through the profile's JSON codec.
    let json = profile.to_json();
    let back = spinner_engine::QueryProfile::from_json(&json).unwrap();
    assert_eq!(back.pool, profile.pool);
    assert!(profile.render().contains("pool: threads_spawned=0"));
}
