//! Crash-restart harness: SIGKILL-class process death at adversarial
//! positions, engine restart, resumed-query verification.
//!
//! Each scenario spawns a real `spinner-serve` child on a scratch spill
//! directory with `--resumable --checkpoint-interval 2` and a
//! deterministic `--crash-at SITE:N` self-inflicted abort (SIGKILL
//! semantics: no unwinding, no destructors — the journal, checkpoint
//! and input-snapshot files stay on disk exactly as a hard kill leaves
//! them). A client starts a long iterative statement, captures the
//! stable handle from the early `HANDLE` frame, and watches the
//! connection die. A second server on the same directory must adopt the
//! dead engine's journal, resume the statement from its newest durable
//! checkpoint epoch (falling back to the previous epoch when the newest
//! is corrupt), and serve the result to the reconnecting client's
//! `ATTACH` — row-identical to an uninterrupted run, with no more than
//! one checkpoint interval of iterations replayed.
//!
//! Swept crash positions:
//! - mid-iteration (`loop_iteration`)
//! - mid-checkpoint-write (`checkpoint`, `spill_write`)
//! - mid-manifest-commit (`manifest_commit` — file written, epoch not
//!   yet committed)
//! - newest-epoch corruption (bit flip after the crash → the adoption
//!   pass must fall back current → previous)

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use spinner_server::{Client, ReconnectPolicy, Reply};

/// Iterations in the workload; with interval 2 this commits several
/// durable epochs before any crash position fires.
const ITERATIONS: u64 = 10;
const CHECKPOINT_INTERVAL: u64 = 2;

fn workload_sql() -> String {
    format!(
        "WITH ITERATIVE t (k, v) AS (
             SELECT src, 0 FROM edges
         ITERATE
             SELECT k, v + 1 FROM t
         UNTIL {ITERATIONS} ITERATIONS)
         SELECT * FROM t"
    )
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spinner_crash_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One resumed-query line printed by a restarted server.
#[derive(Debug, Clone, Copy)]
struct Resumed {
    query_id: u64,
    adopted_epoch: u64,
    resumed_iteration: u64,
    replayed_iterations: u64,
    rows: u64,
}

struct ServeProc {
    child: Child,
    addr: String,
    resumed: Vec<Resumed>,
    skipped: Vec<String>,
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn field(line: &str, key: &str) -> u64 {
    line.split([' ', ':'])
        .filter_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= field in '{line}'"))
}

/// Spawn `spinner-serve` on an ephemeral port over `dir` and parse its
/// startup lines (skipped/resumed queries, then the listening line).
fn spawn_server(dir: &Path, extra: &[&str]) -> ServeProc {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_spinner-serve"));
    cmd.arg("127.0.0.1:0")
        .args(["--spill-dir", dir.to_str().unwrap()])
        .arg("--resumable")
        .args(["--checkpoint-interval", &CHECKPOINT_INTERVAL.to_string()])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn spinner-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut resumed = Vec::new();
    let mut skipped = Vec::new();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("resumed query ") {
            let query_id = rest
                .split(':')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("query id");
            resumed.push(Resumed {
                query_id,
                adopted_epoch: field(&line, "adopted_epoch"),
                resumed_iteration: field(&line, "resumed_iteration"),
                replayed_iterations: field(&line, "replayed_iterations"),
                rows: field(&line, "rows"),
            });
        } else if line.starts_with("skipped query ") {
            skipped.push(line);
        } else if let Some(rest) = line.strip_prefix("spinner-server listening on ") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    ServeProc {
        child,
        addr,
        resumed,
        skipped,
    }
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(
        addr,
        ReconnectPolicy {
            max_attempts: 20,
            base_delay_ms: 25,
            max_delay_ms: 500,
        },
    )
    .expect("connect to spinner-serve")
}

fn load_edges(client: &mut Client) {
    let r = client
        .query("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    assert!(r.is_ok(), "DDL failed: {r:?}");
    let r = client
        .query(
            "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
             (4, 1, 1.0), (5, 2, 2.0), (6, 5, 0.5)",
        )
        .unwrap();
    assert!(r.is_ok(), "INSERT failed: {r:?}");
}

fn sorted_rows(reply: &Reply) -> Vec<Vec<Option<String>>> {
    let mut rows = reply
        .rows()
        .unwrap_or_else(|| panic!("expected rows, got {reply:?}"))
        .to_vec();
    rows.sort();
    rows
}

/// The uninterrupted result every crash scenario must reproduce.
fn baseline_rows() -> Vec<Vec<Option<String>>> {
    let dir = scratch("baseline");
    let server = spawn_server(&dir, &[]);
    let mut client = connect(&server.addr);
    load_edges(&mut client);
    let reply = client.query(&workload_sql()).unwrap();
    assert!(
        client.last_handle().is_some(),
        "resumable server must issue a handle for an iterative statement"
    );
    sorted_rows(&reply)
}

fn wait_for_exit(child: &mut Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server did not crash at {what} within 60s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Flip one payload byte in the most recently written checkpoint file —
/// the newest committed epoch — so adoption must detect the corruption
/// and fall back to the previous epoch.
/// Spill files are `spinner_spill_{pid}_{tag}_{n}_{label}.spn` with a
/// monotone per-statement sequence `n` — the only reliable newest-file
/// order (mtimes of back-to-back checkpoints can collide).
fn spill_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("spinner_spill_")?;
    rest.split('_').nth(2)?.parse().ok()
}

fn corrupt_newest_checkpoint(dir: &Path) {
    let newest = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.contains("checkpoint") && name.ends_with(".spn")
        })
        .max_by_key(|e| spill_seq(&e.file_name().to_string_lossy()).unwrap_or(0))
        .expect("no checkpoint file to corrupt");
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(newest.path())
        .unwrap();
    let len = file.metadata().unwrap().len();
    assert!(len > 64, "checkpoint file too small to corrupt safely");
    let off = len / 2;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(off)).unwrap();
    file.read_exact(&mut byte).unwrap();
    byte[0] ^= 0x40;
    file.seek(SeekFrom::Start(off)).unwrap();
    file.write_all(&byte).unwrap();
    file.sync_all().unwrap();
}

/// Run one full crash → restart → attach cycle and return the resumed
/// summary plus the rows fetched via ATTACH.
fn crash_cycle(
    name: &str,
    crash_at: &str,
    corrupt_newest: bool,
) -> (Resumed, Vec<Vec<Option<String>>>) {
    let dir = scratch(name);
    let server = spawn_server(&dir, &["--crash-at", crash_at]);
    assert!(server.resumed.is_empty(), "fresh dir adopted something");
    let mut client = connect(&server.addr);
    load_edges(&mut client);
    // The statement dies with the server; the early HANDLE frame must
    // already have delivered the stable handle.
    let err = client.query(&workload_sql());
    assert!(
        err.is_err(),
        "{name}: statement should die with the server, got {err:?}"
    );
    let handle = client
        .last_handle()
        .unwrap_or_else(|| panic!("{name}: no handle before the crash"));
    {
        let mut server = server;
        wait_for_exit(&mut server.child, crash_at);
        // Forget graceful-drop cleanup: the child is already dead.
        server.child.kill().ok();
    }
    if corrupt_newest {
        corrupt_newest_checkpoint(&dir);
    }
    // Restart over the same directory: the dead engine's journal must be
    // adopted and the query resumed before the listening line.
    let restarted = spawn_server(&dir, &[]);
    assert_eq!(
        restarted.resumed.len(),
        1,
        "{name}: expected exactly one resumed query, got {:?} (skipped: {:?})",
        restarted.resumed,
        restarted.skipped
    );
    let summary = restarted.resumed[0];
    assert_eq!(
        summary.query_id, handle,
        "{name}: handle changed across restart"
    );
    let mut client = connect(&restarted.addr);
    let reply = client.attach(handle).unwrap();
    assert!(reply.is_ok(), "{name}: attach({handle}) failed: {reply:?}");
    let rows = sorted_rows(&reply);
    assert_eq!(
        summary.rows as usize,
        rows.len(),
        "{name}: row count mismatch"
    );
    // One-shot: a second attach must yield the typed unknown_handle error.
    let again = client.attach(handle).unwrap();
    assert_eq!(
        again.error_code(),
        Some("unknown_handle"),
        "{name}: second attach must fail typed, got {again:?}"
    );
    (summary, rows)
}

fn assert_cycle(name: &str, crash_at: &str, corrupt_newest: bool) {
    let expected = baseline_rows();
    let (summary, rows) = crash_cycle(name, crash_at, corrupt_newest);
    assert_eq!(
        rows, expected,
        "{name}: resumed rows differ from uninterrupted run"
    );
    assert!(
        summary.adopted_epoch > 0,
        "{name}: no durable epoch adopted: {summary:?}"
    );
    assert!(
        summary.resumed_iteration > 0,
        "{name}: resumed from scratch, not from a checkpoint: {summary:?}"
    );
    assert!(
        summary.replayed_iterations <= CHECKPOINT_INTERVAL,
        "{name}: resume cost exceeds one checkpoint interval: {summary:?}"
    );
}

#[test]
fn crash_mid_iteration_resumes_row_identically() {
    // The 7th loop-iteration fault check: past several committed epochs,
    // before the final iteration.
    assert_cycle("mid_iteration", "loop_iteration:7", false);
}

#[test]
fn crash_mid_checkpoint_snapshot_resumes_row_identically() {
    // Abort while the third checkpoint snapshot (entry, iteration 2,
    // iteration 4) is being taken: two committed epochs exist.
    assert_cycle("mid_checkpoint", "checkpoint:3", false);
}

#[test]
fn crash_mid_spill_write_resumes_row_identically() {
    // Abort inside the sealed-file write path. Hits after the input
    // snapshot (hit 1) and two checkpoint epochs (hits 2, 3) are on
    // disk.
    assert_cycle("mid_spill_write", "spill_write:4", false);
}

#[test]
fn crash_mid_manifest_commit_resumes_row_identically() {
    // The narrowest window: the third checkpoint file is written but its
    // epoch is not yet committed. The journal must name only *committed*
    // epochs, so adoption resumes from the iteration-2 checkpoint.
    assert_cycle("mid_manifest_commit", "manifest_commit:3", false);
}

#[test]
fn corrupt_newest_epoch_falls_back_to_previous() {
    let expected = baseline_rows();
    let (summary, rows) = crash_cycle("corrupt_fallback", "loop_iteration:7", true);
    assert_eq!(
        rows, expected,
        "fallback: resumed rows differ from uninterrupted run"
    );
    // Falling back one epoch means the replay distance is exactly the
    // checkpoint interval — still within the resume-cost gate.
    assert!(
        summary.replayed_iterations > 0,
        "fallback: expected a non-zero replay distance: {summary:?}"
    );
    assert!(
        summary.replayed_iterations <= CHECKPOINT_INTERVAL,
        "fallback: resume cost exceeds one checkpoint interval: {summary:?}"
    );
}

#[test]
fn resumed_explain_analyze_reports_restart_counters() {
    let dir = scratch("explain_restart");
    let server = spawn_server(&dir, &["--crash-at", "loop_iteration:7"]);
    let mut client = connect(&server.addr);
    load_edges(&mut client);
    let sql = format!("EXPLAIN ANALYZE {}", workload_sql());
    assert!(
        client.query(&sql).is_err(),
        "statement should die with the server"
    );
    let handle = client.last_handle().expect("no handle before the crash");
    {
        let mut server = server;
        wait_for_exit(&mut server.child, "loop_iteration:7");
    }
    let restarted = spawn_server(&dir, &[]);
    assert_eq!(
        restarted.resumed.len(),
        1,
        "expected one resumed query (skipped: {:?})",
        restarted.skipped
    );
    let mut client = connect(&restarted.addr);
    let reply = client.attach(handle).unwrap();
    let Reply::Text(text) = reply else {
        panic!("expected the rendered profile, got {reply:?}");
    };
    // The acceptance line: the resumed profile must surface where the
    // statement came back to life.
    assert!(
        text.contains("restart: adopted_epoch="),
        "profile missing restart block:\n{text}"
    );
    assert!(
        text.contains("resumed_iteration=") && text.contains("replayed_iterations="),
        "profile restart block incomplete:\n{text}"
    );
}

#[test]
fn sigterm_drains_gracefully_and_leaves_nothing_to_adopt() {
    let dir = scratch("graceful");
    let server = spawn_server(&dir, &[]);
    let mut client = connect(&server.addr);
    load_edges(&mut client);
    let reply = client.query(&workload_sql()).unwrap();
    assert!(reply.is_ok(), "workload failed: {reply:?}");
    // SIGTERM → graceful drain → exit 0, journal finished.
    let mut server = server;
    #[cfg(unix)]
    {
        let pid = server.child.id();
        let status = Command::new("kill")
            .args(["-TERM", &pid.to_string()])
            .status()
            .unwrap();
        assert!(status.success());
        wait_for_exit(&mut server.child, "SIGTERM");
    }
    #[cfg(not(unix))]
    {
        server.child.kill().unwrap();
        server.child.wait().unwrap();
    }
    // A restart over the same directory adopts nothing: every journal
    // entry was finished by the drain.
    let restarted = spawn_server(&dir, &[]);
    assert!(
        restarted.resumed.is_empty(),
        "graceful shutdown left journal entries: {:?}",
        restarted.resumed
    );
}
