//! Disk-as-a-failure-domain suite: the spill/checkpoint layer must
//! *detect* every corruption (bit rot, torn writes, truncation, missing
//! files) as a typed `StorageCorrupt`, *recover* from it (fall back to
//! the previous checkpoint epoch, recompute invalidated regions) and
//! *degrade* honestly (ENOSPC is a fail-fast `ResourceExhausted`) —
//! byte-identical results or a typed error, never a silent wrong answer.
//!
//! Storage-level tests drive the codec and the epoch store directly;
//! engine-level tests run the adversarial fault matrix end to end
//! through iterative queries.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use spinner_common::{row_of, DataType, Field, MemoryMetrics, Row, Schema, SchemaRef, Value};
use spinner_engine::{Database, EngineConfig, Error, FaultConfig, FaultSite};
use spinner_storage::{
    gc_orphans, CheckpointStore, LoopCheckpoint, Partitioned, SpillEnv, SpillManager,
};

/// Deterministic PCG-style generator — no external crates, reproducible
/// failures.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A fresh scratch directory under the OS temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spinner_chaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn chaos_schema() -> SchemaRef {
    Arc::new(Schema::new(vec![
        Field::qualified("t", "k", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Text),
        Field::new("b", DataType::Bool),
        Field::new("n", DataType::Null),
    ]))
}

/// A random row exercising every value tag: negative ints, quarter
/// floats, NULL-heavy columns, empty / long / multi-byte strings.
fn random_row(rng: &mut Lcg) -> Row {
    let text = match rng.below(4) {
        0 => String::new(),
        1 => "λαβύρινθος \"quoted\"\n".to_string(),
        2 => "x".repeat(rng.below(300) as usize),
        _ => format!("row {}", rng.next()),
    };
    row_of([
        if rng.below(5) == 0 {
            Value::Null
        } else {
            Value::Int(rng.next() as i64)
        },
        Value::Float((rng.next() as i64 % 1_000) as f64 * 0.25),
        Value::Text(text),
        Value::Bool(rng.below(2) == 0),
        Value::Null,
    ])
}

fn random_table(rng: &mut Lcg) -> Partitioned {
    let rows: Vec<Row> = (0..rng.below(24)).map(|_| random_row(rng)).collect();
    let parts = 1 + rng.below(4) as usize;
    let key = if rng.below(3) == 0 { None } else { Some(0) };
    Partitioned::from_rows(chaos_schema(), rows, key, parts)
}

fn manager_in(dir: &Path) -> SpillManager {
    SpillManager::new(dir.to_path_buf(), Arc::new(MemoryMetrics::new()), None)
}

/// The `.spn` spill files in `dir`, newest sequence number last.
fn spill_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "spn"))
        .collect();
    // Names are `spinner_spill_{pid}_{tag}_{seq}_{label}.spn`; the
    // per-manager sequence number orders writes.
    let seq = |p: &Path| -> u64 {
        p.file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.split('_').nth(4))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };
    files.sort_by_key(|p| seq(p));
    files
}

/// Tentpole codec property: random partitioned tables survive the
/// round trip bit-for-bit, and EVERY single-byte mutation of the file —
/// header, body, per-partition checksum, trailer — is detected as a
/// typed `StorageCorrupt`, never decoded into wrong rows.
#[test]
fn codec_round_trips_and_detects_every_single_byte_mutation() {
    let dir = scratch("codec");
    let m = manager_in(&dir);
    let mut rng = Lcg(0xD15C_CAFE);

    // Property sweep: 32 random tables (empty ones included) round-trip.
    for case in 0..32 {
        let data = random_table(&mut rng);
        let label = format!("case_{case}");
        let handle = m.write_partitioned(&label, &data).unwrap();
        let back = m.read_partitioned(&handle, &label).unwrap();
        assert_eq!(back.schema, data.schema, "case {case}: schema drifted");
        assert_eq!(back.parts, data.parts, "case {case}: rows/layout drifted");
    }

    // Exhaustive mutation sweep over one representative file.
    let data = random_table(&mut rng);
    let handle = m.write_partitioned("mutation_target", &data).unwrap();
    let original = std::fs::read(handle.path()).unwrap();
    assert!(original.len() > 64, "need a non-trivial file to sweep");
    let mut detected = 0usize;
    for i in 0..original.len() {
        for flip in [0x01u8, 0xFF] {
            let mut mutated = original.clone();
            mutated[i] ^= flip;
            std::fs::write(handle.path(), &mutated).unwrap();
            match m.read_partitioned(&handle, "mutation_target") {
                Err(Error::StorageCorrupt { region, message }) => {
                    assert_eq!(region, "mutation_target");
                    assert!(!message.is_empty());
                    detected += 1;
                }
                Ok(_) => panic!("byte {i} flip {flip:#x}: corruption decoded silently"),
                Err(other) => panic!("byte {i} flip {flip:#x}: untyped failure {other:?}"),
            }
        }
    }
    assert_eq!(detected, original.len() * 2, "detection rate below 100%");

    // Truncation at every interesting boundary, the empty file, and the
    // vanished file are all the same typed error.
    for cut in [0, 1, 7, original.len() / 2, original.len() - 1] {
        std::fs::write(handle.path(), &original[..cut]).unwrap();
        assert!(
            matches!(
                m.read_partitioned(&handle, "mutation_target"),
                Err(Error::StorageCorrupt { .. })
            ),
            "truncation to {cut} bytes not detected"
        );
    }
    std::fs::remove_file(handle.path()).unwrap();
    assert!(matches!(
        m.read_partitioned(&handle, "mutation_target"),
        Err(Error::StorageCorrupt { .. })
    ));

    // Restore so the handle's drop has its file back, then clean up.
    std::fs::write(handle.path(), &original).unwrap();
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

fn ckpt(iteration: u64, rows: &[(i64, i64)]) -> LoopCheckpoint {
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Int),
    ]));
    let rows: Vec<Row> = rows
        .iter()
        .map(|&(k, v)| row_of([Value::Int(k), Value::Int(v)]))
        .collect();
    LoopCheckpoint {
        iteration,
        cumulative_updates: iteration * 10,
        tables: vec![(
            "__cte_t".into(),
            Partitioned::from_rows(schema, rows, Some(0), 2),
        )],
    }
}

/// Crash matrix, storage level: with two epochs on disk, corrupting the
/// newest falls back to the previous epoch byte-identically; corrupting
/// both is a typed `StorageCorrupt`, never `Ok(None)` (which the
/// executor would escalate as "nothing to roll back to").
#[test]
fn corrupt_checkpoint_epoch_falls_back_then_fails_typed() {
    let dir = scratch("epochs");
    let store = CheckpointStore::new();
    store.set_spill(Some(Arc::new(SpillEnv::new(
        1,
        Some(dir.to_str().unwrap()),
        None,
    ))));
    let epoch1_rows = [(1, 10), (2, 20), (3, 30)];
    store.save("loop", ckpt(4, &epoch1_rows));
    store.save("loop", ckpt(8, &[(1, 11), (2, 21), (3, 31)]));
    assert!(store.spill_entry("loop").unwrap(), "both epochs must spill");
    assert_eq!(store.spilled_count(), 2);

    let files = spill_files(&dir);
    assert_eq!(files.len(), 2, "expected one file per retained epoch");
    // Mangle the NEWEST epoch's file: simulated bit rot after a clean
    // shutdown. Recovery must land on the previous epoch. (spill_entry
    // writes the current epoch first, so it holds the lower sequence
    // number.)
    std::fs::write(&files[0], b"bit rot").unwrap();
    let back = store
        .latest("loop")
        .unwrap()
        .expect("previous epoch must survive");
    assert_eq!(back.iteration, 4);
    assert_eq!(back.cumulative_updates, 40);
    let mut rows: Vec<Row> = back.tables[0].1.gather();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let expected: Vec<Row> = epoch1_rows
        .iter()
        .map(|&(k, v)| row_of([Value::Int(k), Value::Int(v)]))
        .collect();
    assert_eq!(rows, expected, "fallback epoch must be byte-identical");
    assert_eq!(store.current_epoch("loop"), Some(1));

    // Second store, both epochs rotted: the typed error propagates so
    // the recovery loop can account for it — not a silent empty result.
    let dir2 = scratch("epochs_all_bad");
    let store2 = CheckpointStore::new();
    store2.set_spill(Some(Arc::new(SpillEnv::new(
        1,
        Some(dir2.to_str().unwrap()),
        None,
    ))));
    store2.save("loop", ckpt(4, &epoch1_rows));
    store2.save("loop", ckpt(8, &epoch1_rows));
    assert!(store2.spill_entry("loop").unwrap());
    for file in spill_files(&dir2) {
        std::fs::write(&file, b"bit rot").unwrap();
    }
    assert!(matches!(
        store2.latest("loop"),
        Err(Error::StorageCorrupt { .. })
    ));

    store.clear();
    store2.clear();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// Orphan GC: spill and manifest files left by dead processes are
/// reclaimed; files owned by live processes (ours) are untouched.
#[test]
fn orphan_gc_reclaims_dead_process_files_only() {
    let dir = scratch("gc");
    // A pid far above any real pid_max: guaranteed dead.
    let dead = "spinner_spill_999999999_0_0_orphan.spn";
    let dead_mft = "spinner_manifest_999999999_0.mft";
    let live = format!("spinner_spill_{}_7_0_keep.spn", std::process::id());
    for name in [dead, dead_mft, live.as_str()] {
        std::fs::write(dir.join(name), b"payload").unwrap();
    }
    let reclaimed = gc_orphans(&dir);
    assert_eq!(reclaimed, 2, "exactly the two dead-pid files");
    assert!(!dir.join(dead).exists());
    assert!(!dir.join(dead_mft).exists());
    assert!(dir.join(&live).exists(), "live-pid file must survive GC");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A simple iterative CTE touching spill, checkpoint and rename sites.
fn counting_cte(iterations: u64) -> String {
    format!(
        "WITH ITERATIVE t (k, v) AS (
             SELECT src, 0 FROM edges
         ITERATE SELECT k, v + 1 FROM t
         UNTIL {iterations} ITERATIONS)
         SELECT * FROM t"
    )
}

fn db_with_edges(config: EngineConfig) -> Database {
    let db = Database::new(config).unwrap();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
         (4, 1, 1.0)",
    )
    .unwrap();
    db
}

fn sorted_rows(batch: &spinner_engine::Batch) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = batch.rows().iter().map(|r| r.to_vec()).collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

/// Tentpole crash matrix, engine level: adversarial disk faults
/// (`TornWrite`/`BitFlip` lie about success; `DiskFull`/`FsyncFail`
/// fail at the barrier) × fire position, under forced spill with
/// checkpoints and recovery. Every cell must end in rows identical to
/// the clean run or a typed error — never a silent wrong answer — and
/// the database must stay usable afterwards.
#[test]
fn adversarial_disk_fault_matrix_never_returns_wrong_rows() {
    let sql = counting_cte(6);
    let expected = {
        let db = db_with_edges(EngineConfig::default());
        db.query(&sql).unwrap()
    };
    for site in [
        FaultSite::TornWrite,
        FaultSite::BitFlip,
        FaultSite::DiskFull,
        FaultSite::FsyncFail,
    ] {
        for nth in [1, 2, 3] {
            let db = db_with_edges(
                EngineConfig::default()
                    .with_spill_threshold_bytes(1)
                    .with_checkpoint_interval(2)
                    .with_max_partition_retries(2)
                    .with_max_loop_recoveries(3)
                    .with_fault(FaultConfig::fail_nth(site, nth)),
            );
            match db.query(&sql) {
                Ok(batch) => assert_eq!(
                    sorted_rows(&batch),
                    sorted_rows(&expected),
                    "site={site:?}, nth={nth}: WRONG rows"
                ),
                Err(
                    Error::StorageCorrupt { .. }
                    | Error::SpillUnavailable { .. }
                    | Error::RecoveryExhausted { .. }
                    | Error::FaultInjected { .. }
                    | Error::ResourceExhausted { .. },
                ) => {}
                Err(other) => panic!("site={site:?}, nth={nth}: untyped failure {other:?}"),
            }
            assert_eq!(db.temp_result_count(), 0, "site={site:?}, nth={nth}: leak");
            // The fault fired once; the database must serve the next
            // statement normally.
            let count = db.query("SELECT COUNT(*) FROM edges").unwrap();
            assert_eq!(count.rows()[0][0], Value::Int(5));
        }
    }
}

/// A full disk is not a corruption and not retryable noise: it degrades
/// to the fail-fast `ResourceExhausted` contract from the admission
/// work, with the typed `spill_disk` resource tag.
#[test]
fn disk_full_degrades_to_fail_fast_resource_exhausted() {
    let db = db_with_edges(
        EngineConfig::default()
            .with_spill_threshold_bytes(1)
            .with_fault(FaultConfig::fail_nth(FaultSite::DiskFull, 1)),
    );
    match db.query(&counting_cte(4)) {
        Err(Error::ResourceExhausted { resource, .. }) => assert_eq!(resource, "spill_disk"),
        other => panic!("expected fail-fast ResourceExhausted, got {other:?}"),
    }
    // Fail fast, not fail forever: the statement after the ENOSPC burst
    // succeeds.
    db.query(&counting_cte(4)).unwrap();
}

/// The durability story is observable: EXPLAIN ANALYZE surfaces epoch
/// commits, verified reads and fsync counts; turning `durable_spill`
/// off zeroes the fsyncs while the verified reads remain; the profile
/// JSON round-trips the block.
#[test]
fn explain_analyze_surfaces_durability_counters() {
    // An injected loop fault forces a rollback, so the run also READS a
    // checkpoint back — otherwise a clean run only ever writes spill
    // files and `verified` would stay 0.
    let sql = counting_cte(8);
    let chaos = |durable: bool| {
        EngineConfig::default()
            .with_spill_threshold_bytes(1)
            .with_checkpoint_interval(2)
            .with_max_loop_recoveries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 5))
            .with_durable_spill(durable)
    };
    let durable = db_with_edges(chaos(true));
    let profile = durable.explain_analyze(&sql).unwrap();
    let d = profile.durability;
    assert!(d.epochs > 0, "checkpoint epochs must be committed: {d:?}");
    assert!(
        d.verified > 0,
        "spill reads must be checksum-verified: {d:?}"
    );
    assert!(d.refsync > 0, "durable writes must fsync: {d:?}");
    assert_eq!(d.corrupt_detected, 0, "clean run detected corruption");
    let rendered = profile.render();
    assert!(
        rendered.contains("durability: epochs="),
        "missing durability line: {rendered}"
    );
    let back = spinner_engine::QueryProfile::from_json(&profile.to_json()).unwrap();
    assert_eq!(back.durability.epochs, d.epochs);
    assert_eq!(back.durability.verified, d.verified);
    assert_eq!(back.durability.refsync, d.refsync);

    let relaxed = db_with_edges(chaos(false));
    let d = relaxed.explain_analyze(&sql).unwrap().durability;
    assert_eq!(d.refsync, 0, "non-durable mode must skip every fsync");
    assert!(d.verified > 0, "verification is not optional: {d:?}");
}
