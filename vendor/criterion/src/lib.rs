//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the criterion API slice its benches use: `Criterion::benchmark_group`,
//! group `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_with_input` / `finish`, `BenchmarkId::new`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Behaviour: under `cargo bench` each benchmark is warmed up once and
//! then timed for `sample_size` runs, reporting min/mean/max wall-clock
//! time to stdout. Under `cargo test` (cargo invokes bench targets with
//! `--test`) each benchmark body runs exactly once as a smoke test, so
//! the suite stays fast. No plots, no statistics beyond the summary line.

use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function_id: function_id.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_id, self.parameter)
    }
}

/// Timing driver handed to the measurement closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Filled in by `iter`: per-sample wall-clock durations.
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            // Smoke-test mode (`cargo test`): run once, no timing.
            let _ = f();
            return;
        }
        let _ = f(); // warm-up
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = f();
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub's warm-up is one run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub times exactly
    /// `sample_size` runs instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        if self.criterion.test_mode {
            println!("{}/{}: ok (smoke test)", self.name, id);
        } else if !bencher.samples.is_empty() {
            let total: Duration = bencher.samples.iter().sum();
            let mean = total / bencher.samples.len() as u32;
            let min = bencher.samples.iter().min().unwrap();
            let max = bencher.samples.iter().max().unwrap();
            println!(
                "{}/{}: {} samples, min {:?}, mean {:?}, max {:?}",
                self.name,
                id,
                bencher.samples.len(),
                min,
                mean,
                max
            );
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Reads the CLI mode: `cargo test` invokes bench targets with
    /// `--test`, where benchmarks must run once and exit quickly.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
                b.iter(|| {
                    runs += 1;
                    x * 2
                })
            });
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        group.bench_with_input(BenchmarkId::new("f", "x"), "in", |b, _| {
            b.iter(|| runs += 1)
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_displays() {
        let id = BenchmarkId::new("pr", format!("{}-partitions", 4));
        assert_eq!(id.to_string(), "pr/4-partitions");
    }
}
