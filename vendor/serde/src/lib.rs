//! Offline stand-in for `serde`.
//!
//! The workspace applies `#[derive(serde::Serialize, serde::Deserialize)]`
//! to a handful of types but never serializes them (no format crate is
//! linked). This stub re-exports no-op derive macros from the vendored
//! `serde_derive` so those attribute positions keep compiling without
//! crates.io access. The `derive` feature is declared (and inert)
//! because the workspace dependency requests it.

pub use serde_derive::{Deserialize, Serialize};
