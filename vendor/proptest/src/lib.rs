//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the proptest API slice its tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive`, [`BoxedStrategy`](strategy::BoxedStrategy)
//! (cloneable), `Just`, `any::<bool>()`, simple `"[a-d]"` character-class
//! string strategies, integer-range strategies, `collection::vec`,
//! `option::of`, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros with `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! generation is a deterministic seeded PRNG (seed derived from the test
//! name, so runs are reproducible), there is **no shrinking** — a failing
//! case reports the panic from the raw input — and `prop_assert*` are
//! plain `assert*` (they panic instead of returning `Err`).
//!
//! Failure replay: when a case fails, the harness prints
//! `SPINNER_TEST_SEED=<seed>` before re-raising the panic. Exporting that
//! variable (and filtering `cargo test` to the one failing test — the
//! override applies to every `proptest!` test in the process) re-runs
//! exactly that case's input stream, deterministically.

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic PRNG (splitmix64 seeding + xorshift64*): every test
    /// gets a stream derived from its own name, so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            let mut z = h
                .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        /// Rebuild the RNG from a seed previously reported by
        /// [`TestRng::seed`] — the replay path behind the
        /// `SPINNER_TEST_SEED` environment override.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed | 1 }
        }

        /// The current state as a replayable seed. Captured *before* any
        /// generation, `from_seed(seed)` reproduces the exact value
        /// stream of this case.
        pub fn seed(&self) -> u64 {
            self.state
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of random values. Unlike real proptest there is no
    /// value tree / shrinking; `generate` directly yields a value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            R: Strategy,
            F: Fn(Self::Value) -> R,
        {
            FlatMap { base: self, f }
        }

        /// Recursive strategies: applies `recurse` up to `depth` times,
        /// choosing 50/50 between a leaf and a deeper branch at each
        /// level (the size hints are accepted for API compatibility but
        /// unused — depth alone bounds expansion here).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                strat = Union::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply cloneable strategy (backs `prop_recursive`
    /// closures, which clone their `inner` argument freely).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, R> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        R: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R::Value;
        fn generate(&self, rng: &mut TestRng) -> R::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64 + 1;
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(i32, i64, u32, u64, usize);

    /// String strategies from simple character-class patterns: `"[a-d]"`
    /// yields a one-character string drawn from the class. Any other
    /// pattern is produced literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match char_class(self) {
                Some(choices) => {
                    let idx = rng.below(choices.len() as u64) as usize;
                    choices[idx].to_string()
                }
                None => (*self).to_string(),
            }
        }
    }

    fn char_class(pattern: &str) -> Option<Vec<char>> {
        let inner = pattern.strip_prefix('[')?.strip_suffix(']')?;
        let chars: Vec<char> = inner.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                if lo > hi {
                    return None;
                }
                out.extend(lo..=hi);
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.bool()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`]; converts from `usize` and ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(elem, 1..4)`: vectors with a length
    /// drawn from the given bounds.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.bool() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `proptest::option::of(strat)`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
/// Each test runs `ProptestConfig::cases` deterministic cases (seeded from
/// the test's name). No shrinking: a failure panics with the assertion.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            // `SPINNER_TEST_SEED=<u64>` replays exactly one case with the
            // seed a previous failure printed; otherwise run the full
            // name-derived deterministic sweep.
            let seeds: Vec<u64> = match std::env::var("SPINNER_TEST_SEED") {
                Ok(s) => vec![s
                    .trim()
                    .parse::<u64>()
                    .expect("SPINNER_TEST_SEED must be an unsigned integer")],
                Err(_) => (0..config.cases)
                    .map(|case| {
                        $crate::test_runner::TestRng::for_case(test_name, u64::from(case)).seed()
                    })
                    .collect(),
            };
            for seed in seeds {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    { $body }
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case failed in {test_name}; replay it with \
                         SPINNER_TEST_SEED={seed}"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Stub `prop_assert!`: panics like `assert!` (no shrinking to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Stub `prop_assert_eq!`: panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Vec<Tree>),
    }

    fn tree_size(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(tree_size).sum::<usize>(),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = prop_oneof![(0i64..100).prop_map(Tree::Leaf), Just(Tree::Leaf(-1)),];
        leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 5u32..10, y in 0i64..3, s in "[a-d]") {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0..3).contains(&y));
            prop_assert_eq!(s.len(), 1);
            let c = s.chars().next().unwrap();
            prop_assert!(('a'..='d').contains(&c), "got {}", c);
        }

        #[test]
        fn flat_map_dependent_ranges((lo, hi) in (0usize..10).prop_flat_map(|lo| {
            (Just(lo), lo + 1..lo + 20)
        })) {
            prop_assert!(hi > lo);
        }

        #[test]
        fn recursive_trees_bounded(t in arb_tree(), keep in any::<bool>()) {
            let _ = keep;
            prop_assert!(tree_size(&t) < 2000);
        }

        #[test]
        fn options_and_vecs(v in crate::collection::vec(0u64..5, 2..6),
                            o in crate::option::of(Just(7i64))) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
            if let Some(x) = o {
                prop_assert_eq!(x, 7);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 3..4);
        let mut a = crate::test_runner::TestRng::for_case("det", 1);
        let mut b = crate::test_runner::TestRng::for_case("det", 1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn seed_replays_exact_stream() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1_000_000, 4..5);
        let orig = crate::test_runner::TestRng::for_case("replay", 7);
        let seed = orig.seed();
        let mut a = orig;
        let mut b = crate::test_runner::TestRng::from_seed(seed);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
