//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the one API it uses: `crossbeam::thread::scope` with
//! `Scope::spawn(|_| ...)` and `ScopedJoinHandle::join`, implemented over
//! `std::thread::scope` (stable since Rust 1.63). Semantics match
//! crossbeam where the engine depends on them:
//!
//! * `scope` returns `Err` (instead of unwinding) when the scope closure
//!   panics, and
//! * `join` returns `Err(payload)` for a panicked worker.

pub mod thread {
    use std::any::Any;

    /// Result of a scope or a join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Wrapper over [`std::thread::Scope`] exposing crossbeam's spawn
    /// signature (the closure receives the scope again).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the worker; `Err` carries the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned workers are joined before
    /// this returns. A panic in `f` itself (or in an unjoined worker,
    /// which `std::thread::scope` re-raises) is converted into `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_spawns_and_joins() {
            let data = [1, 2, 3];
            let total: i32 = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|x| s.spawn(move |_| *x * 2)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 12);
        }

        #[test]
        fn join_surfaces_worker_panic_as_err() {
            let joined = super::scope(|s| {
                let h = s.spawn(|_| -> i32 { panic!("worker down") });
                h.join()
            })
            .unwrap();
            assert!(joined.is_err());
        }
    }
}
