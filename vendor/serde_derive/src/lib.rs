//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! as inert annotations (no serialization is performed anywhere in the
//! codebase — no serde_json / bincode / etc. is linked). These derives
//! therefore expand to nothing; they exist so the attribute positions
//! keep compiling without crates.io access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
