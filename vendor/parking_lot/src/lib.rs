//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the tiny API slice it actually uses: `RwLock`/`Mutex` with
//! non-poisoning `read()`/`write()`/`lock()` accessors. Backed by
//! `std::sync` locks; a poisoned std lock (a panicking writer) is
//! recovered into its inner guard, matching parking_lot's no-poisoning
//! semantics — which is exactly what the engine's panic-isolation layer
//! (`WorkerPanicked`) relies on: a worker panic must not wedge the
//! catalog or temp-result registry behind a poisoned lock.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with parking_lot's panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Mutex with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn lock_survives_panicking_writer() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable afterwards.
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
