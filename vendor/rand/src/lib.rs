//! Offline stand-in for the `rand` crate (0.10-style API).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of `rand` that `spinner-datagen` uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the 0.10 `random()` /
//! `random_range()` methods (exposed here via the `RngExt` trait the
//! callers already import). The generator is xoshiro-class
//! (splitmix64-seeded xorshift64*), deterministic per seed, and more
//! than adequate for synthetic benchmark data — it is NOT
//! cryptographically secure.

/// Seed a generator from a `u64` (mirrors `rand::SeedableRng`'s
/// `seed_from_u64` helper, the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling methods, named after rand 0.10's `Rng::random*`.
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` uniformly (see [`Random`]).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

/// Types samplable via [`RngExt::random`].
pub trait Random {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for u64 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for bool {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire-style widening multiply
/// (bias is negligible for the bounds used here and the result stays
/// deterministic across platforms).
fn bounded(rng: &mut (impl RngExt + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end - start) as u64 + 1;
                // span == 0 only for a full-width u64 range, unused here.
                start + bounded(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize, i64);

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic 64-bit PRNG: splitmix64 seeding + xorshift64*.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so that seed 0 (and small seeds) still
            // yield a non-degenerate xorshift state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let a = rng.random_range(0..10usize);
            assert!(a < 10);
            let b = rng.random_range(1..=5u32);
            assert!((1..=5).contains(&b));
        }
        // All values of a small range get hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
