//! Preferential-attachment graph generator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spinner_common::{row_of, Row, Value};

/// The paper's three SNAP datasets, as shape presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetPreset {
    /// DBLP co-authorship: 317,080 nodes, 1,049,866 edge rows (~3.3 e/n).
    Dblp,
    /// Pokec social network: 1,632,803 nodes, 30,622,564 edge rows (~18.8 e/n).
    Pokec,
    /// Google web graph: 875,713 nodes, 5,105,039 edge rows (~5.8 e/n).
    GoogleWeb,
}

impl DatasetPreset {
    /// Full-size node and edge counts from SNAP.
    pub fn full_size(self) -> (usize, usize) {
        match self {
            DatasetPreset::Dblp => (317_080, 1_049_866),
            DatasetPreset::Pokec => (1_632_803, 30_622_564),
            DatasetPreset::GoogleWeb => (875_713, 5_105_039),
        }
    }

    /// A spec scaled by `scale` (e.g. 0.01 for 1% of the node count) with
    /// the preset's edge/node ratio preserved.
    pub fn spec(self, scale: f64) -> GraphSpec {
        assert!(scale > 0.0, "scale must be positive");
        let (n, e) = self.full_size();
        let nodes = ((n as f64 * scale) as usize).max(8);
        let ratio = e as f64 / n as f64;
        let edges = ((nodes as f64 * ratio) as usize).max(nodes);
        GraphSpec {
            nodes,
            edges,
            seed: match self {
                DatasetPreset::Dblp => 0xD81B,
                DatasetPreset::Pokec => 0x90CEC,
                DatasetPreset::GoogleWeb => 0x6006,
            },
            max_weight: 10,
        }
    }
}

/// Parameters of a synthetic graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphSpec {
    /// Number of nodes (ids 1..=nodes).
    pub nodes: usize,
    /// Number of edge rows (>= nodes; a ring consumes the first `nodes`).
    pub edges: usize,
    /// RNG seed — same spec, same graph.
    pub seed: u64,
    /// Edge weights are uniform integers in `1..=max_weight`, stored as
    /// floats (the SSSP query adds them to distances).
    pub max_weight: u32,
}

impl GraphSpec {
    /// Small default for tests and examples.
    pub fn small() -> Self {
        GraphSpec {
            nodes: 100,
            edges: 400,
            seed: 42,
            max_weight: 10,
        }
    }

    /// Generate `edges(src, dst, weight)` rows.
    ///
    /// Construction: a Hamiltonian ring `i -> i+1` (every node gets an
    /// in-edge and an out-edge), then preferential attachment for the
    /// remaining rows — an endpoint list doubles as the sampling
    /// distribution, so the probability of attaching to a node is
    /// proportional to its current degree.
    pub fn generate(&self) -> Vec<Row> {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            self.edges >= self.nodes,
            "need at least as many edges as nodes for the ring"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rows: Vec<Row> = Vec::with_capacity(self.edges);
        // Endpoint multiset for preferential sampling.
        let mut endpoints: Vec<u32> = Vec::with_capacity(self.edges * 2);
        let weight = |rng: &mut StdRng| -> Value {
            Value::Float(rng.random_range(1..=self.max_weight) as f64)
        };
        for i in 1..=self.nodes {
            let dst = if i == self.nodes { 1 } else { i + 1 };
            let w = weight(&mut rng);
            rows.push(row_of([Value::Int(i as i64), Value::Int(dst as i64), w]));
            endpoints.push(i as u32);
            endpoints.push(dst as u32);
        }
        while rows.len() < self.edges {
            let src = (rng.random_range(0..self.nodes) + 1) as u32;
            let dst = endpoints[rng.random_range(0..endpoints.len())];
            if src == dst {
                continue;
            }
            let w = weight(&mut rng);
            rows.push(row_of([Value::Int(src as i64), Value::Int(dst as i64), w]));
            endpoints.push(src);
            endpoints.push(dst);
        }
        rows
    }

    /// Generate edges whose weight is `1 / out_degree(src)` — the
    /// transition probability a well-posed PageRank needs. (The SSSP
    /// benchmarks use [`GraphSpec::generate`]'s distance weights instead;
    /// the paper's SNAP graphs are unweighted, so the weight column's
    /// meaning is workload-specific either way.)
    pub fn generate_normalized(&self) -> Vec<Row> {
        let mut rows = self.generate();
        let mut outdeg = vec![0usize; self.nodes + 1];
        for r in &rows {
            outdeg[r[0].as_i64().expect("src is int") as usize] += 1;
        }
        for r in &mut rows {
            let src = r[0].as_i64().expect("src is int") as usize;
            r[2] = Value::Float(1.0 / outdeg[src] as f64);
        }
        rows
    }

    /// Generate a *symmetric* (undirected) graph with `components`
    /// disjoint connected components, for connected-components workloads:
    /// each component is an independent ring + preferential-attachment
    /// subgraph over its own node-id range, and every edge appears in both
    /// directions. Returns the edge rows; component membership of node `n`
    /// is `(n - 1) % components` by construction (ids are striped).
    pub fn generate_symmetric_components(&self, components: usize) -> Vec<Row> {
        assert!(components >= 1);
        assert!(
            self.nodes >= components * 2,
            "need at least two nodes per component"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xCC);
        let mut rows: Vec<Row> = Vec::with_capacity(self.edges * 2);
        // Node ids striped across components: component c owns ids
        // {n : (n-1) % components == c}.
        let member = |c: usize, i: usize| -> i64 { (i * components + c + 1) as i64 };
        let sizes: Vec<usize> = (0..components)
            .map(|c| self.nodes / components + usize::from(c < self.nodes % components))
            .collect();
        let both = |rows: &mut Vec<Row>, a: i64, b: i64, w: f64| {
            rows.push(row_of([Value::Int(a), Value::Int(b), Value::Float(w)]));
            rows.push(row_of([Value::Int(b), Value::Int(a), Value::Float(w)]));
        };
        let per_component_extra = (self.edges.saturating_sub(self.nodes)) / components;
        for (c, &size) in sizes.iter().enumerate() {
            // Ring inside the component.
            for i in 0..size {
                let a = member(c, i);
                let b = member(c, (i + 1) % size);
                if a != b {
                    let w = rng.random_range(1..=self.max_weight) as f64;
                    both(&mut rows, a, b, w);
                }
            }
            // Extra random intra-component edges.
            for _ in 0..per_component_extra {
                let a = member(c, rng.random_range(0..size));
                let b = member(c, rng.random_range(0..size));
                if a != b {
                    let w = rng.random_range(1..=self.max_weight) as f64;
                    both(&mut rows, a, b, w);
                }
            }
        }
        rows
    }

    /// Generate `vertexStatus(node, status)` rows for the PR-VS / SSSP-VS
    /// queries: `available_fraction` of nodes get status 1, the rest 0
    /// (paper §V-A: unavailable nodes are excluded from the computation).
    pub fn generate_vertex_status(&self, available_fraction: f64) -> Vec<Row> {
        assert!((0.0..=1.0).contains(&available_fraction));
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5747); // independent stream
        (1..=self.nodes)
            .map(|i| {
                let status = i64::from(rng.random::<f64>() < available_fraction);
                row_of([Value::Int(i as i64), Value::Int(status)])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let spec = GraphSpec::small();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn every_node_has_incoming_and_outgoing() {
        let spec = GraphSpec::small();
        let rows = spec.generate();
        let mut has_in: HashSet<i64> = HashSet::new();
        let mut has_out: HashSet<i64> = HashSet::new();
        for r in &rows {
            has_out.insert(r[0].as_i64().unwrap());
            has_in.insert(r[1].as_i64().unwrap());
        }
        for node in 1..=spec.nodes as i64 {
            assert!(has_in.contains(&node), "node {node} lacks an in-edge");
            assert!(has_out.contains(&node), "node {node} lacks an out-edge");
        }
    }

    #[test]
    fn edge_count_and_id_range_respected() {
        let spec = GraphSpec {
            nodes: 50,
            edges: 300,
            seed: 7,
            max_weight: 5,
        };
        let rows = spec.generate();
        assert_eq!(rows.len(), 300);
        for r in &rows {
            let (s, d) = (r[0].as_i64().unwrap(), r[1].as_i64().unwrap());
            assert!((1..=50).contains(&s));
            assert!((1..=50).contains(&d));
            assert_ne!(s, d, "no self loops beyond the ring");
            let w = r[2].as_f64().unwrap();
            assert!((1.0..=5.0).contains(&w));
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Preferential attachment should concentrate in-degree far above
        // the uniform expectation for the top node.
        let spec = GraphSpec {
            nodes: 500,
            edges: 5_000,
            seed: 11,
            max_weight: 10,
        };
        let rows = spec.generate();
        let mut indeg = vec![0usize; spec.nodes + 1];
        for r in &rows {
            indeg[r[1].as_i64().unwrap() as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let mean = rows.len() / spec.nodes;
        assert!(
            max >= mean * 3,
            "expected a heavy tail, max in-degree {max} vs mean {mean}"
        );
    }

    #[test]
    fn presets_preserve_edge_node_ratio() {
        let spec = DatasetPreset::Pokec.spec(0.01);
        let ratio = spec.edges as f64 / spec.nodes as f64;
        assert!(
            (ratio - 18.75).abs() < 1.0,
            "pokec ratio ~18.8, got {ratio}"
        );
    }

    #[test]
    fn vertex_status_fraction_roughly_holds() {
        let spec = GraphSpec {
            nodes: 2_000,
            edges: 2_000,
            seed: 3,
            max_weight: 1,
        };
        let rows = spec.generate_vertex_status(0.75);
        let on = rows.iter().filter(|r| r[1] == Value::Int(1)).count();
        let frac = on as f64 / rows.len() as f64;
        assert!((frac - 0.75).abs() < 0.05, "got {frac}");
    }
}
