//! Synthetic dataset generation.
//!
//! The paper evaluates on SNAP datasets — DBLP (317,080 nodes / 1,049,866
//! edge rows), Pokec (1,632,803 / 30,622,564) and the Google web graph
//! (875,713 / 5,105,039). Those downloads are not available offline, so
//! this crate generates *shape-preserving* synthetic graphs: a
//! preferential-attachment (Barabási–Albert-style) process reproduces the
//! heavy-tailed degree distribution, a Hamiltonian ring guarantees every
//! node has an incoming edge (true of the paper's graphs, and required for
//! the PR query's LEFT JOIN to keep ranks non-NULL), and a fixed seed makes
//! every run identical. Scale factors shrink the presets to laptop size
//! while preserving the edge/node ratio that drives the paper's relative
//! results (see DESIGN.md §2).
//!
//! A loader for real SNAP edge lists (`src<TAB>dst` lines) is provided for
//! users who have the originals.

pub mod graph;
pub mod loader;
pub mod ml;
pub mod oracle;

pub use graph::{DatasetPreset, GraphSpec};
pub use loader::{
    load_edges_into, load_features_into, load_labeled_graph_into, load_normalized_edges_into,
    load_points_into, load_snap_file, load_vertex_status_into,
};
pub use ml::{FeatureSpec, LabeledGraphSpec, PointsSpec, UNLABELED};
