//! Deterministic dataset generators for the iterative-ML workload suite.
//!
//! Three shapes back the PR-10 workloads: clustered 2-D points for
//! k-means, partially-labeled symmetric graphs for label propagation, and
//! a two-class feature matrix for logistic-regression gradient descent.
//! Like [`GraphSpec`], every generator is a pure
//! function of its spec — same spec, same rows — so property tests and
//! oracles can regenerate the input instead of threading it around.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spinner_common::{row_of, Row, Value};

use crate::graph::GraphSpec;

/// Sentinel label for unseeded nodes in label propagation, matching the
/// SSSP queries' "infinity" distance convention.
pub const UNLABELED: i64 = 9_999_999;

/// Clustered 2-D points for the k-means workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointsSpec {
    /// Number of points (ids 1..=points).
    pub points: usize,
    /// Number of ground-truth clusters (and of initial centroids: the
    /// first `clusters` points are pinned one per cluster, so seeding
    /// k-means from `pid <= clusters` starts with one centroid in each).
    pub clusters: usize,
    /// RNG seed — same spec, same points.
    pub seed: u64,
    /// Half-width of the uniform noise box around each cluster center.
    /// Centers sit on a 100-spaced grid, so any `spread` well below 50
    /// keeps clusters separated and assignments unambiguous.
    pub spread: f64,
}

impl PointsSpec {
    /// Small default for tests and examples.
    pub fn small() -> Self {
        PointsSpec {
            points: 120,
            clusters: 3,
            seed: 11,
            spread: 4.0,
        }
    }

    /// Ground-truth cluster centers on a well-separated grid.
    pub fn centers(&self) -> Vec<(f64, f64)> {
        (0..self.clusters)
            .map(|c| (((c % 4) * 100) as f64, ((c / 4) * 100) as f64))
            .collect()
    }

    /// Generate `points(pid, x, y)` rows: point `pid` belongs to cluster
    /// `(pid - 1) % clusters` for the first `clusters` points (one pinned
    /// point per cluster) and to a random cluster afterwards.
    pub fn generate(&self) -> Vec<Row> {
        assert!(self.clusters >= 1, "need at least one cluster");
        assert!(
            self.points >= self.clusters,
            "need at least one point per cluster"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x3EA);
        let centers = self.centers();
        (1..=self.points)
            .map(|pid| {
                let c = if pid <= self.clusters {
                    pid - 1
                } else {
                    rng.random_range(0..self.clusters)
                };
                let (cx, cy) = centers[c];
                let dx = (rng.random::<f64>() * 2.0 - 1.0) * self.spread;
                let dy = (rng.random::<f64>() * 2.0 - 1.0) * self.spread;
                row_of([
                    Value::Int(pid as i64),
                    Value::Float(cx + dx),
                    Value::Float(cy + dy),
                ])
            })
            .collect()
    }
}

/// A symmetric multi-component graph where only a fraction of the nodes
/// carry a label — the input of the label-propagation workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledGraphSpec {
    /// The underlying symmetric graph (edges via
    /// [`GraphSpec::generate_symmetric_components`]).
    pub graph: GraphSpec,
    /// Number of disjoint components.
    pub components: usize,
    /// Fraction of nodes that start labeled (with their own id); the
    /// rest start at [`UNLABELED`]. Node 1 is always seeded so at least
    /// one label exists to propagate.
    pub seed_fraction: f64,
}

impl LabeledGraphSpec {
    /// The symmetric edge rows.
    pub fn edges(&self) -> Vec<Row> {
        self.graph.generate_symmetric_components(self.components)
    }

    /// Generate `labels(node, label)` rows.
    pub fn labels(&self) -> Vec<Row> {
        assert!((0.0..=1.0).contains(&self.seed_fraction));
        let mut rng = StdRng::seed_from_u64(self.graph.seed ^ 0x1AB);
        (1..=self.graph.nodes)
            .map(|node| {
                let seeded = node == 1 || rng.random::<f64>() < self.seed_fraction;
                let label = if seeded { node as i64 } else { UNLABELED };
                row_of([Value::Int(node as i64), Value::Int(label)])
            })
            .collect()
    }
}

/// Two-class feature matrix for logistic-regression gradient descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureSpec {
    /// Number of observations (ids 1..=rows).
    pub rows: usize,
    /// RNG seed — same spec, same matrix.
    pub seed: u64,
}

impl FeatureSpec {
    /// Small default for tests and examples.
    pub fn small() -> Self {
        FeatureSpec {
            rows: 200,
            seed: 17,
        }
    }

    /// Generate `observations(id, x1, x2, y)` rows: class 0 is centered
    /// at (-2, -2), class 1 at (2, 2), each with ±2 uniform noise — a
    /// linearly separable problem whose gradient steps are well-scaled.
    pub fn generate(&self) -> Vec<Row> {
        assert!(self.rows >= 2, "need at least two observations");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x109);
        (1..=self.rows)
            .map(|id| {
                let y = id % 2; // alternate classes deterministically
                let center = if y == 0 { -2.0 } else { 2.0 };
                let x1 = center + (rng.random::<f64>() * 2.0 - 1.0) * 2.0;
                let x2 = center + (rng.random::<f64>() * 2.0 - 1.0) * 2.0;
                row_of([
                    Value::Int(id as i64),
                    Value::Float(x1),
                    Value::Float(x2),
                    Value::Float(y as f64),
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_are_deterministic_and_pinned() {
        let spec = PointsSpec::small();
        let a = spec.generate();
        assert_eq!(a, spec.generate());
        assert_eq!(a.len(), spec.points);
        // The first `clusters` points sit near distinct centers.
        let centers = spec.centers();
        for (i, row) in a.iter().take(spec.clusters).enumerate() {
            let (cx, cy) = centers[i];
            let x = row[1].as_f64().unwrap();
            let y = row[2].as_f64().unwrap();
            assert!((x - cx).abs() <= spec.spread && (y - cy).abs() <= spec.spread);
        }
    }

    #[test]
    fn labels_seed_fraction_and_node_one() {
        let spec = LabeledGraphSpec {
            graph: GraphSpec {
                nodes: 500,
                edges: 1_000,
                seed: 4,
                max_weight: 5,
            },
            components: 2,
            seed_fraction: 0.3,
        };
        let labels = spec.labels();
        assert_eq!(labels.len(), 500);
        assert_eq!(labels[0][1], Value::Int(1), "node 1 must be seeded");
        let seeded = labels
            .iter()
            .filter(|r| r[1] != Value::Int(UNLABELED))
            .count();
        let frac = seeded as f64 / labels.len() as f64;
        assert!((frac - 0.3).abs() < 0.1, "got {frac}");
    }

    #[test]
    fn features_alternate_classes() {
        let spec = FeatureSpec::small();
        let rows = spec.generate();
        assert_eq!(rows, spec.generate());
        let ones = rows.iter().filter(|r| r[3] == Value::Float(1.0)).count();
        assert_eq!(ones, spec.rows / 2);
    }
}
