//! Hand-rolled reference implementations ("oracles") of the iterative
//! workloads, shared by every property suite.
//!
//! Each oracle computes the same fixpoint (or the same fixed number of
//! iterations) as the corresponding SQL workload, in plain Rust over the
//! generated rows. The float oracles deliberately replicate the engine's
//! *per-row* expression order (e.g. `(s - y) * x1`, `dist = dx*dx + dy*dy`)
//! so the only remaining divergence is aggregation order — which tests
//! absorb with [`spinner_common::rows_approx_eq`]. Integer oracles
//! (Dijkstra on integer micro-weights, min-label propagation) match the
//! engine bit-for-bit.

use std::collections::{BTreeMap, HashMap};

use spinner_common::Row;

use crate::graph::GraphSpec;

/// Reference shortest-path oracle for [`GraphSpec::generate`] graphs:
/// Dijkstra over the directed edges, indexed by node id (`dist[0]` is
/// unused; `None` means unreachable, which the SQL workloads report as
/// the `9999999` sentinel).
pub fn dijkstra(spec: &GraphSpec, source: usize) -> Vec<Option<f64>> {
    let rows = spec.generate();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); spec.nodes + 1];
    for r in &rows {
        let s = r[0].as_i64().expect("src is int") as usize;
        let d = r[1].as_i64().expect("dst is int") as usize;
        adj[s].push((d, r[2].as_f64().expect("weight is numeric")));
    }
    let mut dist: Vec<Option<f64>> = vec![None; spec.nodes + 1];
    let mut heap = std::collections::BinaryHeap::new();
    dist[source] = Some(0.0);
    heap.push(std::cmp::Reverse((0i64, source)));
    while let Some(std::cmp::Reverse((dmicro, u))) = heap.pop() {
        let d = dmicro as f64 / 1e6;
        if dist[u].is_some_and(|best| d > best + 1e-12) {
            continue;
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if dist[v].is_none_or(|best| nd < best - 1e-12) {
                dist[v] = Some(nd);
                heap.push(std::cmp::Reverse(((nd * 1e6) as i64, v)));
            }
        }
    }
    dist
}

/// The converged connected-components label of `node` in a
/// [`GraphSpec::generate_symmetric_components`] graph: node ids are
/// striped, so node `n` belongs to component `(n-1) % k`, whose minimum
/// id — the min-label fixpoint — is `(n-1) % k + 1`.
pub fn striped_component_label(node: i64, components: usize) -> i64 {
    (node - 1) % components as i64 + 1
}

/// Min-label propagation to fixpoint over `edges(src, dst, ..)` rows and
/// `labels(node, label)` rows: each round every node takes the minimum of
/// its own label and its in-neighbors' labels, until nothing changes.
/// Pure integer arithmetic, so the result is exact.
pub fn min_label_propagation(edges: &[Row], labels: &[Row]) -> BTreeMap<i64, i64> {
    let mut label: BTreeMap<i64, i64> = labels
        .iter()
        .map(|r| {
            (
                r[0].as_i64().expect("node is int"),
                r[1].as_i64().expect("label is int"),
            )
        })
        .collect();
    let pairs: Vec<(i64, i64)> = edges
        .iter()
        .map(|r| {
            (
                r[0].as_i64().expect("src is int"),
                r[1].as_i64().expect("dst is int"),
            )
        })
        .collect();
    loop {
        let mut next = label.clone();
        for &(src, dst) in &pairs {
            if let (Some(&from), Some(entry)) = (label.get(&src), next.get_mut(&dst)) {
                *entry = (*entry).min(from);
            }
        }
        if next == label {
            return label;
        }
        label = next;
    }
}

/// K-means over `points(pid, x, y)` rows for a fixed number of Lloyd
/// iterations, mirroring the SQL workload exactly: centroids start at the
/// points with `pid <= k`; each point joins the centroid minimizing
/// `dx*dx + dy*dy` (ties on distance go to the smaller centroid id, the
/// `ARG_MIN` tie-break); a centroid with no members keeps its position.
/// Returns `(cid, cx, cy)` sorted by centroid id.
pub fn kmeans(points: &[Row], k: usize, iterations: u64) -> Vec<(i64, f64, f64)> {
    let pts: Vec<(i64, f64, f64)> = points
        .iter()
        .map(|r| {
            (
                r[0].as_i64().expect("pid is int"),
                r[1].as_f64().expect("x is numeric"),
                r[2].as_f64().expect("y is numeric"),
            )
        })
        .collect();
    let mut centroids: Vec<(i64, f64, f64)> = pts
        .iter()
        .filter(|(pid, _, _)| *pid <= k as i64)
        .copied()
        .collect();
    centroids.sort_by_key(|c| c.0);
    for _ in 0..iterations {
        // Assignment: per point, the ARG_MIN centroid by (distance, cid).
        let mut sums: HashMap<i64, (f64, f64, usize)> = HashMap::new();
        for &(_, px, py) in &pts {
            let mut best: Option<(f64, i64)> = None;
            for &(cid, cx, cy) in &centroids {
                let dist = (px - cx) * (px - cx) + (py - cy) * (py - cy);
                let replaces = match best {
                    None => true,
                    Some((bd, bc)) => dist < bd || (dist == bd && cid < bc),
                };
                if replaces {
                    best = Some((dist, cid));
                }
            }
            let (_, cid) = best.expect("at least one centroid");
            let s = sums.entry(cid).or_insert((0.0, 0.0, 0));
            s.0 += px;
            s.1 += py;
            s.2 += 1;
        }
        // Update: mean of members, or unchanged for an empty cluster
        // (the SQL's COALESCE(AVG(..), old)).
        for c in &mut centroids {
            if let Some(&(sx, sy, n)) = sums.get(&c.0) {
                c.1 = sx / n as f64;
                c.2 = sy / n as f64;
            }
        }
    }
    centroids
}

/// Triangle-weighted ranking over `edges(src, dst, ..)` rows for a fixed
/// number of iterations. `tri(u, p)` counts directed triangles
/// `u -> v -> p -> u` *with edge-row multiplicity* (the generator can emit
/// duplicate edges, and the SQL `COUNT(*)` sees every row); each round,
/// `rank'(u) = 0.2 + 0.8 * Σ_p rank(p) * tri(u, p)`, starting from
/// `rank = 1.0` on every node that appears as a src or dst.
pub fn triangle_rank(edges: &[Row], iterations: u64) -> BTreeMap<i64, f64> {
    let pairs: Vec<(i64, i64)> = edges
        .iter()
        .map(|r| {
            (
                r[0].as_i64().expect("src is int"),
                r[1].as_i64().expect("dst is int"),
            )
        })
        .collect();
    let mut edge_count: HashMap<(i64, i64), i64> = HashMap::new();
    let mut out: HashMap<i64, Vec<i64>> = HashMap::new();
    for &(s, d) in &pairs {
        *edge_count.entry((s, d)).or_insert(0) += 1;
        out.entry(s).or_default().push(d);
    }
    // tri[u][p] = Σ over edge rows (u,v), (v,p), (p,u) of 1.
    let mut tri: BTreeMap<i64, BTreeMap<i64, i64>> = BTreeMap::new();
    for &(u, v) in &pairs {
        if let Some(mids) = out.get(&v) {
            for &p in mids {
                if let Some(&closing) = edge_count.get(&(p, u)) {
                    *tri.entry(u).or_default().entry(p).or_insert(0) += closing;
                }
            }
        }
    }
    let mut rank: BTreeMap<i64, f64> = pairs
        .iter()
        .flat_map(|&(s, d)| [s, d])
        .map(|n| (n, 1.0))
        .collect();
    for _ in 0..iterations {
        let next: BTreeMap<i64, f64> = rank
            .keys()
            .map(|&u| {
                let weighted = tri.get(&u).map_or(0.0, |peers| {
                    peers
                        .iter()
                        .map(|(&p, &t)| rank[&p] * t as f64)
                        .sum::<f64>()
                });
                (u, 0.2 + 0.8 * weighted)
            })
            .collect();
        rank = next;
    }
    rank
}

/// Batch-gradient-descent logistic regression over
/// `observations(id, x1, x2, y)` rows for a fixed number of steps from
/// `w1 = w2 = b = 0`, replicating the SQL body's expressions:
/// `s = 1 / (1 + exp(0 - (w1*x1 + w2*x2 + b)))`, then each weight moves
/// by `-rate * AVG(gradient term)`. Returns `(w1, w2, b)`.
pub fn logistic_regression(obs: &[Row], iterations: u64, rate: f64) -> (f64, f64, f64) {
    let data: Vec<(f64, f64, f64)> = obs
        .iter()
        .map(|r| {
            (
                r[1].as_f64().expect("x1 is numeric"),
                r[2].as_f64().expect("x2 is numeric"),
                r[3].as_f64().expect("y is numeric"),
            )
        })
        .collect();
    let n = data.len() as f64;
    let (mut w1, mut w2, mut b) = (0.0f64, 0.0f64, 0.0f64);
    for _ in 0..iterations {
        let (mut g1, mut g2, mut gb) = (0.0f64, 0.0f64, 0.0f64);
        for &(x1, x2, y) in &data {
            let s = 1.0 / (1.0 + (0.0 - (w1 * x1 + w2 * x2 + b)).exp());
            g1 += (s - y) * x1;
            g2 += (s - y) * x2;
            gb += s - y;
        }
        w1 -= rate * (g1 / n);
        w2 -= rate * (g2 / n);
        b -= rate * (gb / n);
    }
    (w1, w2, b)
}

/// PageRank in the paper's rank/delta formulation over normalized
/// `edges(src, dst, weight)` rows for a fixed number of iterations:
/// `rank' = rank + delta`, `delta' = 0.85 * Σ_incoming delta(src) *
/// weight`, from `rank = 0, delta = 0.15`. Requires every node to have an
/// incoming edge (guaranteed by the generator's ring), mirroring the SQL
/// workload's LEFT-JOIN non-NULL precondition. Returns node → rank.
pub fn pagerank_delta(edges: &[Row], iterations: u64) -> BTreeMap<i64, f64> {
    let triples: Vec<(i64, i64, f64)> = edges
        .iter()
        .map(|r| {
            (
                r[0].as_i64().expect("src is int"),
                r[1].as_i64().expect("dst is int"),
                r[2].as_f64().expect("weight is numeric"),
            )
        })
        .collect();
    let mut state: BTreeMap<i64, (f64, f64)> = triples
        .iter()
        .flat_map(|&(s, d, _)| [s, d])
        .map(|n| (n, (0.0, 0.15)))
        .collect();
    for _ in 0..iterations {
        let mut next: BTreeMap<i64, (f64, f64)> = state
            .iter()
            .map(|(&n, &(rank, delta))| (n, (rank + delta, 0.0)))
            .collect();
        for &(src, dst, w) in &triples {
            let incoming = state[&src].1 * w;
            next.get_mut(&dst).expect("dst is a node").1 += 0.85 * incoming;
        }
        state = next;
    }
    state.iter().map(|(&n, &(rank, _))| (n, rank)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ml::{LabeledGraphSpec, PointsSpec, UNLABELED};
    use spinner_common::Value;

    #[test]
    fn dijkstra_on_a_pure_ring() {
        // nodes == edges leaves only the ring 1->2->..->n->1, whose
        // shortest paths from 1 are the weight prefix sums.
        let spec = GraphSpec {
            nodes: 6,
            edges: 6,
            seed: 1,
            max_weight: 4,
        };
        let rows = spec.generate();
        let dist = dijkstra(&spec, 1);
        assert_eq!(dist[1], Some(0.0));
        let mut acc = 0.0;
        for r in rows.iter().take(5) {
            acc += r[2].as_f64().unwrap();
            assert_eq!(dist[r[1].as_i64().unwrap() as usize], Some(acc));
        }
    }

    #[test]
    fn label_propagation_reaches_component_minima() {
        let spec = LabeledGraphSpec {
            graph: GraphSpec {
                nodes: 40,
                edges: 100,
                seed: 8,
                max_weight: 5,
            },
            components: 2,
            seed_fraction: 1.0, // everyone seeded => CC min-label fixpoint
        };
        let labels = min_label_propagation(&spec.edges(), &spec.labels());
        for (&node, &label) in &labels {
            assert_eq!(label, striped_component_label(node, 2), "node {node}");
        }
    }

    #[test]
    fn label_propagation_keeps_sentinel_in_unseeded_component() {
        // Two disjoint single-edge components; only component A seeded.
        let edges = vec![
            spinner_common::row_of([Value::Int(1), Value::Int(2), Value::Float(1.0)]),
            spinner_common::row_of([Value::Int(2), Value::Int(1), Value::Float(1.0)]),
            spinner_common::row_of([Value::Int(3), Value::Int(4), Value::Float(1.0)]),
            spinner_common::row_of([Value::Int(4), Value::Int(3), Value::Float(1.0)]),
        ];
        let labels = vec![
            spinner_common::row_of([Value::Int(1), Value::Int(1)]),
            spinner_common::row_of([Value::Int(2), Value::Int(UNLABELED)]),
            spinner_common::row_of([Value::Int(3), Value::Int(UNLABELED)]),
            spinner_common::row_of([Value::Int(4), Value::Int(UNLABELED)]),
        ];
        let got = min_label_propagation(&edges, &labels);
        assert_eq!(got[&2], 1);
        assert_eq!(got[&3], UNLABELED);
        assert_eq!(got[&4], UNLABELED);
    }

    #[test]
    fn kmeans_recovers_separated_clusters() {
        let spec = PointsSpec::small();
        let centroids = kmeans(&spec.generate(), spec.clusters, 20);
        let centers = spec.centers();
        assert_eq!(centroids.len(), spec.clusters);
        // With 100-spaced centers and spread 4, each converged centroid
        // must sit inside its ground-truth cluster's noise box.
        for (i, &(cid, cx, cy)) in centroids.iter().enumerate() {
            assert_eq!(cid, i as i64 + 1);
            let (gx, gy) = centers[i];
            assert!(
                (cx - gx).abs() <= spec.spread && (cy - gy).abs() <= spec.spread,
                "centroid {cid} at ({cx}, {cy}) far from ({gx}, {gy})"
            );
        }
    }

    #[test]
    fn triangle_rank_counts_multiplicity() {
        // Triangle 1->2->3->1 with the edge 1->2 duplicated: tri(1, 3)
        // sees one closing path per copy of each edge on the cycle.
        let mk = |s: i64, d: i64| {
            spinner_common::row_of([Value::Int(s), Value::Int(d), Value::Float(1.0)])
        };
        let edges = vec![mk(1, 2), mk(1, 2), mk(2, 3), mk(3, 1)];
        let rank = triangle_rank(&edges, 1);
        // node 1: tri(1,3) = 2 (two copies of 1->2) => 0.2 + 0.8 * (1.0*2)
        assert!((rank[&1] - 1.8).abs() < 1e-12, "{}", rank[&1]);
        // node 2: tri(2,1) = 2 as well (2->3->1->2 twice via dup edge).
        assert!((rank[&2] - 1.8).abs() < 1e-12, "{}", rank[&2]);
    }

    #[test]
    fn logistic_regression_separates_the_classes() {
        let spec = crate::ml::FeatureSpec::small();
        let obs = spec.generate();
        let (w1, w2, b) = logistic_regression(&obs, 50, 0.1);
        // Class 1 sits at (+2, +2): the decision boundary must classify
        // the class centers correctly.
        let score = |x1: f64, x2: f64| 1.0 / (1.0 + (0.0 - (w1 * x1 + w2 * x2 + b)).exp());
        assert!(score(2.0, 2.0) > 0.9, "{}", score(2.0, 2.0));
        assert!(score(-2.0, -2.0) < 0.1, "{}", score(-2.0, -2.0));
    }

    #[test]
    fn pagerank_mass_is_conserved_on_normalized_edges() {
        let spec = GraphSpec::small();
        let rank = pagerank_delta(&spec.generate_normalized(), 20);
        // With transition weights 1/out_degree and damping 0.85, total
        // rank approaches n * 0.15 / 0.15 = n (geometric series limit);
        // after 20 rounds it is close.
        let total: f64 = rank.values().sum();
        let n = rank.len() as f64;
        assert!((total - n).abs() / n < 0.05, "total {total} vs n {n}");
    }
}
