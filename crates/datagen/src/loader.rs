//! Loading datasets into a [`Database`].

use std::io::BufRead;
use std::path::Path;

use spinner_common::{row_of, DataType, Field, Result, Row, Schema, Value};
use spinner_engine::Database;

use crate::graph::GraphSpec;
use crate::ml::{FeatureSpec, LabeledGraphSpec, PointsSpec};

/// Create and populate the `edges(src, dst, weight)` table from a spec.
/// The table is hash-distributed on `dst` (the probe side of the PR/SSSP
/// joins), mirroring how one would distribute it on MPPDB.
pub fn load_edges_into(db: &Database, table: &str, spec: &GraphSpec) -> Result<usize> {
    let schema = Schema::new(vec![
        Field::new("src", DataType::Int),
        Field::new("dst", DataType::Int),
        Field::new("weight", DataType::Float),
    ]);
    db.create_table_from_rows(table, schema, spec.generate(), None, Some(1))
}

/// Like [`load_edges_into`] but with PageRank-ready transition weights
/// (`1 / out_degree(src)`), so ranks converge instead of diverging.
pub fn load_normalized_edges_into(db: &Database, table: &str, spec: &GraphSpec) -> Result<usize> {
    let schema = Schema::new(vec![
        Field::new("src", DataType::Int),
        Field::new("dst", DataType::Int),
        Field::new("weight", DataType::Float),
    ]);
    db.create_table_from_rows(table, schema, spec.generate_normalized(), None, Some(1))
}

/// Create and populate `vertexStatus(node, status)` for the -VS query
/// variants.
pub fn load_vertex_status_into(
    db: &Database,
    table: &str,
    spec: &GraphSpec,
    available_fraction: f64,
) -> Result<usize> {
    let schema = Schema::new(vec![
        Field::new("node", DataType::Int),
        Field::new("status", DataType::Int),
    ]);
    db.create_table_from_rows(
        table,
        schema,
        spec.generate_vertex_status(available_fraction),
        Some(0),
        Some(0),
    )
}

/// Create and populate `points(pid, x, y)` for the k-means workload,
/// hash-distributed on `pid` so the per-point assignment group-by stays
/// partition-local.
pub fn load_points_into(db: &Database, table: &str, spec: &PointsSpec) -> Result<usize> {
    let schema = Schema::new(vec![
        Field::new("pid", DataType::Int),
        Field::new("x", DataType::Float),
        Field::new("y", DataType::Float),
    ]);
    db.create_table_from_rows(table, schema, spec.generate(), Some(0), Some(0))
}

/// Create and populate both tables of the label-propagation workload:
/// symmetric `edges(src, dst, weight)` (distributed on `dst`, the probe
/// side) and `labels(node, label)` (distributed on `node`).
pub fn load_labeled_graph_into(
    db: &Database,
    edges_table: &str,
    labels_table: &str,
    spec: &LabeledGraphSpec,
) -> Result<usize> {
    let edge_schema = Schema::new(vec![
        Field::new("src", DataType::Int),
        Field::new("dst", DataType::Int),
        Field::new("weight", DataType::Float),
    ]);
    let n = db.create_table_from_rows(edges_table, edge_schema, spec.edges(), None, Some(1))?;
    let label_schema = Schema::new(vec![
        Field::new("node", DataType::Int),
        Field::new("label", DataType::Int),
    ]);
    db.create_table_from_rows(labels_table, label_schema, spec.labels(), Some(0), Some(0))?;
    Ok(n)
}

/// Create and populate `observations(id, x1, x2, y)` for the
/// logistic-regression workload.
pub fn load_features_into(db: &Database, table: &str, spec: &FeatureSpec) -> Result<usize> {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("x1", DataType::Float),
        Field::new("x2", DataType::Float),
        Field::new("y", DataType::Float),
    ]);
    db.create_table_from_rows(table, schema, spec.generate(), Some(0), Some(0))
}

/// Parse a SNAP-format edge list (`src<whitespace>dst` per line, `#`
/// comments) into edge rows with unit weights.
pub fn load_snap_file(path: &Path) -> Result<Vec<Row>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<i64> {
            tok.and_then(|t| t.parse::<i64>().ok()).ok_or_else(|| {
                spinner_common::Error::Io(format!("malformed edge list at line {}", lineno + 1))
            })
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        rows.push(row_of([
            Value::Int(src),
            Value::Int(dst),
            Value::Float(1.0),
        ]));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn load_edges_and_query() {
        let db = Database::default();
        let spec = GraphSpec::small();
        let n = load_edges_into(&db, "edges", &spec).unwrap();
        assert_eq!(n, spec.edges);
        let batch = db.query("SELECT COUNT(*) FROM edges").unwrap();
        assert_eq!(batch.rows()[0][0], Value::Int(spec.edges as i64));
    }

    #[test]
    fn load_vertex_status_and_join() {
        let db = Database::default();
        let spec = GraphSpec::small();
        load_edges_into(&db, "edges", &spec).unwrap();
        load_vertex_status_into(&db, "vertexstatus", &spec, 0.5).unwrap();
        let batch = db
            .query(
                "SELECT COUNT(*) FROM edges e JOIN vertexstatus v ON v.node = e.dst \
                 WHERE v.status != 0",
            )
            .unwrap();
        let joined = batch.rows()[0][0].as_i64().unwrap();
        assert!(joined > 0 && joined < spec.edges as i64);
    }

    #[test]
    fn snap_parser_skips_comments() {
        let dir = std::env::temp_dir();
        let path = dir.join("spinner_test_snap.txt");
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "# FromNodeId\tToNodeId").unwrap();
        writeln!(f, "0\t1").unwrap();
        writeln!(f, "1 2").unwrap();
        writeln!(f).unwrap();
        drop(f);
        let rows = load_snap_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], Value::Int(2));
    }

    #[test]
    fn snap_parser_rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join("spinner_test_snap_bad.txt");
        std::fs::write(&path, "abc def\n").unwrap();
        let err = load_snap_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, spinner_common::Error::Io(_)));
    }
}
