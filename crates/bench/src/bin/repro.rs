//! One-shot reproduction of every table and figure in the paper's
//! evaluation (§VII). Prints the same series the paper plots, plus the
//! engine's internal counters, and the measured improvement percentages.
//!
//! ```sh
//! cargo run --release -p spinner-bench --bin repro            # everything
//! cargo run --release -p spinner-bench --bin repro -- fig8    # one artifact
//! ```
//!
//! Artifacts: `table1`, `fig8`, `fig9`, `fig10`, `fig11`, `convergence`
//! (semi-naive vs full per-iteration cost with a hard speedup gate,
//! writes `CONVERGENCE_7.json`), `recovery`, `spill`, `bench`
//! (worker-pool regression smoke, writes `BENCH_5.json`), `concurrency`
//! (multi-session overload/shedding run against a live TCP server,
//! writes `CONCURRENCY_6.json`), `durability` (corruption-detection
//! sweep plus fsync overhead on the fig8 PR workload, writes
//! `DURABILITY_8.json`), `crash` (SIGKILL-at-swept-positions restart
//! sweep against real `spinner-serve` subprocesses — every position
//! must resume row-identically within one checkpoint interval; writes
//! `CRASH_9.json`; not part of `all`), `workloads` (the PR-10 iterative
//! ML/graph suite — k-means, label propagation, triangle-weighted
//! ranking, logistic regression — benchmarked end-to-end with
//! per-workload convergence gates and oracle checks; writes
//! `WORKLOADS_10.json`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spinner_bench::{setup_db, BenchDataset, ITERATIONS};
use spinner_engine::{Database, EngineConfig, FaultConfig, FaultSite, Result, Value};
use spinner_procedural::{
    connected_components, ff, pagerank, run_script, sssp, sssp_convergent, ProcedureScript,
};
use spinner_server::{Client, Reply, Server};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let result = match which.as_str() {
        "table1" => table1(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "convergence" => convergence(),
        "recovery" => recovery(),
        "spill" => spill(),
        "bench" => bench(),
        "concurrency" => concurrency(),
        "durability" => durability(),
        "crash" => crash(),
        "workloads" => workloads(),
        "all" => table1()
            .and_then(|()| fig8())
            .and_then(|()| fig9())
            .and_then(|()| fig10())
            .and_then(|()| fig11())
            .and_then(|()| convergence())
            .and_then(|()| recovery())
            .and_then(|()| spill())
            .and_then(|()| bench())
            .and_then(|()| concurrency())
            .and_then(|()| durability())
            .and_then(|()| workloads()),
        other => {
            eprintln!(
                "repro: unknown artifact '{other}'; use table1|fig8|fig9|fig10|\
                 fig11|convergence|recovery|spill|bench|concurrency|durability|\
                 crash|workloads|all"
            );
            std::process::exit(1);
        }
    };
    if let Err(e) = result {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
}

/// Minimum-of-five wall-clock timing of a query. The minimum is the
/// robust statistic under VM scheduling jitter: every sample includes the
/// true work, noise only ever adds.
fn time_query(db: &Database, sql: &str) -> Result<Duration> {
    (0..5)
        .map(|_| {
            let t = Instant::now();
            db.query(sql)?;
            Ok(t.elapsed())
        })
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .min()
        .ok_or_else(|| spinner_engine::Error::execution("no timing samples"))
}

fn time_script(db: &Database, script: &ProcedureScript) -> Result<Duration> {
    (0..5)
        .map(|_| {
            let t = Instant::now();
            run_script(db, script)?;
            Ok(t.elapsed())
        })
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .min()
        .ok_or_else(|| spinner_engine::Error::execution("no timing samples"))
}

fn improvement(baseline: Duration, optimized: Duration) -> f64 {
    100.0 * (baseline.as_secs_f64() - optimized.as_secs_f64()) / baseline.as_secs_f64()
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Table I: the logical plan of the PR query.
fn table1() -> Result<()> {
    header("Table I — logical plan of the PR query");
    let db = Database::default();
    db.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
    let text = db.explain(&pagerank(10, false).cte)?;
    println!("{text}");
    Ok(())
}

/// Figure 8: minimizing data movement (rename vs merge-back baseline).
fn fig8() -> Result<()> {
    header("Figure 8 — minimizing data movement (25 iterations)");
    println!(
        "{:<10} {:<12} {:>14} {:>14} {:>9}  {:>12} {:>12}",
        "query", "dataset", "baseline", "rename-opt", "gain", "moved(base)", "moved(opt)"
    );
    for dataset in [BenchDataset::DblpLike, BenchDataset::PokecLike] {
        for (qname, sql) in [
            ("FF", ff(ITERATIONS, 10).cte),
            ("PR", pagerank(ITERATIONS, false).cte),
        ] {
            let base_db = setup_db(
                dataset,
                EngineConfig::default().with_minimize_data_movement(false),
                false,
            );
            let opt_db = setup_db(dataset, EngineConfig::default(), false);
            let base = time_query(&base_db, &sql)?;
            // Stats are per-statement (reset at entry), so this snapshot
            // covers exactly the last of the five timed runs.
            let base_stats = base_db.take_stats();
            let opt = time_query(&opt_db, &sql)?;
            let opt_stats = opt_db.take_stats();
            println!(
                "{:<10} {:<12} {:>14.2?} {:>14.2?} {:>8.1}%  {:>12} {:>12}",
                qname,
                dataset.label(),
                base,
                opt,
                improvement(base, opt),
                base_stats.rows_moved,
                opt_stats.rows_moved,
            );
        }
    }
    println!("(paper: up to 48% for FF; small gain for PR)");
    Ok(())
}

/// Figure 9: common result optimization on PR-VS / SSSP-VS.
fn fig9() -> Result<()> {
    header("Figure 9 — common result optimization (25 iterations)");
    println!(
        "{:<10} {:<12} {:>14} {:>14} {:>9}",
        "query", "dataset", "baseline", "common-opt", "gain"
    );
    for dataset in [BenchDataset::DblpLike, BenchDataset::PokecLike] {
        for (qname, sql) in [
            ("PR-VS", pagerank(ITERATIONS, true).cte),
            ("SSSP-VS", sssp(ITERATIONS, 1, true).cte),
        ] {
            let base_db = setup_db(
                dataset,
                EngineConfig::default().with_common_result(false),
                true,
            );
            let opt_db = setup_db(dataset, EngineConfig::default(), true);
            let base = time_query(&base_db, &sql)?;
            let opt = time_query(&opt_db, &sql)?;
            println!(
                "{:<10} {:<12} {:>14.2?} {:>14.2?} {:>8.1}%",
                qname,
                dataset.label(),
                base,
                opt,
                improvement(base, opt),
            );
        }
    }
    println!("(paper: ~20% on DBLP, ~10% on Pokec, same pattern for both queries)");
    Ok(())
}

/// Figure 10: predicate push-down at varying selectivity.
fn fig10() -> Result<()> {
    header("Figure 10 — predicate push-down, FF, 25 iterations");
    println!(
        "{:<14} {:>14} {:>14} {:>9}",
        "selectivity", "baseline", "pushdown", "speedup"
    );
    for mod_x in [2i64, 10, 50, 100] {
        let sql = ff(ITERATIONS, mod_x).cte;
        let base_db = setup_db(
            BenchDataset::DblpLike,
            EngineConfig::default().with_predicate_pushdown(false),
            false,
        );
        let opt_db = setup_db(BenchDataset::DblpLike, EngineConfig::default(), false);
        let base = time_query(&base_db, &sql)?;
        let opt = time_query(&opt_db, &sql)?;
        println!(
            "{:<14} {:>14.2?} {:>14.2?} {:>8.1}x",
            format!("1/{mod_x}"),
            base,
            opt,
            base.as_secs_f64() / opt.as_secs_f64(),
        );
    }
    println!("(paper: baseline flat in selectivity; >10x at high selectivity)");
    Ok(())
}

/// Figure 11: iterative CTEs vs stored procedures vs middleware.
fn fig11() -> Result<()> {
    header("Figure 11 — CTEs vs stored procedures (25 iterations, dblp-like)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "query", "cte", "procedure", "middleware", "vs proc", "vs middlew"
    );
    let workloads = [
        ("PR-VS", pagerank(ITERATIONS, true), true),
        ("SSSP-VS", sssp(ITERATIONS, 1, true), true),
        ("FF-50%", ff(ITERATIONS, 2), false),
    ];
    for (name, w, with_vs) in workloads {
        let db = setup_db(BenchDataset::DblpLike, EngineConfig::default(), with_vs);
        let cte = time_query(&db, &w.cte)?;
        let procedure = time_script(&db, &w.procedure)?;
        let middleware = time_script(&db, &w.middleware)?;
        println!(
            "{:<10} {:>14.2?} {:>14.2?} {:>14.2?} {:>11.1}% {:>11.1}%",
            name,
            cte,
            procedure,
            middleware,
            improvement(procedure, cte),
            improvement(middleware, cte),
        );
    }
    println!("(paper: CTE ≥25% faster than procedures for PR/SSSP, ~80% for FF)");
    Ok(())
}

/// Recovery: checkpoint-interval overhead on fault-free PageRank, then a
/// mid-loop fault with rollback-and-replay, on the fig-8-scale dataset.
fn recovery() -> Result<()> {
    header("Recovery — checkpoint overhead and mid-loop replay (PR, 25 iterations, dblp-like)");
    let sql = pagerank(ITERATIONS, false).cte;

    // Part 1: what does checkpointing cost when nothing fails?
    println!(
        "{:<10} {:>14} {:>9} {:>12} {:>12}",
        "interval", "time", "overhead", "checkpoints", "ckpt_bytes"
    );
    let mut baseline: Option<Duration> = None;
    for interval in [0u64, 5, 1] {
        let db = setup_db(
            BenchDataset::DblpLike,
            EngineConfig::default().with_checkpoint_interval(interval),
            false,
        );
        let t = time_query(&db, &sql)?;
        let stats = db.take_stats();
        let overhead = match baseline {
            None => {
                baseline = Some(t);
                "—".to_string()
            }
            Some(base) => format!("{:+.1}%", -improvement(base, t)),
        };
        println!(
            "{:<10} {:>14.2?} {:>9} {:>12} {:>12}",
            interval, t, overhead, stats.checkpoints_taken, stats.checkpoint_bytes,
        );
    }

    // Part 2: kill iteration 13 (past the interval-5 checkpoint at 10)
    // and let the loop roll back and replay. The recovered run must be
    // row-identical to the fault-free run.
    let clean_db = setup_db(BenchDataset::DblpLike, EngineConfig::default(), false);
    let clean_rows = sorted_rows(&clean_db.query(&sql)?);
    let faulty_db = setup_db(
        BenchDataset::DblpLike,
        EngineConfig::default()
            .with_checkpoint_interval(5)
            .with_max_loop_recoveries(2)
            .with_fault(FaultConfig::fail_nth(FaultSite::LoopIteration, 13)),
        false,
    );
    let t = Instant::now();
    let recovered_rows = sorted_rows(&faulty_db.query(&sql)?);
    let elapsed = t.elapsed();
    let stats = faulty_db.take_stats();
    if recovered_rows != clean_rows {
        return Err(spinner_engine::Error::execution(
            "recovered run diverged from the fault-free run",
        ));
    }
    println!(
        "\nmid-loop fault at iteration 13, checkpoint_interval=5: \
         recovered in {elapsed:.2?}, rows identical to fault-free"
    );
    println!(
        "  rollbacks={} iterations_replayed={} checkpoints={} ckpt_bytes={} retries={}",
        stats.loop_rollbacks,
        stats.iterations_replayed,
        stats.checkpoints_taken,
        stats.checkpoint_bytes,
        stats.partition_retries + stats.step_retries,
    );
    println!("(checkpoints are Arc snapshots: O(partitions) per table, not row copies)");
    Ok(())
}

/// Spill-to-disk: run PageRank with the memory accountant's threshold at
/// off / 64 KiB / 1 byte. The 1-byte run forces every intermediate result
/// and checkpoint through the spill files; results must stay identical,
/// and the counters show how much state moved to disk and back.
fn spill() -> Result<()> {
    header("Spill — graceful degradation under memory pressure (PR, 25 iterations, dblp-like)");
    let sql = pagerank(ITERATIONS, false).cte;
    println!(
        "{:<12} {:>14} {:>9} {:>8} {:>14} {:>14} {:>14}",
        "threshold", "time", "overhead", "spills", "bytes_written", "bytes_read", "peak_tracked"
    );
    let mut baseline: Option<Duration> = None;
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for (label, threshold) in [
        ("off", None),
        ("64 KiB", Some(64 * 1024)),
        ("1 byte", Some(1)),
    ] {
        let config = EngineConfig {
            spill_threshold_bytes: threshold,
            ..EngineConfig::default()
        };
        let db = setup_db(BenchDataset::DblpLike, config, false);
        let t = time_query(&db, &sql)?;
        let rows = sorted_rows(&db.query(&sql)?);
        match &reference {
            None => reference = Some(rows),
            Some(expected) if *expected == rows => {}
            Some(_) => {
                return Err(spinner_engine::Error::execution(
                    "spilled run diverged from the in-memory run",
                ));
            }
        }
        let stats = db.take_stats();
        let overhead = match baseline {
            None => {
                baseline = Some(t);
                "—".to_string()
            }
            Some(base) => format!("{:+.1}%", -improvement(base, t)),
        };
        println!(
            "{:<12} {:>14.2?} {:>9} {:>8} {:>14} {:>14} {:>14}",
            label,
            t,
            overhead,
            stats.spill_events,
            stats.spill_bytes_written,
            stats.spill_bytes_read,
            stats.peak_tracked_bytes,
        );
    }
    println!(
        "(rows identical across all three; victims are picked coldest-first, \
         so spilled state here is dying temps that never need rehydration)"
    );
    Ok(())
}

/// Rows of a batch, sorted, for order-insensitive comparison.
fn sorted_rows(batch: &spinner_engine::Batch) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = batch.rows().iter().map(|r| r.to_vec()).collect();
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rows
}

/// Median of a sample series, in ms per loop iteration. The
/// bench-regression harness uses the median (not the min) so the
/// recorded number is a typical run, robust to one outlier either way.
fn median_ms_per_iteration(mut times: Vec<f64>, iterations: u64) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2] / iterations as f64
}

/// Bench-regression harness (PR 5): the fig8 (FF/PR) and fig9
/// (PR-VS/SSSP-VS) workloads in smoke mode — dblp-like dataset, 10
/// iterations, median of 5 — with parallel partitions on in both arms,
/// comparing the persistent worker pool against the spawn-per-operator
/// fallback. The series is written to `BENCH_5.json` for the CI artifact
/// upload, so a regression in pool dispatch or the join cache shows up
/// as a diff between uploads.
fn bench() -> Result<()> {
    const SMOKE_ITERATIONS: u64 = 10;
    header("Bench — worker pool vs spawn-per-operator (smoke, 10 iterations, dblp-like)");
    let pool_on = || {
        EngineConfig::default()
            .with_partitions(8)
            .with_parallel_partitions(true)
    };
    let pool_off = || pool_on().with_worker_pool(false);
    let workloads = [
        ("fig8", "FF", ff(SMOKE_ITERATIONS, 10).cte, false),
        ("fig8", "PR", pagerank(SMOKE_ITERATIONS, false).cte, false),
        ("fig9", "PR-VS", pagerank(SMOKE_ITERATIONS, true).cte, true),
        ("fig9", "SSSP-VS", sssp(SMOKE_ITERATIONS, 1, true).cte, true),
    ];
    println!(
        "{:<6} {:<10} {:>16} {:>16} {:>9}",
        "figure", "query", "pool-off ms/it", "pool-on ms/it", "gain"
    );
    let mut entries = Vec::new();
    for (figure, qname, sql, with_vs) in workloads {
        let off_db = setup_db(BenchDataset::DblpLike, pool_off(), with_vs);
        let on_db = setup_db(BenchDataset::DblpLike, pool_on(), with_vs);
        // One unmeasured warmup per arm, then interleaved samples so
        // machine drift (thermal, scheduler) lands on both arms equally
        // instead of biasing whichever ran second.
        let mut off_times = Vec::new();
        let mut on_times = Vec::new();
        for sample in -1..5i32 {
            for (db, times) in [(&off_db, &mut off_times), (&on_db, &mut on_times)] {
                let t = Instant::now();
                db.query(&sql)?;
                if sample >= 0 {
                    times.push(t.elapsed().as_secs_f64() * 1000.0);
                }
            }
        }
        let off = median_ms_per_iteration(off_times, SMOKE_ITERATIONS);
        let on = median_ms_per_iteration(on_times, SMOKE_ITERATIONS);
        let on_stats = on_db.take_stats();
        if on_stats.threads_spawned != 0 {
            return Err(spinner_engine::Error::execution(
                "pool-on run spawned mid-loop threads",
            ));
        }
        println!(
            "{:<6} {:<10} {:>16.3} {:>16.3} {:>8.1}%",
            figure,
            qname,
            off,
            on,
            100.0 * (off - on) / off,
        );
        entries.push(format!(
            "    {{\"figure\": \"{figure}\", \"query\": \"{qname}\", \
             \"pool_off_ms_per_iteration\": {off:.4}, \
             \"pool_on_ms_per_iteration\": {on:.4}, \
             \"pool_tasks\": {}, \"join_builds_reused\": {}}}",
            on_stats.pool_tasks, on_stats.join_builds_reused,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"pool_smoke\",\n  \"dataset\": \"dblp-like\",\n  \
         \"iterations\": {SMOKE_ITERATIONS},\n  \"samples\": 5,\n  \
         \"statistic\": \"median_ms_per_iteration\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    std::fs::write("BENCH_5.json", &json)
        .map_err(|e| spinner_engine::Error::execution(format!("writing BENCH_5.json: {e}")))?;
    println!("\nwrote BENCH_5.json");
    Ok(())
}

/// One arm of a convergence run: the per-iteration series plus the mode
/// the executor actually ran the loop in.
struct ConvergenceArm {
    mode: String,
    /// `(iteration, delta_rows, elapsed_ms)` per loop round.
    series: Vec<(u64, u64, f64)>,
}

fn convergence_arm(db: &Database, sql: &str) -> Result<ConvergenceArm> {
    let profile = db.explain_analyze(sql)?;
    let loops = profile.loops();
    let Some(loop_node) = loops.first() else {
        return Err(spinner_engine::Error::execution("no loop in profile"));
    };
    let mode = loop_node
        .iteration_mode
        .as_ref()
        .map(|m| m.mode().to_string())
        .unwrap_or_else(|| "full".to_string());
    let series = loop_node
        .iterations
        .iter()
        .map(|it| (it.iteration, it.delta_rows, it.elapsed_us as f64 / 1000.0))
        .collect();
    Ok(ConvergenceArm { mode, series })
}

/// Convergence curves with semi-naive delta iteration on and off: one
/// `EXPLAIN ANALYZE` run per arm yields per-iteration delta rows and wall
/// time. With semi-naive on, the eligible workloads (CC, accumulator
/// SSSP) must get cheaper as the delta shrinks — the binary *fails* if
/// the SSSP loop's late iterations are not >=5x cheaper than iteration 1.
/// PageRank rides along as the designed fallback: its SUM aggregate is
/// not a monotone accumulator, so both arms report `mode=full`. Writes
/// the whole series to `CONVERGENCE_7.json` for the CI artifact upload.
fn convergence() -> Result<()> {
    const SSSP_SPEEDUP_GATE: f64 = 5.0;
    header("Convergence — per-iteration cost, semi-naive vs full recompute (dblp-like)");
    let workloads: [(&str, String, bool); 3] = [
        // The showcase: accumulator-form SSSP, delta-terminated, eligible
        // for the rewrite. Frontier shrinks every round.
        ("SSSP", sssp_convergent(1, None).cte, false),
        // Min-label propagation, also eligible, symmetric graph.
        ("CC", connected_components(None).cte, true),
        // The designed fallback (SUM is not a monotone accumulator).
        ("PR", pagerank(ITERATIONS, false).cte, false),
    ];
    let mut json_entries = Vec::new();
    let mut sssp_gate: Option<(f64, f64)> = None;
    for (name, sql, symmetric) in workloads {
        let mut arms = Vec::new();
        for semi_naive in [false, true] {
            let db = if symmetric {
                // CC needs a symmetric edge table (min-label propagation
                // along undirected components); same dblp-like scale.
                let db = Database::new(EngineConfig::default().with_semi_naive(semi_naive))?;
                let schema = spinner_engine::Schema::new(vec![
                    spinner_engine::Field::new("src", spinner_engine::DataType::Int),
                    spinner_engine::Field::new("dst", spinner_engine::DataType::Int),
                    spinner_engine::Field::new("weight", spinner_engine::DataType::Float),
                ]);
                let rows = BenchDataset::DblpLike
                    .spec()
                    .generate_symmetric_components(2);
                db.create_table_from_rows("edges", schema, rows, None, Some(1))?;
                db
            } else {
                setup_db(
                    BenchDataset::DblpLike,
                    EngineConfig::default().with_semi_naive(semi_naive),
                    false,
                )
            };
            arms.push(convergence_arm(&db, &sql)?);
        }
        let [full, sn] = <[ConvergenceArm; 2]>::try_from(arms)
            .map_err(|_| spinner_engine::Error::execution("missing convergence arm"))?;
        println!(
            "\n{name}: full mode={} ({} iterations), semi-naive mode={} ({} iterations)",
            full.mode,
            full.series.len(),
            sn.mode,
            sn.series.len(),
        );
        println!(
            "{:>5} {:>13} {:>10} {:>13} {:>10}",
            "iter", "full delta", "full ms", "sn delta", "sn ms"
        );
        for i in 0..full.series.len().max(sn.series.len()) {
            let f = full.series.get(i);
            let s = sn.series.get(i);
            println!(
                "{:>5} {:>13} {:>10} {:>13} {:>10}",
                i + 1,
                f.map(|x| x.1.to_string()).unwrap_or_default(),
                f.map(|x| format!("{:.2}", x.2)).unwrap_or_default(),
                s.map(|x| x.1.to_string()).unwrap_or_default(),
                s.map(|x| format!("{:.2}", x.2)).unwrap_or_default(),
            );
        }
        if name == "SSSP" {
            if sn.mode != "semi_naive" {
                return Err(spinner_engine::Error::execution(
                    "accumulator SSSP did not run semi-naive",
                ));
            }
            let first = sn.series.first().map(|x| x.2).unwrap_or(0.0);
            // Minimum of the last three rounds: robust to one slow
            // sample, still a genuinely late iteration.
            let late = sn
                .series
                .iter()
                .rev()
                .take(3)
                .map(|x| x.2)
                .fold(f64::INFINITY, f64::min);
            sssp_gate = Some((first, late));
        }
        for arm in [&full, &sn] {
            let series = arm
                .series
                .iter()
                .map(|(it, delta, ms)| {
                    format!("{{\"iteration\": {it}, \"delta_rows\": {delta}, \"ms\": {ms:.3}}}")
                })
                .collect::<Vec<_>>()
                .join(", ");
            json_entries.push(format!(
                "    {{\"workload\": \"{name}\", \"mode\": \"{}\", \"series\": [{series}]}}",
                arm.mode,
            ));
        }
    }
    let (first, late) = sssp_gate
        .ok_or_else(|| spinner_engine::Error::execution("SSSP workload missing from run"))?;
    let speedup = first / late.max(1e-9);
    println!(
        "\nSSSP semi-naive: iteration 1 = {first:.2} ms, late = {late:.2} ms \
         ({speedup:.1}x cheaper; gate >= {SSSP_SPEEDUP_GATE:.0}x)"
    );
    let json = format!(
        "{{\n  \"artifact\": \"convergence\",\n  \"dataset\": \"dblp-like\",\n  \
         \"sssp_iter1_ms\": {first:.3},\n  \"sssp_late_ms\": {late:.3},\n  \
         \"sssp_late_speedup\": {speedup:.2},\n  \"gate_min_speedup\": {SSSP_SPEEDUP_GATE},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        json_entries.join(",\n"),
    );
    std::fs::write("CONVERGENCE_7.json", &json).map_err(|e| {
        spinner_engine::Error::execution(format!("writing CONVERGENCE_7.json: {e}"))
    })?;
    println!("wrote CONVERGENCE_7.json");
    if speedup < SSSP_SPEEDUP_GATE {
        return Err(spinner_engine::Error::execution(format!(
            "semi-naive SSSP late iterations only {speedup:.1}x cheaper than \
             iteration 1 (gate: {SSSP_SPEEDUP_GATE:.0}x)"
        )));
    }
    Ok(())
}

/// The PR-10 workload suite, benchmarked end-to-end: each workload runs
/// once under `EXPLAIN ANALYZE` for the per-iteration series and the
/// iteration mode, once plainly for the result rows, then passes through
/// its convergence gate — k-means centroids must land inside their
/// ground-truth clusters, label propagation must reach the exact oracle
/// fixpoint in semi-naive mode, triangle rank must match the
/// multiplicity-aware counting oracle, and logistic regression must
/// classify ≥95% of its training set. Any failed gate fails the binary
/// (and CI). Writes `WORKLOADS_10.json`.
fn workloads() -> Result<()> {
    use spinner_common::rows_approx_eq;
    use spinner_datagen::{
        load_edges_into, load_features_into, load_labeled_graph_into, load_points_into, oracle,
        FeatureSpec, GraphSpec, LabeledGraphSpec, PointsSpec,
    };
    use spinner_procedural::{
        kmeans_cte, label_propagation_cte, logistic_regression_cte, triangle_rank_cte,
    };

    header("Workloads — PR-10 iterative ML/graph suite");
    let mut entries: Vec<String> = Vec::new();
    let mut report =
        |name: &str, arm: &ConvergenceArm, total_rows: usize, gate: &str| -> (u64, f64) {
            let iters = arm.series.len() as u64;
            let total_ms: f64 = arm.series.iter().map(|x| x.2).sum();
            let ms_per_iter = total_ms / iters.max(1) as f64;
            println!(
                "{name:>14}: mode={:<10} iterations={iters:<3} total={total_ms:>8.2} ms \
             ({ms_per_iter:.2} ms/iter, {total_rows} rows) gate: {gate}",
                arm.mode,
            );
            entries.push(format!(
                "    {{\"workload\": \"{name}\", \"mode\": \"{}\", \"iterations\": {iters}, \
             \"total_ms\": {total_ms:.3}, \"ms_per_iteration\": {ms_per_iter:.3}, \
             \"rows\": {total_rows}, \"gate\": \"{gate}\"}}",
                arm.mode,
            ));
            (iters, ms_per_iter)
        };
    let gate_err = |msg: String| spinner_engine::Error::execution(msg);

    // --- k-means: aggregate-heavy (ARG_MIN + AVG) body, mode=full. ---
    let pspec = PointsSpec {
        points: 2_000,
        clusters: 4,
        seed: 11,
        spread: 8.0,
    };
    const KMEANS_ITERS: u64 = 15;
    let db = Database::default();
    load_points_into(&db, "points", &pspec)?;
    let sql = kmeans_cte(pspec.clusters, KMEANS_ITERS);
    let arm = convergence_arm(&db, &sql)?;
    let rows = db.query(&sql)?;
    if arm.mode != "full" {
        return Err(gate_err(format!(
            "k-means ran mode={}, expected full",
            arm.mode
        )));
    }
    let centers = pspec.centers();
    for row in rows.rows() {
        let cid = row[0].as_i64()? as usize;
        let (gx, gy) = centers[cid - 1];
        let (cx, cy) = (row[1].as_f64()?, row[2].as_f64()?);
        if (cx - gx).abs() > pspec.spread || (cy - gy).abs() > pspec.spread {
            return Err(gate_err(format!(
                "k-means centroid {cid} at ({cx:.2}, {cy:.2}) did not converge \
                 into its cluster around ({gx}, {gy})"
            )));
        }
    }
    report(
        "kmeans",
        &arm,
        rows.len(),
        "centroids inside ground-truth clusters",
    );

    // --- label propagation: monotone MIN body, mode=semi_naive. ---
    let lspec = LabeledGraphSpec {
        graph: GraphSpec {
            nodes: 1_000,
            edges: 3_000,
            seed: 21,
            max_weight: 5,
        },
        components: 3,
        seed_fraction: 0.2,
    };
    let db = Database::default();
    load_labeled_graph_into(&db, "edges", "labels", &lspec)?;
    let sql = label_propagation_cte();
    let arm = convergence_arm(&db, &sql)?;
    let rows = db.query(&sql)?;
    if arm.mode != "semi_naive" {
        return Err(gate_err(format!(
            "label propagation ran mode={}, expected semi_naive",
            arm.mode
        )));
    }
    let want = oracle::min_label_propagation(&lspec.edges(), &lspec.labels());
    for row in rows.rows() {
        let (node, label) = (row[0].as_i64()?, row[1].as_i64()?);
        if want[&node] != label {
            return Err(gate_err(format!(
                "label propagation: node {node} settled on {label}, oracle says {}",
                want[&node]
            )));
        }
    }
    report(
        "labelprop",
        &arm,
        rows.len(),
        "exact oracle fixpoint, semi-naive mode",
    );

    // --- triangle rank: three-way self-join invariant, mode=full. ---
    let gspec = GraphSpec {
        nodes: 400,
        edges: 1_600,
        seed: 31,
        max_weight: 5,
    };
    const TRI_ITERS: u64 = 10;
    let db = Database::default();
    load_edges_into(&db, "edges", &gspec)?;
    let sql = triangle_rank_cte(TRI_ITERS);
    let arm = convergence_arm(&db, &sql)?;
    let rows = db.query(&sql)?;
    if arm.mode != "full" {
        return Err(gate_err(format!(
            "triangle rank ran mode={}, expected full",
            arm.mode
        )));
    }
    let want: Vec<spinner_common::Row> = oracle::triangle_rank(&gspec.generate(), TRI_ITERS)
        .into_iter()
        .map(|(node, rank)| spinner_common::row_of([Value::Int(node), Value::Float(rank)]))
        .collect();
    rows_approx_eq(rows.rows(), &want, spinner_common::DEFAULT_TOLERANCE)
        .map_err(|msg| gate_err(format!("triangle rank diverged from oracle: {msg}")))?;
    report(
        "triangle_rank",
        &arm,
        rows.len(),
        "oracle match within 1e-6",
    );

    // --- logistic regression: wide float projections, mode=full. ---
    let fspec = FeatureSpec {
        rows: 2_000,
        seed: 17,
    };
    const LOGREG_ITERS: u64 = 25;
    const LOGREG_ACCURACY_GATE: f64 = 0.95;
    let db = Database::default();
    load_features_into(&db, "observations", &fspec)?;
    let sql = logistic_regression_cte(LOGREG_ITERS, 0.1);
    let arm = convergence_arm(&db, &sql)?;
    let rows = db.query(&sql)?;
    if arm.mode != "full" {
        return Err(gate_err(format!(
            "logistic regression ran mode={}, expected full",
            arm.mode
        )));
    }
    let weights = rows
        .rows()
        .first()
        .ok_or_else(|| gate_err("logistic regression returned no weights".into()))?;
    let (w1, w2, b) = (
        weights[0].as_f64()?,
        weights[1].as_f64()?,
        weights[2].as_f64()?,
    );
    let data = fspec.generate();
    let correct = data
        .iter()
        .filter(|r| {
            let (x1, x2, y) = (
                r[1].as_f64().unwrap(),
                r[2].as_f64().unwrap(),
                r[3].as_f64().unwrap(),
            );
            let s = 1.0 / (1.0 + (0.0 - (w1 * x1 + w2 * x2 + b)).exp());
            (s >= 0.5) == (y >= 0.5)
        })
        .count();
    let accuracy = correct as f64 / data.len() as f64;
    if accuracy < LOGREG_ACCURACY_GATE {
        return Err(gate_err(format!(
            "logistic regression accuracy {accuracy:.3} below gate {LOGREG_ACCURACY_GATE}"
        )));
    }
    report(
        "logreg",
        &arm,
        rows.len(),
        &format!("training accuracy {accuracy:.3} >= {LOGREG_ACCURACY_GATE}"),
    );

    let json = format!(
        "{{\n  \"artifact\": \"workloads\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    std::fs::write("WORKLOADS_10.json", &json)
        .map_err(|e| gate_err(format!("writing WORKLOADS_10.json: {e}")))?;
    println!("\nwrote WORKLOADS_10.json");
    Ok(())
}

/// Percentile of a sorted latency series (nearest-rank).
fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Multi-session overload artifact: N mixed clients against a live TCP
/// server with a 4-slot admission controller. Proves the robustness
/// contract end to end — a deliberately runaway iterative statement is
/// deadline-bounded (or shed), a killed connection releases its slot,
/// every well-behaved client completes correctly, resident intermediate
/// state stays bounded by the accountant, and the final admission
/// snapshot shows zero leaked slots. Writes `CONCURRENCY_6.json`; any
/// violated gate is a hard error (nonzero exit) for CI.
/// What each concurrency worker hands back: per-statement latencies in
/// milliseconds plus how many typed shed replies it absorbed and retried.
type ClientOutcome = Result<(Vec<f64>, u64)>;

fn concurrency() -> Result<()> {
    const POINT_CLIENTS: usize = 6;
    const POINT_QUERIES: usize = 40;
    const LOOP_CLIENTS: usize = 2;
    const LOOP_QUERIES: usize = 4;
    const SPILL_THRESHOLD: u64 = 32 << 20;
    header("Concurrency — mixed multi-session workload with admission control (TCP server)");

    let config = EngineConfig::default()
        .with_partitions(4)
        .with_max_concurrent_queries(4)
        .with_admission_queue_limit(8)
        .with_admission_timeout_ms(5_000)
        .with_spill_threshold_bytes(SPILL_THRESHOLD)
        // Lift the loop safety bound: the runaway must be stopped by
        // its *deadline*, not by tripping the iteration limit.
        .with_max_iterations(1_000_000_000);
    let db = Arc::new(Database::new(config)?);
    let spec = spinner_datagen::GraphSpec {
        nodes: 400,
        edges: 2_000,
        seed: 61,
        max_weight: 10,
    };
    spinner_datagen::load_edges_into(&db, "edges", &spec)?;
    let baseline_bytes = db.resident_tracked_bytes();
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0")?;
    let addr = server.local_addr();

    // Peak-resident monitor, sampled while the workload runs.
    let peak_resident = Arc::new(AtomicU64::new(0));
    let monitor_done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let db = Arc::clone(&db);
        let peak = Arc::clone(&peak_resident);
        let done = Arc::clone(&monitor_done);
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                peak.fetch_max(db.resident_tracked_bytes(), Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let io_err = |e: std::io::Error| spinner_engine::Error::Io(e.to_string());
    let loop_sql = "WITH ITERATIVE t (k, v) AS (
             SELECT DISTINCT src, 0 FROM edges
         ITERATE SELECT k, v + 1 FROM t
         UNTIL 60 ITERATIONS) SELECT COUNT(*) FROM t";
    let t0 = Instant::now();
    let mut workers: Vec<std::thread::JoinHandle<ClientOutcome>> = Vec::new();

    // Point-query clients: OLTP-ish probes that must all complete even
    // while iterative loops hold most of the slots. A shed reply is a
    // legal answer (typed back-pressure) and is retried.
    for c in 0..POINT_CLIENTS {
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).map_err(io_err)?;
            let mut latencies = Vec::with_capacity(POINT_QUERIES);
            let mut sheds = 0u64;
            for q in 0..POINT_QUERIES {
                let sql = format!(
                    "SELECT COUNT(*) FROM edges WHERE src > {}",
                    (c * 7 + q) % 300
                );
                loop {
                    let t = Instant::now();
                    match client.query(&sql).map_err(io_err)? {
                        Reply::Error { code, message } => {
                            if code == "overloaded" || code == "admission_timeout" {
                                sheds += 1;
                                std::thread::sleep(Duration::from_millis(20));
                                continue;
                            }
                            return Err(spinner_engine::Error::execution(format!(
                                "point client {c}: [{code}] {message}"
                            )));
                        }
                        reply => {
                            if reply.scalar_i64().is_none() {
                                return Err(spinner_engine::Error::execution(format!(
                                    "point client {c}: non-scalar reply"
                                )));
                            }
                            latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                            break;
                        }
                    }
                }
            }
            client.close().map_err(io_err)?;
            Ok((latencies, sheds))
        }));
    }

    // Iterative clients: well-behaved loop workloads sharing the slots.
    for c in 0..LOOP_CLIENTS {
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).map_err(io_err)?;
            let mut latencies = Vec::with_capacity(LOOP_QUERIES);
            let mut sheds = 0u64;
            for _ in 0..LOOP_QUERIES {
                loop {
                    let t = Instant::now();
                    match client.query(loop_sql).map_err(io_err)? {
                        Reply::Error { code, message } => {
                            if code == "overloaded" || code == "admission_timeout" {
                                sheds += 1;
                                std::thread::sleep(Duration::from_millis(20));
                                continue;
                            }
                            return Err(spinner_engine::Error::execution(format!(
                                "loop client {c}: [{code}] {message}"
                            )));
                        }
                        reply => {
                            if reply.scalar_i64() != Some(400) {
                                return Err(spinner_engine::Error::execution(format!(
                                    "loop client {c}: wrong answer {reply:?}"
                                )));
                            }
                            latencies.push(t.elapsed().as_secs_f64() * 1000.0);
                            break;
                        }
                    }
                }
            }
            client.close().map_err(io_err)?;
            Ok((latencies, sheds))
        }));
    }

    // The runaway: an effectively unbounded loop, deadline-bounded by
    // its own session override. Its slot must come back on failure.
    let runaway = std::thread::spawn(move || -> std::io::Result<String> {
        let mut client = Client::connect(addr)?;
        client.query("SET SESSION TIMEOUT_MS = 1500")?;
        let reply = client.query(
            "WITH ITERATIVE t (k, v) AS (SELECT DISTINCT src, 0 FROM edges \
             ITERATE SELECT k, v + 1 FROM t UNTIL 900000000 ITERATIONS) \
             SELECT COUNT(*) FROM t",
        )?;
        client.close()?;
        Ok(match reply {
            Reply::Error { code, .. } => code,
            _ => "completed".to_string(),
        })
    });

    // The vanishing client: starts a long statement, then the process
    // "crashes" (socket slammed shut) mid-query. The server's watcher
    // must cancel the orphan and release its admission slot.
    let vanisher = std::thread::spawn(move || -> std::io::Result<()> {
        let mut client = Client::connect(addr)?;
        client.query("SET SESSION TIMEOUT_MS = 30000")?;
        client.fire(
            "WITH ITERATIVE t (k, v) AS (SELECT DISTINCT src, 0 FROM edges \
             ITERATE SELECT k, v + 1 FROM t UNTIL 900000000 ITERATIONS) \
             SELECT COUNT(*) FROM t",
        )?;
        std::thread::sleep(Duration::from_millis(400));
        client.kill();
        Ok(())
    });

    let mut point_latencies = Vec::new();
    let mut loop_latencies = Vec::new();
    let mut sheds_retried = 0u64;
    for (i, handle) in workers.into_iter().enumerate() {
        let (latencies, sheds) = handle
            .join()
            .map_err(|_| spinner_engine::Error::execution("client thread panicked"))??;
        if i < POINT_CLIENTS {
            point_latencies.extend(latencies);
        } else {
            loop_latencies.extend(latencies);
        }
        sheds_retried += sheds;
    }
    let runaway_outcome = runaway
        .join()
        .map_err(|_| spinner_engine::Error::execution("runaway thread panicked"))?
        .map_err(io_err)?;
    vanisher
        .join()
        .map_err(|_| spinner_engine::Error::execution("vanisher thread panicked"))?
        .map_err(io_err)?;
    let elapsed = t0.elapsed();

    // ---- Gates --------------------------------------------------------
    // 1. The runaway was shed or deadline-bounded, never "completed".
    let runaway_bounded = matches!(
        runaway_outcome.as_str(),
        "timeout" | "overloaded" | "admission_timeout" | "cancelled"
    );
    // 2. No admission slot leaked: after the vanisher's orphan is
    //    cancelled, the controller drains to zero active and queued.
    let ctrl = db.admission().expect("admission controller configured");
    let drained = ctrl.wait_idle(Duration::from_secs(15));
    let snap = ctrl.snapshot();
    let no_slot_leak = drained && snap.active == 0 && snap.queued == 0;
    monitor_done.store(true, Ordering::SeqCst);
    let _ = monitor.join();
    // 3. Resident intermediate state stayed bounded by the accountant
    //    (spill keeps it at/under the high-water mark; transient
    //    overshoot of one region while a spill is in flight is legal).
    let peak = peak_resident.load(Ordering::SeqCst);
    let memory_bounded = peak <= 2 * SPILL_THRESHOLD;
    // 4. And it all returns to baseline once the workload is gone.
    let resident_after = db.resident_tracked_bytes();
    let no_memory_leak = resident_after <= baseline_bytes && db.temp_result_count() == 0;

    let ok_queries = point_latencies.len() + loop_latencies.len();
    point_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    loop_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let throughput = ok_queries as f64 / elapsed.as_secs_f64();
    println!(
        "{} clients ({} point, {} loop, 1 runaway, 1 kill-connection), {} queries ok",
        POINT_CLIENTS + LOOP_CLIENTS + 2,
        POINT_CLIENTS,
        LOOP_CLIENTS,
        ok_queries,
    );
    println!(
        "throughput {:>8.1} q/s   point p50 {:>7.2} ms   point p99 {:>7.2} ms   \
         loop p99 {:>8.2} ms",
        throughput,
        percentile_ms(&point_latencies, 0.50),
        percentile_ms(&point_latencies, 0.99),
        percentile_ms(&loop_latencies, 0.99),
    );
    println!(
        "runaway: {runaway_outcome}   sheds retried: {sheds_retried}   \
         admission: admitted={} shed={} peak_queue={}",
        snap.admitted_total,
        snap.shed_total(),
        snap.peak_queue_depth,
    );
    println!(
        "memory: peak resident {} B (cap {} B)   after drain {} B (baseline {} B)",
        peak, SPILL_THRESHOLD, resident_after, baseline_bytes,
    );

    let json = format!(
        "{{\n  \"artifact\": \"concurrency\",\n  \"clients\": {{\"point\": {POINT_CLIENTS}, \
         \"loop\": {LOOP_CLIENTS}, \"runaway\": 1, \"kill_connection\": 1}},\n  \
         \"queries_ok\": {ok_queries},\n  \"throughput_qps\": {throughput:.2},\n  \
         \"point_p50_ms\": {:.3},\n  \"point_p99_ms\": {:.3},\n  \"loop_p99_ms\": {:.3},\n  \
         \"runaway_outcome\": \"{runaway_outcome}\",\n  \"sheds_retried\": {sheds_retried},\n  \
         \"admission\": {{\"admitted_total\": {}, \"shed_total\": {}, \"peak_queue_depth\": {}, \
         \"active_after\": {}, \"queued_after\": {}}},\n  \
         \"memory\": {{\"cap_bytes\": {SPILL_THRESHOLD}, \"peak_resident_bytes\": {peak}, \
         \"resident_after_bytes\": {resident_after}}},\n  \
         \"gates\": {{\"runaway_bounded\": {runaway_bounded}, \"no_slot_leak\": {no_slot_leak}, \
         \"memory_bounded\": {memory_bounded}, \"no_memory_leak\": {no_memory_leak}}}\n}}\n",
        percentile_ms(&point_latencies, 0.50),
        percentile_ms(&point_latencies, 0.99),
        percentile_ms(&loop_latencies, 0.99),
        snap.admitted_total,
        snap.shed_total(),
        snap.peak_queue_depth,
        snap.active,
        snap.queued,
    );
    std::fs::write("CONCURRENCY_6.json", &json).map_err(|e| {
        spinner_engine::Error::execution(format!("writing CONCURRENCY_6.json: {e}"))
    })?;
    println!("\nwrote CONCURRENCY_6.json");
    server.shutdown(Duration::from_secs(10));

    if !(runaway_bounded && no_slot_leak && memory_bounded && no_memory_leak) {
        return Err(spinner_engine::Error::execution(format!(
            "concurrency gates violated: runaway_bounded={runaway_bounded} \
             no_slot_leak={no_slot_leak} memory_bounded={memory_bounded} \
             no_memory_leak={no_memory_leak}"
        )));
    }
    Ok(())
}

/// Durability artifact (PR 8): the disk is a failure domain.
///
/// Part 1 is a corruption-detection sweep at the codec level: a spilled
/// checkpoint file is mutated one byte at a time (plus truncations, the
/// empty file and the vanished file) and EVERY mutation must surface as
/// the typed `StorageCorrupt` — the gate is a 100% detection rate, no
/// silent decode ever.
///
/// Part 2 prices the crash-consistency protocol (temp file → fsync →
/// atomic rename → fsync dir, epoch manifest) on the fig8 PR workload
/// with checkpoints every 5 iterations: `durable_spill` off vs on,
/// interleaved min-of-5. The gate caps the fsync overhead at 15%.
/// Writes `DURABILITY_8.json`; a violated gate is a nonzero exit.
fn durability() -> Result<()> {
    use spinner_common::MemoryMetrics;
    use spinner_storage::{LoopCheckpoint, Partitioned, SpillManager};

    const MAX_OVERHEAD_PCT: f64 = 15.0;
    header("Durability — corruption detection and fsync overhead (PR, 25 iterations, dblp-like)");

    // ---- Part 1: detection sweep -------------------------------------
    let dir = std::env::temp_dir().join(format!("spinner_repro_dur_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)
        .map_err(|e| spinner_engine::Error::execution(format!("scratch dir: {e}")))?;
    let manager = SpillManager::new(dir.clone(), Arc::new(MemoryMetrics::new()), None);
    let schema = spinner_engine::Schema::new(vec![
        spinner_engine::Field::new("k", spinner_engine::DataType::Int),
        spinner_engine::Field::new("rank", spinner_engine::DataType::Float),
        spinner_engine::Field::new("label", spinner_engine::DataType::Text),
    ]);
    let rows: Vec<spinner_engine::Row> = (0..32)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Float(i as f64 * 0.125),
                Value::Text(format!("node {i}")),
            ]
            .into()
        })
        .collect();
    let ckpt = LoopCheckpoint {
        iteration: 13,
        cumulative_updates: 1337,
        tables: vec![(
            "__cte_pr".into(),
            Partitioned::from_rows(Arc::new(schema), rows, Some(0), 4),
        )],
    };
    let handle = manager.write_checkpoint("pr", &ckpt)?;
    let original = std::fs::read(handle.path())
        .map_err(|e| spinner_engine::Error::execution(format!("reading spill file: {e}")))?;
    let mut mutations = 0u64;
    let mut detected = 0u64;
    let mut probe = |bytes: &[u8]| -> Result<()> {
        std::fs::write(handle.path(), bytes)
            .map_err(|e| spinner_engine::Error::execution(format!("mutating spill file: {e}")))?;
        mutations += 1;
        match manager.read_checkpoint(&handle, "pr") {
            Err(spinner_engine::Error::StorageCorrupt { .. }) => detected += 1,
            Ok(_) => {}
            Err(other) => {
                return Err(spinner_engine::Error::execution(format!(
                    "mutation surfaced untyped: {other:?}"
                )))
            }
        }
        Ok(())
    };
    for i in 0..original.len() {
        let mut mutated = original.clone();
        mutated[i] ^= 0x01;
        probe(&mutated)?;
    }
    for cut in [0, 1, original.len() / 2, original.len() - 1] {
        probe(&original[..cut])?;
    }
    std::fs::remove_file(handle.path())
        .map_err(|e| spinner_engine::Error::execution(format!("removing spill file: {e}")))?;
    mutations += 1;
    if matches!(
        manager.read_checkpoint(&handle, "pr"),
        Err(spinner_engine::Error::StorageCorrupt { .. })
    ) {
        detected += 1;
    }
    std::fs::write(handle.path(), &original)
        .map_err(|e| spinner_engine::Error::execution(format!("restoring spill file: {e}")))?;
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
    let detection_rate = detected as f64 / mutations as f64;
    println!(
        "detection sweep: {} byte flips + truncations + missing file over a {}-byte \
         checkpoint, {detected}/{mutations} detected ({:.1}%)",
        original.len(),
        original.len(),
        detection_rate * 100.0,
    );

    // ---- Part 2: fsync overhead on the fig8 PR workload ---------------
    // A moderate threshold so only the big, cold regions (checkpoints)
    // spill — the realistic durable-write traffic, not the 1-byte storm.
    let spill_config = |durable: bool| {
        EngineConfig::default()
            .with_spill_threshold_bytes(1 << 20)
            .with_checkpoint_interval(5)
            .with_durable_spill(durable)
    };
    let sql = pagerank(ITERATIONS, false).cte;
    let relaxed_db = setup_db(BenchDataset::DblpLike, spill_config(false), false);
    let durable_db = setup_db(BenchDataset::DblpLike, spill_config(true), false);
    let mut relaxed_times = Vec::new();
    let mut durable_times = Vec::new();
    // One unmeasured warmup per arm, then interleaved samples so machine
    // drift lands on both arms equally.
    for sample in -1..5i32 {
        for (db, times) in [
            (&relaxed_db, &mut relaxed_times),
            (&durable_db, &mut durable_times),
        ] {
            let t = Instant::now();
            db.query(&sql)?;
            if sample >= 0 {
                times.push(t.elapsed().as_secs_f64() * 1000.0);
            }
        }
    }
    let min = |times: &[f64]| times.iter().copied().fold(f64::INFINITY, f64::min);
    let relaxed_ms = min(&relaxed_times);
    let durable_ms = min(&durable_times);
    let overhead_pct = 100.0 * (durable_ms - relaxed_ms) / relaxed_ms;
    let stats = durable_db.take_stats();
    println!(
        "fsync overhead: relaxed {relaxed_ms:.2} ms, durable {durable_ms:.2} ms \
         ({overhead_pct:+.1}%; gate <= {MAX_OVERHEAD_PCT:.0}%)"
    );
    println!(
        "  durable arm (last run): epochs={} verified={} corrupt_detected={} refsync={}",
        stats.durability_epochs,
        stats.durability_verified,
        stats.durability_corrupt,
        stats.durability_fsyncs,
    );

    let full_detection = detection_rate >= 1.0;
    let overhead_ok = overhead_pct <= MAX_OVERHEAD_PCT;
    let json = format!(
        "{{\n  \"artifact\": \"durability\",\n  \"dataset\": \"dblp-like\",\n  \
         \"iterations\": {ITERATIONS},\n  \
         \"detection\": {{\"file_bytes\": {}, \"mutations\": {mutations}, \
         \"detected\": {detected}, \"rate\": {detection_rate:.4}}},\n  \
         \"overhead\": {{\"relaxed_ms\": {relaxed_ms:.3}, \"durable_ms\": {durable_ms:.3}, \
         \"overhead_pct\": {overhead_pct:.2}, \"gate_max_pct\": {MAX_OVERHEAD_PCT}}},\n  \
         \"counters\": {{\"epochs\": {}, \"verified\": {}, \"corrupt_detected\": {}, \
         \"fsyncs\": {}}},\n  \
         \"gates\": {{\"full_detection\": {full_detection}, \"fsync_overhead_ok\": \
         {overhead_ok}}}\n}}\n",
        original.len(),
        stats.durability_epochs,
        stats.durability_verified,
        stats.durability_corrupt,
        stats.durability_fsyncs,
    );
    std::fs::write("DURABILITY_8.json", &json)
        .map_err(|e| spinner_engine::Error::execution(format!("writing DURABILITY_8.json: {e}")))?;
    println!("\nwrote DURABILITY_8.json");
    if !full_detection {
        return Err(spinner_engine::Error::execution(format!(
            "corruption detection below 100%: {detected}/{mutations}"
        )));
    }
    if !overhead_ok {
        return Err(spinner_engine::Error::execution(format!(
            "fsync overhead {overhead_pct:.1}% exceeds the {MAX_OVERHEAD_PCT:.0}% gate"
        )));
    }
    Ok(())
}

/// Crash-restart sweep against real `spinner-serve` subprocesses: for
/// each swept position a deterministic `--crash-at SITE:N` abort
/// (SIGKILL semantics — no unwinding, no destructors) kills the server
/// mid-statement, a second server over the same spill directory adopts
/// the dead engine's query journal and resumes the statement from its
/// newest durable checkpoint epoch, and a reconnecting client ATTACHes
/// by the stable handle it received before the crash. Hard gates: every
/// position's resumed rows are identical to an uninterrupted run, and
/// no position replays more than one checkpoint interval of iterations.
/// Writes `CRASH_9.json`; a violated gate is a nonzero exit. Not part
/// of `all` (subprocess-heavy).
fn crash() -> Result<()> {
    use spinner_server::ReconnectPolicy;
    use std::io::{BufRead, BufReader, Read as _, Seek, SeekFrom, Write as _};
    use std::path::{Path, PathBuf};
    use std::process::{Child, Command, Stdio};

    const CHECKPOINT_INTERVAL: u64 = 2;
    const ITERS: u64 = 10;
    header("Crash restart — SIGKILL sweep, journal adoption, row-identical resumption");

    let serve = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("spinner-serve")))
        .filter(|p| p.exists())
        .ok_or_else(|| {
            spinner_engine::Error::execution(
                "spinner-serve binary not found next to repro; build the workspace first",
            )
        })?;
    let workload = format!(
        "WITH ITERATIVE t (k, v) AS (
             SELECT src, 0 FROM edges
         ITERATE
             SELECT k, v + 1 FROM t
         UNTIL {ITERS} ITERATIONS)
         SELECT * FROM t"
    );

    struct Resumed {
        query_id: u64,
        adopted_epoch: u64,
        resumed_iteration: u64,
        replayed_iterations: u64,
        rows: u64,
    }

    struct Serve {
        child: Child,
        addr: String,
        resumed: Vec<Resumed>,
    }

    impl Drop for Serve {
        fn drop(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }

    fn err(what: &str, e: impl std::fmt::Display) -> spinner_engine::Error {
        spinner_engine::Error::execution(format!("{what}: {e}"))
    }

    fn field(line: &str, key: &str) -> u64 {
        line.split([' ', ':'])
            .filter_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    fn spawn(serve: &Path, dir: &Path, extra: &[&str]) -> Result<Serve> {
        let mut child = Command::new(serve)
            .arg("127.0.0.1:0")
            .args(["--spill-dir", dir.to_str().unwrap()])
            .arg("--resumable")
            .args(["--checkpoint-interval", "2"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| err("spawning spinner-serve", e))?;
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let mut resumed = Vec::new();
        let addr = loop {
            let line = match lines.next() {
                Some(Ok(line)) => line,
                _ => return Err(err("spinner-serve", "exited before the listening line")),
            };
            if let Some(rest) = line.strip_prefix("resumed query ") {
                let query_id = rest
                    .split(':')
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                resumed.push(Resumed {
                    query_id,
                    adopted_epoch: field(&line, "adopted_epoch"),
                    resumed_iteration: field(&line, "resumed_iteration"),
                    replayed_iterations: field(&line, "replayed_iterations"),
                    rows: field(&line, "rows"),
                });
            } else if let Some(rest) = line.strip_prefix("spinner-server listening on ") {
                break rest.split_whitespace().next().unwrap().to_string();
            }
        };
        std::thread::spawn(move || for _ in lines {});
        Ok(Serve {
            child,
            addr,
            resumed,
        })
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spinner_repro_crash_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn connect(addr: &str) -> Result<Client> {
        Client::connect_with_retry(
            addr,
            ReconnectPolicy {
                max_attempts: 20,
                base_delay_ms: 25,
                max_delay_ms: 500,
            },
        )
    }

    fn load_edges(client: &mut Client) -> Result<()> {
        for sql in [
            "CREATE TABLE edges (src INT, dst INT, weight FLOAT)",
            "INSERT INTO edges VALUES (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 5.0), \
             (4, 1, 1.0), (5, 2, 2.0), (6, 5, 0.5)",
        ] {
            let reply = client.query(sql).map_err(|e| err("loading edges", e))?;
            if let Reply::Error { code, message } = reply {
                return Err(err("loading edges", format!("[{code}] {message}")));
            }
        }
        Ok(())
    }

    fn sorted_rows(reply: &Reply) -> Option<Vec<Vec<Option<String>>>> {
        let mut rows = reply.rows()?.to_vec();
        rows.sort();
        Some(rows)
    }

    // Newest by the monotone sequence number embedded in
    // `spinner_spill_{pid}_{tag}_{n}_{label}.spn` — mtimes of
    // back-to-back checkpoints can collide.
    fn spill_seq(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("spinner_spill_")?;
        rest.split('_').nth(2)?.parse().ok()
    }

    fn corrupt_newest_checkpoint(dir: &Path) -> Result<()> {
        let newest = std::fs::read_dir(dir)
            .map_err(|e| err("scanning spill dir", e))?
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.contains("checkpoint") && name.ends_with(".spn")
            })
            .max_by_key(|e| spill_seq(&e.file_name().to_string_lossy()).unwrap_or(0))
            .ok_or_else(|| err("corrupting checkpoint", "no checkpoint file found"))?;
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(newest.path())
            .map_err(|e| err("opening checkpoint", e))?;
        let len = file
            .metadata()
            .map_err(|e| err("stat checkpoint", e))?
            .len();
        let off = len / 2;
        let mut byte = [0u8; 1];
        file.seek(SeekFrom::Start(off))
            .map_err(|e| err("seek", e))?;
        file.read_exact(&mut byte).map_err(|e| err("read", e))?;
        byte[0] ^= 0x40;
        file.seek(SeekFrom::Start(off))
            .map_err(|e| err("seek", e))?;
        file.write_all(&byte).map_err(|e| err("write", e))?;
        file.sync_all().map_err(|e| err("fsync", e))?;
        Ok(())
    }

    // Uninterrupted baseline.
    let expected = {
        let dir = scratch("baseline");
        let server = spawn(&serve, &dir, &[])?;
        let mut client = connect(&server.addr)?;
        load_edges(&mut client)?;
        let reply = client
            .query(&workload)
            .map_err(|e| err("baseline query", e))?;
        sorted_rows(&reply).ok_or_else(|| err("baseline", format!("unexpected reply {reply:?}")))?
    };

    let positions: [(&str, &str, bool); 5] = [
        ("mid_iteration", "loop_iteration:7", false),
        ("mid_checkpoint_write", "checkpoint:3", false),
        ("mid_spill_write", "spill_write:4", false),
        ("mid_manifest_commit", "manifest_commit:3", false),
        ("corrupt_newest_epoch", "loop_iteration:7", true),
    ];
    let mut records = Vec::new();
    let mut all_match = true;
    let mut all_within_interval = true;
    for (name, crash_at, corrupt) in positions {
        let dir = scratch(name);
        let server = spawn(&serve, &dir, &["--crash-at", crash_at])?;
        let mut client = connect(&server.addr)?;
        load_edges(&mut client)?;
        if client.query(&workload).is_ok() {
            return Err(err(name, "statement survived the injected crash"));
        }
        let handle = client
            .last_handle()
            .ok_or_else(|| err(name, "no stable handle before the crash"))?;
        {
            let mut server = server;
            let deadline = Instant::now() + Duration::from_secs(60);
            while server
                .child
                .try_wait()
                .map_err(|e| err("try_wait", e))?
                .is_none()
            {
                if Instant::now() > deadline {
                    return Err(err(name, "server did not crash within 60s"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        if corrupt {
            corrupt_newest_checkpoint(&dir)?;
        }
        let restarted = spawn(&serve, &dir, &[])?;
        if restarted.resumed.len() != 1 {
            return Err(err(
                name,
                format!(
                    "expected one resumed query, got {}",
                    restarted.resumed.len()
                ),
            ));
        }
        let summary = &restarted.resumed[0];
        if summary.query_id != handle {
            return Err(err(name, "handle changed across restart"));
        }
        let mut client = connect(&restarted.addr)?;
        let reply = client.attach(handle).map_err(|e| err(name, e))?;
        let rows =
            sorted_rows(&reply).ok_or_else(|| err(name, format!("attach returned {reply:?}")))?;
        let rows_match = rows == expected;
        let within = summary.replayed_iterations <= CHECKPOINT_INTERVAL;
        all_match &= rows_match;
        all_within_interval &= within;
        println!(
            "{name:>22} ({crash_at:>18}): adopted_epoch={} resumed_iteration={} \
             replayed_iterations={} rows={} rows_match={rows_match} within_interval={within}",
            summary.adopted_epoch,
            summary.resumed_iteration,
            summary.replayed_iterations,
            summary.rows,
        );
        records.push(format!(
            "    {{\"position\": \"{name}\", \"crash_at\": \"{crash_at}\", \
             \"corrupt_newest\": {corrupt}, \"adopted_epoch\": {}, \
             \"resumed_iteration\": {}, \"replayed_iterations\": {}, \"rows\": {}, \
             \"rows_match\": {rows_match}, \"within_interval\": {within}}}",
            summary.adopted_epoch,
            summary.resumed_iteration,
            summary.replayed_iterations,
            summary.rows,
        ));
    }

    let json = format!(
        "{{\n  \"artifact\": \"crash\",\n  \"iterations\": {ITERS},\n  \
         \"checkpoint_interval\": {CHECKPOINT_INTERVAL},\n  \"positions\": [\n{}\n  ],\n  \
         \"gates\": {{\"all_rows_match\": {all_match}, \
         \"replay_within_interval\": {all_within_interval}}}\n}}\n",
        records.join(",\n"),
    );
    std::fs::write("CRASH_9.json", &json).map_err(|e| err("writing CRASH_9.json", e))?;
    println!("\nwrote CRASH_9.json");
    if !all_match {
        return Err(spinner_engine::Error::execution(
            "a crash position resumed with rows differing from the uninterrupted run",
        ));
    }
    if !all_within_interval {
        return Err(spinner_engine::Error::execution(
            "a crash position replayed more than one checkpoint interval",
        ));
    }
    Ok(())
}
