//! Shared setup for the benchmark harness.
//!
//! Every benchmark and the `repro` binary build their databases through
//! these helpers so figure reproductions and Criterion runs use identical
//! datasets. Scales are chosen so a full `cargo bench` finishes on a
//! laptop while preserving each preset's edge/node ratio (see DESIGN.md
//! §2 for the substitution argument).

use spinner_datagen::{load_edges_into, load_vertex_status_into, DatasetPreset, GraphSpec};
use spinner_engine::{Database, EngineConfig};

/// Default scale factors for the benchmark datasets. "dblp-like" keeps
/// DBLP's ~3.3 edges/node, "pokec-like" keeps Pokec's ~18.8 edges/node —
/// the ratio that drives the Fig. 9 contrast between the two datasets.
pub const DBLP_SCALE: f64 = 0.01;
pub const POKEC_SCALE: f64 = 0.001;

/// Named dataset for benchmark parameterization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchDataset {
    DblpLike,
    PokecLike,
}

impl BenchDataset {
    pub fn label(self) -> &'static str {
        match self {
            BenchDataset::DblpLike => "dblp-like",
            BenchDataset::PokecLike => "pokec-like",
        }
    }

    pub fn spec(self) -> GraphSpec {
        match self {
            BenchDataset::DblpLike => DatasetPreset::Dblp.spec(DBLP_SCALE),
            BenchDataset::PokecLike => DatasetPreset::Pokec.spec(POKEC_SCALE),
        }
    }
}

/// Build a database with `edges` (and optionally `vertexStatus`, 80%
/// available, as in the PR-VS experiments) loaded.
pub fn setup_db(dataset: BenchDataset, config: EngineConfig, with_vs: bool) -> Database {
    let db = Database::new(config).expect("bench config is valid");
    let spec = dataset.spec();
    load_edges_into(&db, "edges", &spec).expect("load edges");
    if with_vs {
        load_vertex_status_into(&db, "vertexstatus", &spec, 0.8).expect("load vertexstatus");
    }
    db
}

/// Iteration count used across the figure reproductions (the paper runs
/// its comparison experiments for 25 iterations, §VII-E).
pub const ITERATIONS: u64 = 25;
