//! Ablation: the MPP substrate itself.
//!
//! Not a paper figure — this sweep validates the shared-nothing model the
//! reproduction substitutes for Futurewei MPPDB (DESIGN.md §2): PageRank
//! across 1/2/4/8 virtual partitions, sequentially and with crossbeam
//! partition workers. Exchange-row counters scale with partition count;
//! wall time should improve with parallel workers on multi-core hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinner_bench::{setup_db, BenchDataset};
use spinner_engine::EngineConfig;
use spinner_procedural::pagerank;

fn bench_partitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mpp");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let sql = pagerank(10, false).cte;
    for partitions in [1usize, 2, 4, 8] {
        for (mode, parallel) in [("sequential", false), ("parallel", true)] {
            let config = EngineConfig::default()
                .with_partitions(partitions)
                .with_parallel_partitions(parallel);
            let db = setup_db(BenchDataset::DblpLike, config, false);
            group.bench_with_input(
                BenchmarkId::new(mode, format!("{partitions}-partitions")),
                &sql,
                |b, sql| b.iter(|| db.query(sql).expect("pr")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partitions);
criterion_main!(benches);
