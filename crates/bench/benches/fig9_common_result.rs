//! **Figure 9** — common result optimization.
//!
//! PR-VS and SSSP-VS join the loop-invariant `edges ⨝ vertexStatus` pair
//! inside the iterative part. With the optimization the pair is
//! materialized once before the loop; the baseline recomputes it every
//! iteration.
//!
//! Paper expectation: ~20% faster on DBLP, ~10% on Pokec (the invariant
//! part is proportionally larger on DBLP), with the same pattern for both
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinner_bench::{setup_db, BenchDataset, ITERATIONS};
use spinner_engine::EngineConfig;
use spinner_procedural::{pagerank, sssp};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_common_result");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for dataset in [BenchDataset::DblpLike, BenchDataset::PokecLike] {
        for (mode, common) in [("common-result", true), ("baseline", false)] {
            let config = EngineConfig::default().with_common_result(common);
            let db = setup_db(dataset, config.clone(), true);
            let sql = pagerank(ITERATIONS, true).cte;
            group.bench_with_input(
                BenchmarkId::new(format!("pr-vs/{}", dataset.label()), mode),
                &sql,
                |b, sql| b.iter(|| db.query(sql).expect("pr-vs")),
            );
            let db = setup_db(dataset, config, true);
            let sql = sssp(ITERATIONS, 1, true).cte;
            group.bench_with_input(
                BenchmarkId::new(format!("sssp-vs/{}", dataset.label()), mode),
                &sql,
                |b, sql| b.iter(|| db.query(sql).expect("sssp-vs")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
