//! **Figure 11** — iterative CTEs vs stored procedures (and, as an extra
//! series, the SQLoop middleware baseline of §II).
//!
//! PR-VS, SSSP-VS and FF (50% selectivity) for 25 iterations, each in
//! three formulations that compute identical results.
//!
//! Paper expectation: optimized CTEs ≥25% faster than stored procedures
//! for PR/SSSP (rename + common-result), ≥80% faster for FF (push-down).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinner_bench::{setup_db, BenchDataset, ITERATIONS};
use spinner_engine::EngineConfig;
use spinner_procedural::{ff, pagerank, run_script, sssp};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_vs_procedures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let workloads = [
        ("pr-vs", pagerank(ITERATIONS, true), true),
        ("sssp-vs", sssp(ITERATIONS, 1, true), true),
        ("ff-50pct", ff(ITERATIONS, 2), false),
    ];
    for (name, workload, with_vs) in workloads {
        let db = setup_db(BenchDataset::DblpLike, EngineConfig::default(), with_vs);
        group.bench_with_input(
            BenchmarkId::new(name, "iterative-cte"),
            &workload.cte,
            |b, sql| b.iter(|| db.query(sql).expect("cte")),
        );
        group.bench_with_input(
            BenchmarkId::new(name, "stored-procedure"),
            &workload.procedure,
            |b, script| b.iter(|| run_script(&db, script).expect("procedure")),
        );
        group.bench_with_input(
            BenchmarkId::new(name, "middleware"),
            &workload.middleware,
            |b, script| b.iter(|| run_script(&db, script).expect("middleware")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
