//! **Figure 8** — minimizing data movement.
//!
//! Optimized execution uses the `rename` operator for queries that update
//! the entire dataset; the baseline copies the working table back into the
//! main table and diffs for updated rows every iteration (merge path).
//!
//! Paper expectation: up to 48% faster for FF (cheap iterative part, the
//! merge dominates); small or no gain for PR (the joins dominate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinner_bench::{setup_db, BenchDataset, ITERATIONS};
use spinner_engine::EngineConfig;
use spinner_procedural::{ff, pagerank};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_data_movement");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for dataset in [BenchDataset::DblpLike, BenchDataset::PokecLike] {
        for (mode, minimize) in [("rename", true), ("merge-baseline", false)] {
            let config = EngineConfig::default().with_minimize_data_movement(minimize);
            // FF: inexpensive iterative part — rename wins big.
            let db = setup_db(dataset, config.clone(), false);
            let sql = ff(ITERATIONS, 10).cte;
            group.bench_with_input(
                BenchmarkId::new(format!("ff/{}", dataset.label()), mode),
                &sql,
                |b, sql| b.iter(|| db.query(sql).expect("ff")),
            );
            // PR: expensive iterative part — rename matters less.
            let db = setup_db(dataset, config, false);
            let sql = pagerank(ITERATIONS, false).cte;
            group.bench_with_input(
                BenchmarkId::new(format!("pr/{}", dataset.label()), mode),
                &sql,
                |b, sql| b.iter(|| db.query(sql).expect("pr")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
