//! **Figure 10** — pushing down predicates.
//!
//! FF for 25 iterations at varying final-query selectivity (`MOD(node, X)
//! = 0` keeps ~1/X of the nodes). With push-down the predicate moves into
//! the non-iterative part and every iteration processes ~1/X of the data;
//! the baseline evaluates the whole CTE and filters at the end, so its
//! time is flat in X.
//!
//! Paper expectation: more than an order of magnitude at high selectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinner_bench::{setup_db, BenchDataset, ITERATIONS};
use spinner_engine::EngineConfig;
use spinner_procedural::ff;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_pushdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for mod_x in [2i64, 10, 50, 100] {
        for (mode, pushdown) in [("pushdown", true), ("baseline", false)] {
            let config = EngineConfig::default().with_predicate_pushdown(pushdown);
            let db = setup_db(BenchDataset::DblpLike, config, false);
            let sql = ff(ITERATIONS, mod_x).cte;
            group.bench_with_input(
                BenchmarkId::new(mode, format!("selectivity-1/{mod_x}")),
                &sql,
                |b, sql| b.iter(|| db.query(sql).expect("ff")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
