//! Tolerance-aware comparison of floating-point results.
//!
//! Floating-point aggregation is order-sensitive: `SUM`/`AVG` fold each
//! partition in row order and then merge partial states in partition-index
//! order, so a fixed `(data, partition count)` pair always produces the
//! same bits, but *different* partition counts (or an independently coded
//! oracle) legitimately differ in the last ulps. Tests that compare such
//! results across configurations must therefore use a tolerance, not
//! `==`. Integers, strings, booleans and NULLs still compare exactly —
//! only `Float` values get slack.

use crate::row::Row;
use crate::value::Value;

/// Default tolerance for engine-vs-oracle and cross-partition-count
/// comparisons of iterative float workloads: loose enough to absorb
/// summation-order drift compounded over tens of iterations, tight
/// enough to catch any real logic error.
pub const DEFAULT_TOLERANCE: f64 = 1e-6;

/// Combined relative/absolute float comparison:
/// `|a - b| <= tol * max(1, |a|, |b|)`. The `1` floor makes the check
/// absolute near zero and relative for large magnitudes, and `NaN`
/// equals `NaN` (mirroring [`Value::cmp_total`]'s total order).
pub fn floats_approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Compare two values, applying [`floats_approx_eq`] when either side is
/// a `Float` (an Int/Float pair is compared numerically, like
/// [`Value::cmp_total`]) and exact equality otherwise.
pub fn values_approx_eq(a: &Value, b: &Value, tol: f64) -> bool {
    match (a, b) {
        (Value::Float(_) | Value::Int(_), Value::Float(_) | Value::Int(_)) => {
            match (a.as_f64(), b.as_f64()) {
                (Ok(x), Ok(y)) => {
                    // Int/Int pairs stay exact; a float on either side
                    // gets the tolerance.
                    if matches!((a, b), (Value::Int(_), Value::Int(_))) {
                        a == b
                    } else {
                        floats_approx_eq(x, y, tol)
                    }
                }
                _ => a == b,
            }
        }
        _ => a == b,
    }
}

/// Compare two row sets cell-by-cell with [`values_approx_eq`].
/// Returns `Err` with a description of the first mismatch (row/column
/// index and both cell values) so test failures are self-explanatory.
pub fn rows_approx_eq(a: &[Row], b: &[Row], tol: f64) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("row count {} vs {}", a.len(), b.len()));
    }
    for (i, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        if ra.len() != rb.len() {
            return Err(format!("row {i}: width {} vs {}", ra.len(), rb.len()));
        }
        for (j, (va, vb)) in ra.iter().zip(rb.iter()).enumerate() {
            if !values_approx_eq(va, vb, tol) {
                return Err(format!("row {i} col {j}: {va:?} vs {vb:?} (tol {tol})"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::row_of;

    #[test]
    fn relative_and_absolute_regimes() {
        assert!(floats_approx_eq(1e12, 1e12 * (1.0 + 1e-9), 1e-6));
        assert!(floats_approx_eq(0.0, 1e-9, 1e-6));
        assert!(!floats_approx_eq(1.0, 1.001, 1e-6));
        assert!(floats_approx_eq(f64::NAN, f64::NAN, 1e-6));
        assert!(!floats_approx_eq(f64::NAN, 0.0, 1e-6));
    }

    #[test]
    fn ints_stay_exact_floats_get_slack() {
        assert!(!values_approx_eq(&Value::Int(1), &Value::Int(2), 10.0));
        assert!(values_approx_eq(
            &Value::Float(1.0),
            &Value::Float(1.0 + 1e-9),
            1e-6
        ));
        assert!(values_approx_eq(
            &Value::Int(2),
            &Value::Float(2.0 + 1e-9),
            1e-6
        ));
        assert!(!values_approx_eq(&Value::Null, &Value::Float(0.0), 1.0));
        assert!(values_approx_eq(&Value::Null, &Value::Null, 0.0));
    }

    #[test]
    fn row_mismatch_reports_position() {
        let a = vec![row_of([Value::Int(1), Value::Float(2.0)])];
        let b = vec![row_of([Value::Int(1), Value::Float(2.5)])];
        let err = rows_approx_eq(&a, &b, 1e-6).unwrap_err();
        assert!(err.contains("row 0 col 1"), "{err}");
        assert!(rows_approx_eq(&a, &a, 0.0).is_ok());
    }
}
