//! Per-query observability: execution spans, per-iteration loop metrics,
//! and the structured [`QueryProfile`] behind `EXPLAIN ANALYZE`.
//!
//! The flat `ExecStats` counters answer "how much did this statement cost
//! in total"; this module answers "*which* step, *which* operator and
//! *which* loop iteration paid it". The executor threads a [`Tracer`]
//! through every step and physical operator; when tracing is enabled the
//! tracer builds a tree of [`ProfileNode`]s (one per step-program step and
//! per physical operator) annotated with actual row counts, rows moved
//! through exchanges, estimated bytes and wall time. Loop operators
//! additionally record one [`IterationProfile`] per iteration — delta
//! rows, rows updated, working-table size and per-iteration wall time —
//! so convergence curves (Fig. 11 of the paper) fall out of a single run.
//!
//! The finished [`QueryProfile`] renders either as an annotated Table-I
//! style step program ([`QueryProfile::render`]) or as machine-readable
//! JSON ([`QueryProfile::to_json`] / [`QueryProfile::from_json`]; the JSON
//! codec is hand-rolled because the workspace vendors a no-op `serde`
//! stub for offline builds).

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::error::{Error, Result};

/// What a profile span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A step-program step (Materialize / Rename / Merge).
    Step,
    /// A physical operator inside a step's plan fragment.
    Operator,
    /// A `loop` step; carries per-iteration metrics.
    Loop,
    /// The final plan (`Qf` in the paper) that produces the result rows.
    Return,
}

impl SpanKind {
    fn as_str(self) -> &'static str {
        match self {
            SpanKind::Step => "step",
            SpanKind::Operator => "operator",
            SpanKind::Loop => "loop",
            SpanKind::Return => "return",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        match s {
            "step" => Ok(SpanKind::Step),
            "operator" => Ok(SpanKind::Operator),
            "loop" => Ok(SpanKind::Loop),
            "return" => Ok(SpanKind::Return),
            other => Err(Error::execution(format!("unknown span kind '{other}'"))),
        }
    }
}

/// Metrics of one loop iteration (the paper's convergence-curve data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterationProfile {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Rows that changed (iterative CTEs) or were newly added (recursive
    /// CTEs) in this iteration — the delta the termination check watches.
    pub delta_rows: u64,
    /// Rows reported as updated by this iteration's merge/replace.
    pub rows_updated: u64,
    /// Size of the CTE working table after the iteration.
    pub working_rows: u64,
    /// Wall time of the iteration in microseconds.
    pub elapsed_us: u64,
}

/// How an iterative loop evaluated its body — the `EXPLAIN ANALYZE`
/// `iteration:` line. Present only on [`SpanKind::Loop`] spans of
/// iterative CTEs (and omitted from JSON elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterationModeProfile {
    /// `true` when the optimizer proved the body delta-eligible and the
    /// loop ran semi-naive (joining the delta table); `false` for full
    /// recompute.
    pub semi_naive: bool,
    /// Total rows fed to the loop body through the delta table across all
    /// iterations; zero for full recompute.
    pub delta_rows: u64,
    /// Total changed rows the merge (or replace-path diff) folded back
    /// into the CTE table across all iterations.
    pub merged_rows: u64,
}

impl IterationModeProfile {
    /// The `mode=` token in the rendered line.
    pub fn mode(&self) -> &'static str {
        if self.semi_naive {
            "semi_naive"
        } else {
            "full"
        }
    }
}

/// Recovery events attributed to one span — the `EXPLAIN ANALYZE` view
/// of the checkpoint/retry/rollback machinery. All-zero (and omitted
/// from JSON) unless the recovery subsystem did something.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryProfile {
    /// Checkpoints snapshotted for this loop (including the entry
    /// checkpoint at iteration 0).
    pub checkpoints_taken: u64,
    /// Total estimated bytes captured by those snapshots.
    pub bytes_snapshotted: u64,
    /// In-place transient retries (partition workers and step re-runs).
    pub retries: u64,
    /// Rollbacks to the last checkpoint after retries were exhausted.
    pub rollbacks: u64,
    /// Iterations re-executed due to rollbacks (the failed iteration
    /// counts: it runs again).
    pub iterations_replayed: u64,
    /// Inclusive iteration ranges re-executed, one per rollback.
    pub replayed_ranges: Vec<(u64, u64)>,
}

impl RecoveryProfile {
    /// Whether the recovery subsystem recorded anything on this span.
    pub fn is_empty(&self) -> bool {
        self.checkpoints_taken == 0
            && self.bytes_snapshotted == 0
            && self.retries == 0
            && self.rollbacks == 0
            && self.iterations_replayed == 0
            && self.replayed_ranges.is_empty()
    }

    fn absorb(&mut self, other: RecoveryProfile) {
        self.checkpoints_taken += other.checkpoints_taken;
        self.bytes_snapshotted += other.bytes_snapshotted;
        self.retries += other.retries;
        self.rollbacks += other.rollbacks;
        self.iterations_replayed += other.iterations_replayed;
        self.replayed_ranges.extend(other.replayed_ranges);
    }
}

/// Spill activity of one statement — the `EXPLAIN ANALYZE` view of the
/// memory accountant. All-zero (and omitted from JSON) unless memory
/// pressure made the engine spill, so profiles from spill-free runs stay
/// byte-identical to the previous format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillProfile {
    /// Regions written to spill files.
    pub events: u64,
    /// Bytes written to spill files.
    pub bytes_written: u64,
    /// Bytes read back from spill files.
    pub bytes_read: u64,
    /// High-water mark of resident tracked intermediate bytes.
    pub peak_tracked_bytes: u64,
}

impl SpillProfile {
    /// Whether any spill activity (or tracking) was recorded.
    pub fn is_empty(&self) -> bool {
        self.events == 0
            && self.bytes_written == 0
            && self.bytes_read == 0
            && self.peak_tracked_bytes == 0
    }
}

/// Parallel-scheduling and join-state-cache activity of one statement —
/// the `EXPLAIN ANALYZE` view of the worker pool and the loop-invariant
/// join cache. All-zero (and omitted from JSON) for serial statements
/// with no cacheable joins, so such profiles stay byte-identical to the
/// previous format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolProfile {
    /// OS threads spawned by parallel operators (spawn-per-operator
    /// fallback). Zero when the persistent pool handled everything.
    pub threads_spawned: u64,
    /// Per-partition tasks dispatched to the persistent worker pool.
    pub pool_tasks: u64,
    /// Loop-invariant hash-join build tables constructed.
    pub join_builds: u64,
    /// Loop-invariant hash-join builds reused from the cache instead of
    /// being re-hashed.
    pub join_builds_reused: u64,
}

impl PoolProfile {
    /// Whether any pool/cache activity was recorded.
    pub fn is_empty(&self) -> bool {
        self.threads_spawned == 0
            && self.pool_tasks == 0
            && self.join_builds == 0
            && self.join_builds_reused == 0
    }
}

/// Admission-control activity of one statement — the `EXPLAIN ANALYZE`
/// view of the [`AdmissionController`](crate::admission::AdmissionController).
/// All-zero (and omitted from JSON) when admission control is disabled or
/// the statement sailed through the fast path on an otherwise-idle
/// server, so such profiles stay byte-identical to the previous format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionProfile {
    /// Milliseconds this statement waited in the admission queue before
    /// being allowed to start.
    pub waited_ms: u64,
    /// Depth of the admission queue when this statement joined it (zero
    /// if it was admitted on the fast path).
    pub queue_depth: u64,
    /// Queries shed server-wide (overloaded + admission timeout +
    /// shutdown) as of this statement's admission — overload context for
    /// the wait above.
    pub shed: u64,
}

impl AdmissionProfile {
    /// Whether any admission activity was recorded.
    pub fn is_empty(&self) -> bool {
        self.waited_ms == 0 && self.queue_depth == 0 && self.shed == 0
    }
}

/// Durability activity of one statement — the `EXPLAIN ANALYZE` view of
/// the checksummed, crash-consistent spill/checkpoint layer. All-zero
/// (and omitted from JSON) when the statement never touched disk, so
/// profiles from spill-free runs stay byte-identical to the previous
/// format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityProfile {
    /// Checkpoint epochs committed durably to the manifest.
    pub epochs: u64,
    /// On-disk artifacts read back with every checksum verified.
    pub verified: u64,
    /// Reads that failed verification (torn write, bit rot, truncation);
    /// each one was surfaced as a transient `StorageCorrupt` and handled
    /// by recovery, never returned as silent wrong answers.
    pub corrupt_detected: u64,
    /// `fsync` calls issued by the write-to-temp → fsync → rename →
    /// fsync-dir protocol (file and directory syncs combined).
    pub refsync: u64,
}

impl DurabilityProfile {
    /// Whether any durability activity was recorded.
    pub fn is_empty(&self) -> bool {
        self.epochs == 0 && self.verified == 0 && self.corrupt_detected == 0 && self.refsync == 0
    }
}

/// Restart-recovery provenance of one statement — present only when the
/// statement resumed an adopted loop instead of starting from iteration
/// 0. All-zero (and omitted from JSON) for ordinary statements, so their
/// profiles stay byte-identical to the previous format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestartProfile {
    /// The committed checkpoint epoch the loop was seeded from.
    pub adopted_epoch: u64,
    /// The iteration the loop resumed at (the adopted checkpoint's
    /// iteration), rather than 0.
    pub resumed_iteration: u64,
    /// Iterations of work the crash cost: the dead process's newest
    /// journaled iteration minus the iteration actually resumed from.
    /// Bounded by one checkpoint interval unless the newest epoch was
    /// corrupt and adoption fell back to the previous one.
    pub replayed_iterations: u64,
}

impl RestartProfile {
    /// Whether the statement resumed adopted state.
    pub fn is_empty(&self) -> bool {
        self.adopted_epoch == 0 && self.resumed_iteration == 0 && self.replayed_iterations == 0
    }
}

/// One node of the profile tree: a step, operator or loop with its
/// actual (not estimated) runtime counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Human-readable label, mirroring the EXPLAIN line for the same
    /// step/operator (e.g. `Materialize pagerank`, `Exchange: Hash(k)`).
    pub label: String,
    /// What this span measures.
    pub kind: SpanKind,
    /// Rows produced by the span (summed over executions).
    pub rows_out: u64,
    /// Rows that crossed a partition boundary inside the span (simulated
    /// network traffic; broadcast copies count too).
    pub rows_moved: u64,
    /// Estimated bytes of the span's output.
    pub bytes: u64,
    /// Wall time in microseconds (summed over executions).
    pub elapsed_us: u64,
    /// How many times the span executed — body steps of a 10-iteration
    /// loop report 10.
    pub execs: u64,
    /// Per-iteration metrics; non-empty only for [`SpanKind::Loop`].
    pub iterations: Vec<IterationProfile>,
    /// Semi-naive/full evaluation summary; `Some` only for the loop spans
    /// of iterative CTEs.
    pub iteration_mode: Option<IterationModeProfile>,
    /// Recovery events (checkpoints, retries, rollbacks) charged to this
    /// span; all-zero unless recovery is enabled and something failed.
    pub recovery: RecoveryProfile,
    /// Child spans (operators under a step, steps under a loop).
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(kind: SpanKind, label: String) -> Self {
        ProfileNode {
            label,
            kind,
            rows_out: 0,
            rows_moved: 0,
            bytes: 0,
            elapsed_us: 0,
            execs: 0,
            iterations: Vec::new(),
            iteration_mode: None,
            recovery: RecoveryProfile::default(),
            children: Vec::new(),
        }
    }

    /// Fold `other` (the same step re-executed in a later loop iteration)
    /// into this node: counters add up, `execs` counts executions, and
    /// children merge recursively by position + label.
    fn absorb(&mut self, other: ProfileNode) {
        self.rows_out += other.rows_out;
        self.rows_moved += other.rows_moved;
        self.bytes += other.bytes;
        self.elapsed_us += other.elapsed_us;
        self.execs += other.execs;
        self.iterations.extend(other.iterations);
        self.iteration_mode = match (self.iteration_mode, other.iteration_mode) {
            (Some(a), Some(b)) => Some(IterationModeProfile {
                semi_naive: a.semi_naive || b.semi_naive,
                delta_rows: a.delta_rows + b.delta_rows,
                merged_rows: a.merged_rows + b.merged_rows,
            }),
            (a, b) => a.or(b),
        };
        self.recovery.absorb(other.recovery);
        for (i, child) in other.children.into_iter().enumerate() {
            match self.children.get_mut(i) {
                Some(mine) if mine.label == child.label && mine.kind == child.kind => {
                    mine.absorb(child);
                }
                _ => self.children.push(child),
            }
        }
    }

    /// Depth-first search for the first node whose label contains `pat`.
    pub fn find(&self, pat: &str) -> Option<&ProfileNode> {
        if self.label.contains(pat) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(pat))
    }

    fn collect_loops<'a>(&'a self, out: &mut Vec<&'a ProfileNode>) {
        if self.kind == SpanKind::Loop {
            out.push(self);
        }
        for c in &self.children {
            c.collect_loops(out);
        }
    }

    fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("label".into(), Json::Str(self.label.clone())),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("rows_out".into(), Json::Num(self.rows_out)),
            ("rows_moved".into(), Json::Num(self.rows_moved)),
            ("bytes".into(), Json::Num(self.bytes)),
            ("elapsed_us".into(), Json::Num(self.elapsed_us)),
            ("execs".into(), Json::Num(self.execs)),
            (
                "iterations".into(),
                Json::Arr(
                    self.iterations
                        .iter()
                        .map(|it| {
                            Json::Obj(vec![
                                ("iteration".into(), Json::Num(it.iteration)),
                                ("delta_rows".into(), Json::Num(it.delta_rows)),
                                ("rows_updated".into(), Json::Num(it.rows_updated)),
                                ("working_rows".into(), Json::Num(it.working_rows)),
                                ("elapsed_us".into(), Json::Num(it.elapsed_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "children".into(),
                Json::Arr(self.children.iter().map(|c| c.to_json_value()).collect()),
            ),
        ];
        // Like `recovery`, the key appears only on loops that report a
        // mode, keeping older profiles byte-identical.
        if let Some(m) = &self.iteration_mode {
            fields.push((
                "iteration_mode".into(),
                Json::Obj(vec![
                    ("mode".into(), Json::Str(m.mode().into())),
                    ("delta_rows".into(), Json::Num(m.delta_rows)),
                    ("merged_rows".into(), Json::Num(m.merged_rows)),
                ]),
            ));
        }
        // Keep untraced-recovery profiles byte-identical to the PR-2
        // format: the key appears only when recovery did something.
        if !self.recovery.is_empty() {
            let r = &self.recovery;
            fields.push((
                "recovery".into(),
                Json::Obj(vec![
                    ("checkpoints_taken".into(), Json::Num(r.checkpoints_taken)),
                    ("bytes_snapshotted".into(), Json::Num(r.bytes_snapshotted)),
                    ("retries".into(), Json::Num(r.retries)),
                    ("rollbacks".into(), Json::Num(r.rollbacks)),
                    (
                        "iterations_replayed".into(),
                        Json::Num(r.iterations_replayed),
                    ),
                    (
                        "replayed_ranges".into(),
                        Json::Arr(
                            r.replayed_ranges
                                .iter()
                                .map(|&(from, to)| {
                                    Json::Obj(vec![
                                        ("from".into(), Json::Num(from)),
                                        ("to".into(), Json::Num(to)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    fn from_json_value(v: &Json) -> Result<ProfileNode> {
        let obj = v.as_obj("profile node")?;
        let iterations = Json::get(obj, "iterations")?
            .as_arr("iterations")?
            .iter()
            .map(|it| {
                let o = it.as_obj("iteration")?;
                Ok(IterationProfile {
                    iteration: Json::get(o, "iteration")?.as_num("iteration")?,
                    delta_rows: Json::get(o, "delta_rows")?.as_num("delta_rows")?,
                    rows_updated: Json::get(o, "rows_updated")?.as_num("rows_updated")?,
                    working_rows: Json::get(o, "working_rows")?.as_num("working_rows")?,
                    elapsed_us: Json::get(o, "elapsed_us")?.as_num("elapsed_us")?,
                })
            })
            .collect::<Result<_>>()?;
        let children = Json::get(obj, "children")?
            .as_arr("children")?
            .iter()
            .map(ProfileNode::from_json_value)
            .collect::<Result<_>>()?;
        let iteration_mode = match Json::get_opt(obj, "iteration_mode") {
            None => None,
            Some(v) => {
                let o = v.as_obj("iteration_mode")?;
                Some(IterationModeProfile {
                    semi_naive: Json::get(o, "mode")?.as_str("mode")? == "semi_naive",
                    delta_rows: Json::get(o, "delta_rows")?.as_num("delta_rows")?,
                    merged_rows: Json::get(o, "merged_rows")?.as_num("merged_rows")?,
                })
            }
        };
        let recovery = match Json::get_opt(obj, "recovery") {
            None => RecoveryProfile::default(),
            Some(v) => {
                let o = v.as_obj("recovery")?;
                RecoveryProfile {
                    checkpoints_taken: Json::get(o, "checkpoints_taken")?
                        .as_num("checkpoints_taken")?,
                    bytes_snapshotted: Json::get(o, "bytes_snapshotted")?
                        .as_num("bytes_snapshotted")?,
                    retries: Json::get(o, "retries")?.as_num("retries")?,
                    rollbacks: Json::get(o, "rollbacks")?.as_num("rollbacks")?,
                    iterations_replayed: Json::get(o, "iterations_replayed")?
                        .as_num("iterations_replayed")?,
                    replayed_ranges: Json::get(o, "replayed_ranges")?
                        .as_arr("replayed_ranges")?
                        .iter()
                        .map(|r| {
                            let ro = r.as_obj("replayed range")?;
                            Ok((
                                Json::get(ro, "from")?.as_num("from")?,
                                Json::get(ro, "to")?.as_num("to")?,
                            ))
                        })
                        .collect::<Result<_>>()?,
                }
            }
        };
        Ok(ProfileNode {
            label: Json::get(obj, "label")?.as_str("label")?.to_string(),
            kind: SpanKind::parse(Json::get(obj, "kind")?.as_str("kind")?)?,
            rows_out: Json::get(obj, "rows_out")?.as_num("rows_out")?,
            rows_moved: Json::get(obj, "rows_moved")?.as_num("rows_moved")?,
            bytes: Json::get(obj, "bytes")?.as_num("bytes")?,
            elapsed_us: Json::get(obj, "elapsed_us")?.as_num("elapsed_us")?,
            execs: Json::get(obj, "execs")?.as_num("execs")?,
            iterations,
            iteration_mode,
            recovery,
            children,
        })
    }
}

/// The structured result of `EXPLAIN ANALYZE`: the executed step program
/// annotated with actual row counts, timings and per-iteration metrics.
///
/// ```
/// use spinner_common::profile::{QueryProfile, SpanKind, Tracer};
///
/// let tracer = Tracer::new();
/// tracer.enter(SpanKind::Step, "Materialize t".to_string());
/// tracer.exit(4, 64);
/// let profile = tracer.finish();
/// assert_eq!(profile.roots[0].rows_out, 4);
///
/// // Machine-readable rendering round-trips losslessly.
/// let json = profile.to_json();
/// assert_eq!(QueryProfile::from_json(&json).unwrap(), profile);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// Top-level spans: the statement's steps, loops and final `Return`.
    pub roots: Vec<ProfileNode>,
    /// End-to-end wall time of the statement in microseconds.
    pub total_elapsed_us: u64,
    /// Statement-level spill activity; all-zero unless memory pressure
    /// made the engine spill intermediate state to disk.
    pub spill: SpillProfile,
    /// Statement-level worker-pool / join-cache activity; all-zero for
    /// serial statements with no cacheable joins.
    pub pool: PoolProfile,
    /// Statement-level admission-control activity; all-zero when the
    /// statement started without queueing.
    pub admission: AdmissionProfile,
    /// Statement-level durability activity; all-zero when the statement
    /// never wrote or verified on-disk state.
    pub durability: DurabilityProfile,
    /// Restart-recovery provenance; all-zero unless this statement
    /// resumed a loop adopted from a dead process's journal.
    pub restart: RestartProfile,
}

impl QueryProfile {
    /// All loop nodes in the profile, in execution order. Each carries the
    /// per-iteration convergence data in [`ProfileNode::iterations`].
    pub fn loops(&self) -> Vec<&ProfileNode> {
        let mut out = Vec::new();
        for r in &self.roots {
            r.collect_loops(&mut out);
        }
        out
    }

    /// Depth-first search for the first node whose label contains `pat`.
    pub fn find(&self, pat: &str) -> Option<&ProfileNode> {
        self.roots.iter().find_map(|r| r.find(pat))
    }

    /// Machine-readable JSON rendering (consumed by the `repro` binary and
    /// the CLI's `\json` toggle). Round-trips via [`QueryProfile::from_json`].
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("total_elapsed_us".into(), Json::Num(self.total_elapsed_us)),
            (
                "roots".into(),
                Json::Arr(self.roots.iter().map(|r| r.to_json_value()).collect()),
            ),
        ];
        // Like the recovery key: spill-free profiles stay byte-identical
        // to the previous format.
        if !self.spill.is_empty() {
            fields.push((
                "spill".into(),
                Json::Obj(vec![
                    ("events".into(), Json::Num(self.spill.events)),
                    ("bytes_written".into(), Json::Num(self.spill.bytes_written)),
                    ("bytes_read".into(), Json::Num(self.spill.bytes_read)),
                    (
                        "peak_tracked_bytes".into(),
                        Json::Num(self.spill.peak_tracked_bytes),
                    ),
                ]),
            ));
        }
        if !self.pool.is_empty() {
            fields.push((
                "pool".into(),
                Json::Obj(vec![
                    (
                        "threads_spawned".into(),
                        Json::Num(self.pool.threads_spawned),
                    ),
                    ("pool_tasks".into(), Json::Num(self.pool.pool_tasks)),
                    ("join_builds".into(), Json::Num(self.pool.join_builds)),
                    (
                        "join_builds_reused".into(),
                        Json::Num(self.pool.join_builds_reused),
                    ),
                ]),
            ));
        }
        if !self.admission.is_empty() {
            fields.push((
                "admission".into(),
                Json::Obj(vec![
                    ("waited_ms".into(), Json::Num(self.admission.waited_ms)),
                    ("queue_depth".into(), Json::Num(self.admission.queue_depth)),
                    ("shed".into(), Json::Num(self.admission.shed)),
                ]),
            ));
        }
        if !self.durability.is_empty() {
            fields.push((
                "durability".into(),
                Json::Obj(vec![
                    ("epochs".into(), Json::Num(self.durability.epochs)),
                    ("verified".into(), Json::Num(self.durability.verified)),
                    (
                        "corrupt_detected".into(),
                        Json::Num(self.durability.corrupt_detected),
                    ),
                    ("refsync".into(), Json::Num(self.durability.refsync)),
                ]),
            ));
        }
        if !self.restart.is_empty() {
            fields.push((
                "restart".into(),
                Json::Obj(vec![
                    (
                        "adopted_epoch".into(),
                        Json::Num(self.restart.adopted_epoch),
                    ),
                    (
                        "resumed_iteration".into(),
                        Json::Num(self.restart.resumed_iteration),
                    ),
                    (
                        "replayed_iterations".into(),
                        Json::Num(self.restart.replayed_iterations),
                    ),
                ]),
            ));
        }
        let v = Json::Obj(fields);
        let mut out = String::new();
        v.write(&mut out);
        out
    }

    /// Parse a profile previously rendered with [`QueryProfile::to_json`].
    pub fn from_json(text: &str) -> Result<QueryProfile> {
        let v = Json::parse(text)?;
        let obj = v.as_obj("profile")?;
        let spill = match Json::get_opt(obj, "spill") {
            None => SpillProfile::default(),
            Some(v) => {
                let o = v.as_obj("spill")?;
                SpillProfile {
                    events: Json::get(o, "events")?.as_num("events")?,
                    bytes_written: Json::get(o, "bytes_written")?.as_num("bytes_written")?,
                    bytes_read: Json::get(o, "bytes_read")?.as_num("bytes_read")?,
                    peak_tracked_bytes: Json::get(o, "peak_tracked_bytes")?
                        .as_num("peak_tracked_bytes")?,
                }
            }
        };
        let pool = match Json::get_opt(obj, "pool") {
            None => PoolProfile::default(),
            Some(v) => {
                let o = v.as_obj("pool")?;
                PoolProfile {
                    threads_spawned: Json::get(o, "threads_spawned")?.as_num("threads_spawned")?,
                    pool_tasks: Json::get(o, "pool_tasks")?.as_num("pool_tasks")?,
                    join_builds: Json::get(o, "join_builds")?.as_num("join_builds")?,
                    join_builds_reused: Json::get(o, "join_builds_reused")?
                        .as_num("join_builds_reused")?,
                }
            }
        };
        let admission = match Json::get_opt(obj, "admission") {
            None => AdmissionProfile::default(),
            Some(v) => {
                let o = v.as_obj("admission")?;
                AdmissionProfile {
                    waited_ms: Json::get(o, "waited_ms")?.as_num("waited_ms")?,
                    queue_depth: Json::get(o, "queue_depth")?.as_num("queue_depth")?,
                    shed: Json::get(o, "shed")?.as_num("shed")?,
                }
            }
        };
        let durability = match Json::get_opt(obj, "durability") {
            None => DurabilityProfile::default(),
            Some(v) => {
                let o = v.as_obj("durability")?;
                DurabilityProfile {
                    epochs: Json::get(o, "epochs")?.as_num("epochs")?,
                    verified: Json::get(o, "verified")?.as_num("verified")?,
                    corrupt_detected: Json::get(o, "corrupt_detected")?
                        .as_num("corrupt_detected")?,
                    refsync: Json::get(o, "refsync")?.as_num("refsync")?,
                }
            }
        };
        let restart = match Json::get_opt(obj, "restart") {
            None => RestartProfile::default(),
            Some(v) => {
                let o = v.as_obj("restart")?;
                RestartProfile {
                    adopted_epoch: Json::get(o, "adopted_epoch")?.as_num("adopted_epoch")?,
                    resumed_iteration: Json::get(o, "resumed_iteration")?
                        .as_num("resumed_iteration")?,
                    replayed_iterations: Json::get(o, "replayed_iterations")?
                        .as_num("replayed_iterations")?,
                }
            }
        };
        Ok(QueryProfile {
            total_elapsed_us: Json::get(obj, "total_elapsed_us")?.as_num("total_elapsed_us")?,
            roots: Json::get(obj, "roots")?
                .as_arr("roots")?
                .iter()
                .map(ProfileNode::from_json_value)
                .collect::<Result<_>>()?,
            spill,
            pool,
            admission,
            durability,
            restart,
        })
    }

    /// Annotated Table-I style rendering: the numbered step program with
    /// actual rows, movement and timings per step, and a per-iteration
    /// metrics table under every loop operator.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut step_no = 1usize;
        for node in &self.roots {
            render_node(node, &mut step_no, 0, &mut out);
        }
        if !self.spill.is_empty() {
            let s = &self.spill;
            let _ = writeln!(
                out,
                "spill: events={}, written={} B, read={} B, peak_tracked={} B",
                s.events, s.bytes_written, s.bytes_read, s.peak_tracked_bytes
            );
        }
        if !self.pool.is_empty() {
            let p = &self.pool;
            let _ = writeln!(
                out,
                "pool: threads_spawned={}, pool_tasks={}, join_builds={}, join_reused={}",
                p.threads_spawned, p.pool_tasks, p.join_builds, p.join_builds_reused
            );
        }
        if !self.admission.is_empty() {
            let a = &self.admission;
            let _ = writeln!(
                out,
                "admission: waited_ms={}, queue_depth={}, shed={}",
                a.waited_ms, a.queue_depth, a.shed
            );
        }
        if !self.durability.is_empty() {
            let d = &self.durability;
            let _ = writeln!(
                out,
                "durability: epochs={} verified={} corrupt_detected={} refsync={}",
                d.epochs, d.verified, d.corrupt_detected, d.refsync
            );
        }
        if !self.restart.is_empty() {
            let r = &self.restart;
            let _ = writeln!(
                out,
                "restart: adopted_epoch={} resumed_iteration={} replayed_iterations={}",
                r.adopted_epoch, r.resumed_iteration, r.replayed_iterations
            );
        }
        let _ = writeln!(
            out,
            "Total: {:.3} ms",
            self.total_elapsed_us as f64 / 1000.0
        );
        out
    }
}

fn metrics_suffix(node: &ProfileNode) -> String {
    let mut s = format!("(actual rows={}", node.rows_out);
    if node.rows_moved > 0 {
        let _ = write!(s, ", moved={}", node.rows_moved);
    }
    if node.execs > 1 {
        let _ = write!(s, ", execs={}", node.execs);
    }
    let _ = write!(s, ", time={:.3} ms)", node.elapsed_us as f64 / 1000.0);
    s
}

fn render_recovery(node: &ProfileNode, pad: &str, out: &mut String) {
    if node.recovery.is_empty() {
        return;
    }
    let r = &node.recovery;
    let ranges = r
        .replayed_ranges
        .iter()
        .map(|(from, to)| format!("{from}-{to}"))
        .collect::<Vec<_>>()
        .join(",");
    let _ = writeln!(
        out,
        "{pad}   recovery: checkpoints={} ({} B), retries={}, rollbacks={}, \
         replayed={} [{}]",
        r.checkpoints_taken,
        r.bytes_snapshotted,
        r.retries,
        r.rollbacks,
        r.iterations_replayed,
        ranges
    );
}

fn render_node(node: &ProfileNode, step_no: &mut usize, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node.kind {
        SpanKind::Operator => {
            let _ = writeln!(out, "{pad}{}  {}", node.label, metrics_suffix(node));
            render_recovery(node, &pad, out);
            for c in &node.children {
                render_node(c, step_no, indent + 1, out);
            }
        }
        SpanKind::Step | SpanKind::Return => {
            let _ = writeln!(
                out,
                "{pad}{step_no}. {}  {}",
                node.label,
                metrics_suffix(node)
            );
            *step_no += 1;
            render_recovery(node, &pad, out);
            for c in &node.children {
                render_node(c, step_no, indent + 2, out);
            }
        }
        SpanKind::Loop => {
            let _ = writeln!(
                out,
                "{pad}{step_no}. {}  (iterations={}, time={:.3} ms)",
                node.label,
                node.iterations.len(),
                node.elapsed_us as f64 / 1000.0
            );
            *step_no += 1;
            if let Some(m) = &node.iteration_mode {
                let _ = writeln!(
                    out,
                    "{pad}   iteration: mode={}, delta_rows={}, merged_rows={}",
                    m.mode(),
                    m.delta_rows,
                    m.merged_rows
                );
            }
            let loop_start = *step_no;
            for c in &node.children {
                render_node(c, step_no, indent + 1, out);
            }
            let _ = writeln!(
                out,
                "{pad}{step_no}. Go to step {loop_start} if loop condition holds."
            );
            *step_no += 1;
            if !node.iterations.is_empty() {
                let _ = writeln!(
                    out,
                    "{pad}   {:>5} {:>10} {:>10} {:>10} {:>11}",
                    "iter", "delta", "updated", "working", "time_ms"
                );
                for it in &node.iterations {
                    let _ = writeln!(
                        out,
                        "{pad}   {:>5} {:>10} {:>10} {:>10} {:>11.3}",
                        it.iteration,
                        it.delta_rows,
                        it.rows_updated,
                        it.working_rows,
                        it.elapsed_us as f64 / 1000.0
                    );
                }
            }
            render_recovery(node, &pad, out);
        }
    }
}

// ---- tracer ------------------------------------------------------------

struct Frame {
    node: ProfileNode,
    started: Instant,
    /// Aggregated-children count when the current iteration began; children
    /// appended past this index are this iteration's and get folded back at
    /// `end_iteration`.
    iter_base: usize,
    iter_started: Option<Instant>,
}

struct TracerState {
    started: Instant,
    roots: Vec<ProfileNode>,
    stack: Vec<Frame>,
}

/// Span collector threaded through the executor.
///
/// Disabled tracers ([`Tracer::disabled`]) are free: every method returns
/// before touching the lock. Enabled tracers are `Sync` (the operator
/// context crosses partition-worker threads) but effectively uncontended —
/// spans are opened and closed by the plan-driving thread only.
///
/// Frames left open by an error path are closed by [`Tracer::finish`];
/// profiles of failed statements are discarded by the engine anyway.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    inner: Mutex<TracerState>,
}

impl std::fmt::Debug for TracerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerState")
            .field("roots", &self.roots.len())
            .field("stack", &self.stack.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// An enabled tracer; the engine creates one per `EXPLAIN ANALYZE`.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            inner: Mutex::new(TracerState {
                started: Instant::now(),
                roots: Vec::new(),
                stack: Vec::new(),
            }),
        }
    }

    /// A no-op tracer for untraced statements (the default).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            inner: Mutex::new(TracerState {
                started: Instant::now(),
                roots: Vec::new(),
                stack: Vec::new(),
            }),
        }
    }

    /// Whether spans are being collected. Callers use this to skip
    /// metric computations (row counts, byte estimates) that only feed
    /// the profile.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open a span; it becomes the parent of spans opened before the
    /// matching [`Tracer::exit`].
    pub fn enter(&self, kind: SpanKind, label: String) {
        if !self.enabled {
            return;
        }
        self.lock().stack.push(Frame {
            node: ProfileNode::new(kind, label),
            started: Instant::now(),
            iter_base: 0,
            iter_started: None,
        });
    }

    /// Close the innermost span, recording its output size.
    pub fn exit(&self, rows_out: u64, bytes: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.lock();
        let Some(frame) = state.stack.pop() else {
            return;
        };
        let mut node = frame.node;
        node.rows_out = rows_out;
        node.bytes = bytes;
        node.elapsed_us = frame.started.elapsed().as_micros() as u64;
        node.execs = 1;
        match state.stack.last_mut() {
            Some(parent) => parent.node.children.push(node),
            None => state.roots.push(node),
        }
    }

    /// Charge rows moved through an exchange to the innermost open span.
    pub fn note_rows_moved(&self, rows: u64) {
        if !self.enabled || rows == 0 {
            return;
        }
        if let Some(frame) = self.lock().stack.last_mut() {
            frame.node.rows_moved += rows;
        }
    }

    /// Mark the start of a loop iteration. Must be called with the loop's
    /// span innermost; body-step spans opened afterwards are attributed to
    /// this iteration until [`Tracer::end_iteration`].
    pub fn begin_iteration(&self) {
        if !self.enabled {
            return;
        }
        if let Some(frame) = self.lock().stack.last_mut() {
            frame.iter_base = frame.node.children.len();
            frame.iter_started = Some(Instant::now());
        }
    }

    /// Close the current loop iteration: fold its body spans into the
    /// loop's aggregated children (summing counters, bumping `execs`) and
    /// record the iteration's convergence metrics.
    pub fn end_iteration(&self, delta_rows: u64, rows_updated: u64, working_rows: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.lock();
        let Some(frame) = state.stack.last_mut() else {
            return;
        };
        let fresh: Vec<ProfileNode> = frame.node.children.split_off(frame.iter_base);
        for (i, child) in fresh.into_iter().enumerate() {
            match frame.node.children.get_mut(i) {
                Some(agg) if agg.label == child.label && agg.kind == child.kind => {
                    agg.absorb(child);
                }
                _ => frame.node.children.push(child),
            }
        }
        let elapsed_us = frame
            .iter_started
            .take()
            .map(|t| t.elapsed().as_micros() as u64)
            .unwrap_or(0);
        let iteration = frame.node.iterations.len() as u64 + 1;
        frame.node.iterations.push(IterationProfile {
            iteration,
            delta_rows,
            rows_updated,
            working_rows,
            elapsed_us,
        });
    }

    /// Record which iteration strategy the innermost open loop span ran
    /// with, adding this iteration's delta/merge row counts to the span's
    /// totals. The executor calls it once per iteration; repeated calls
    /// accumulate, so the rendered line shows whole-loop totals.
    pub fn note_iteration_mode(&self, semi_naive: bool, delta_rows: u64, merged_rows: u64) {
        if !self.enabled {
            return;
        }
        let mut state = self.lock();
        if let Some(i) = state
            .stack
            .iter()
            .rposition(|fr| fr.node.kind == SpanKind::Loop)
        {
            let m = state.stack[i]
                .node
                .iteration_mode
                .get_or_insert(IterationModeProfile {
                    semi_naive,
                    delta_rows: 0,
                    merged_rows: 0,
                });
            m.semi_naive = semi_naive;
            m.delta_rows += delta_rows;
            m.merged_rows += merged_rows;
        }
    }

    /// Discard the current (failed) loop iteration: drop the partial body
    /// spans opened since [`Tracer::begin_iteration`] without folding them
    /// into the aggregated children, and close the iteration timer. The
    /// recovery subsystem calls this before rolling back; the rollback
    /// itself is recorded via [`Tracer::note_rollback`].
    pub fn abort_iteration(&self) {
        if !self.enabled {
            return;
        }
        if let Some(frame) = self.lock().stack.last_mut() {
            let base = frame.iter_base;
            if frame.node.children.len() > base {
                frame.node.children.truncate(base);
            }
            frame.iter_started = None;
        }
    }

    /// Attribute a recovery event to the innermost open *loop* span, or —
    /// for retries outside any loop (e.g. the final `Return` query) — to
    /// the innermost span.
    fn with_recovery(&self, f: impl FnOnce(&mut RecoveryProfile)) {
        if !self.enabled {
            return;
        }
        let mut state = self.lock();
        let idx = state
            .stack
            .iter()
            .rposition(|fr| fr.node.kind == SpanKind::Loop)
            .or_else(|| state.stack.len().checked_sub(1));
        if let Some(i) = idx {
            f(&mut state.stack[i].node.recovery);
        }
    }

    /// Record a checkpoint snapshot of `bytes` estimated bytes.
    pub fn note_checkpoint(&self, bytes: u64) {
        self.with_recovery(|r| {
            r.checkpoints_taken += 1;
            r.bytes_snapshotted += bytes;
        });
    }

    /// Record one in-place transient retry (partition worker or step).
    pub fn note_retry(&self) {
        self.with_recovery(|r| r.retries += 1);
    }

    /// Record a rollback that will replay iterations `replay_from` through
    /// `failed_iteration` inclusive.
    pub fn note_rollback(&self, replay_from: u64, failed_iteration: u64) {
        self.with_recovery(|r| {
            r.rollbacks += 1;
            r.iterations_replayed += failed_iteration.saturating_sub(replay_from) + 1;
            r.replayed_ranges.push((replay_from, failed_iteration));
        });
    }

    /// Consume the collected spans into a [`QueryProfile`]. Any spans
    /// still open (error paths) are closed with zero output.
    pub fn finish(&self) -> QueryProfile {
        let mut state = self.lock();
        while let Some(frame) = state.stack.pop() {
            let mut node = frame.node;
            node.elapsed_us = frame.started.elapsed().as_micros() as u64;
            node.execs = 1;
            match state.stack.last_mut() {
                Some(parent) => parent.node.children.push(node),
                None => state.roots.push(node),
            }
        }
        QueryProfile {
            roots: std::mem::take(&mut state.roots),
            total_elapsed_us: state.started.elapsed().as_micros() as u64,
            spill: SpillProfile::default(),
            pool: PoolProfile::default(),
            admission: AdmissionProfile::default(),
            durability: DurabilityProfile::default(),
            restart: RestartProfile::default(),
        }
    }
}

// ---- minimal JSON ------------------------------------------------------
// The workspace's vendored `serde` is a no-op stub (offline build), so the
// profile carries its own tiny JSON writer + parser. It covers exactly the
// subset `to_json` emits: objects, arrays, strings and unsigned integers.

enum Json {
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn parse(text: &str) -> Result<Json> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::execution("trailing data after JSON value"));
        }
        Ok(v)
    }

    fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json> {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::execution(format!("missing JSON key '{key}'")))
    }

    fn get_opt<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
        obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn as_obj(&self, what: &str) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(Error::execution(format!("expected JSON object for {what}"))),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(Error::execution(format!("expected JSON array for {what}"))),
        }
    }

    fn as_num(&self, what: &str) -> Result<u64> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err(Error::execution(format!("expected JSON number for {what}"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(Error::execution(format!("expected JSON string for {what}"))),
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::execution(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::execution(format!(
                "unexpected JSON input at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(Error::execution("malformed JSON object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::execution("malformed JSON array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::execution("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::execution("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::execution("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::execution("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::execution("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::execution("bad JSON escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::execution("invalid UTF-8 in JSON"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|_| Error::execution(format!("bad JSON number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> QueryProfile {
        let tracer = Tracer::new();
        tracer.enter(SpanKind::Step, "Materialize t".into());
        tracer.enter(SpanKind::Operator, "SeqScan: edges".into());
        tracer.exit(10, 80);
        tracer.exit(10, 80);
        tracer.enter(SpanKind::Loop, "Initialize loop operator for t".into());
        for i in 0..3u64 {
            tracer.begin_iteration();
            tracer.enter(SpanKind::Step, "Materialize __work_t".into());
            tracer.note_rows_moved(2);
            tracer.exit(10, 80);
            tracer.enter(SpanKind::Step, "Rename __work_t to t".into());
            tracer.exit(0, 0);
            tracer.end_iteration(10 - i, 10 - i, 10);
        }
        tracer.exit(10, 80);
        tracer.enter(SpanKind::Return, "Return".into());
        tracer.exit(10, 80);
        tracer.finish()
    }

    #[test]
    fn spans_nest_and_iterations_merge() {
        let p = sample_profile();
        assert_eq!(p.roots.len(), 3);
        let loop_node = &p.roots[1];
        assert_eq!(loop_node.kind, SpanKind::Loop);
        // Body steps merged: 2 aggregated children, each executed 3 times.
        assert_eq!(loop_node.children.len(), 2);
        assert_eq!(loop_node.children[0].execs, 3);
        assert_eq!(loop_node.children[0].rows_out, 30);
        assert_eq!(loop_node.children[0].rows_moved, 6);
        // Three iteration records with decreasing deltas.
        assert_eq!(loop_node.iterations.len(), 3);
        assert_eq!(loop_node.iterations[0].delta_rows, 10);
        assert_eq!(loop_node.iterations[2].delta_rows, 8);
        assert_eq!(loop_node.iterations[2].iteration, 3);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = sample_profile();
        let json = p.to_json();
        let back = QueryProfile::from_json(&json).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn json_escapes_special_characters() {
        let tracer = Tracer::new();
        tracer.enter(SpanKind::Step, "weird \"label\"\\ with\nnewline".into());
        tracer.exit(1, 1);
        let p = tracer.finish();
        let back = QueryProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back.roots[0].label, "weird \"label\"\\ with\nnewline");
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(QueryProfile::from_json("").is_err());
        assert!(QueryProfile::from_json("{\"roots\": []}").is_err()); // missing total
        assert!(QueryProfile::from_json("{\"total_elapsed_us\": -1, \"roots\": []}").is_err());
        assert!(QueryProfile::from_json("{\"total_elapsed_us\": 1, \"roots\": []} x").is_err());
    }

    #[test]
    fn render_numbers_steps_and_prints_iteration_table() {
        let p = sample_profile();
        let text = p.render();
        assert!(text.contains("1. Materialize t"), "{text}");
        assert!(text.contains("actual rows=10"), "{text}");
        assert!(text.contains("2. Initialize loop operator"), "{text}");
        assert!(
            text.contains("Go to step 3 if loop condition holds."),
            "{text}"
        );
        assert!(text.contains("iter"), "{text}");
        assert!(text.contains("execs=3"), "{text}");
        assert!(text.contains("Total:"), "{text}");
    }

    #[test]
    fn disabled_tracer_collects_nothing() {
        let tracer = Tracer::disabled();
        tracer.enter(SpanKind::Step, "Materialize t".into());
        tracer.exit(10, 80);
        let p = tracer.finish();
        assert!(p.roots.is_empty());
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn finish_closes_abandoned_frames() {
        let tracer = Tracer::new();
        tracer.enter(SpanKind::Step, "outer".into());
        tracer.enter(SpanKind::Operator, "inner".into());
        // Error path: no exits. finish() must still produce a tree.
        let p = tracer.finish();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].children.len(), 1);
    }

    fn recovery_profile() -> QueryProfile {
        let tracer = Tracer::new();
        tracer.enter(SpanKind::Loop, "Initialize loop operator for t".into());
        tracer.note_checkpoint(128);
        tracer.begin_iteration();
        tracer.enter(SpanKind::Step, "Materialize __work_t".into());
        tracer.exit(10, 80);
        tracer.end_iteration(10, 10, 10);
        // Iteration 2 fails mid-body: partial span discarded, rollback to
        // the entry checkpoint, iterations 1-2 replayed.
        tracer.begin_iteration();
        tracer.enter(SpanKind::Step, "Materialize __work_t".into());
        tracer.exit(3, 24);
        tracer.abort_iteration();
        tracer.note_rollback(1, 2);
        tracer.exit(10, 80);
        tracer.finish()
    }

    #[test]
    fn recovery_events_attach_to_the_loop_span() {
        let p = recovery_profile();
        let loop_node = &p.roots[0];
        assert_eq!(loop_node.recovery.checkpoints_taken, 1);
        assert_eq!(loop_node.recovery.bytes_snapshotted, 128);
        assert_eq!(loop_node.recovery.rollbacks, 1);
        assert_eq!(loop_node.recovery.iterations_replayed, 2);
        assert_eq!(loop_node.recovery.replayed_ranges, vec![(1, 2)]);
        // The aborted iteration's partial span was discarded: the body
        // step aggregates one completed execution only.
        assert_eq!(loop_node.children.len(), 1);
        assert_eq!(loop_node.children[0].execs, 1);
        assert_eq!(loop_node.iterations.len(), 1);
    }

    #[test]
    fn recovery_json_round_trips_and_is_absent_when_empty() {
        let p = recovery_profile();
        let json = p.to_json();
        assert!(json.contains("\"recovery\""), "{json}");
        assert_eq!(QueryProfile::from_json(&json).unwrap(), p);
        // Recovery-free profiles keep the PR-2 format and still parse.
        let clean = sample_profile();
        let clean_json = clean.to_json();
        assert!(!clean_json.contains("\"recovery\""), "{clean_json}");
        assert_eq!(QueryProfile::from_json(&clean_json).unwrap(), clean);
    }

    #[test]
    fn render_shows_the_recovery_story() {
        let p = recovery_profile();
        let text = p.render();
        assert!(text.contains("recovery: checkpoints=1 (128 B)"), "{text}");
        assert!(text.contains("rollbacks=1"), "{text}");
        assert!(text.contains("[1-2]"), "{text}");
    }

    #[test]
    fn retry_outside_a_loop_lands_on_the_innermost_span() {
        let tracer = Tracer::new();
        tracer.enter(SpanKind::Return, "Return".into());
        tracer.note_retry();
        tracer.exit(5, 40);
        let p = tracer.finish();
        assert_eq!(p.roots[0].recovery.retries, 1);
        assert!(!p.roots[0].recovery.is_empty());
    }

    #[test]
    fn admission_json_round_trips_and_is_absent_when_empty() {
        let mut p = sample_profile();
        let clean_json = p.to_json();
        assert!(!clean_json.contains("\"admission\""), "{clean_json}");
        assert_eq!(QueryProfile::from_json(&clean_json).unwrap(), p);
        p.admission = AdmissionProfile {
            waited_ms: 12,
            queue_depth: 3,
            shed: 1,
        };
        let json = p.to_json();
        assert!(json.contains("\"admission\""), "{json}");
        assert_eq!(QueryProfile::from_json(&json).unwrap(), p);
        let text = p.render();
        assert!(
            text.contains("admission: waited_ms=12, queue_depth=3, shed=1"),
            "{text}"
        );
    }

    #[test]
    fn restart_json_round_trips_and_is_absent_when_empty() {
        let mut p = sample_profile();
        let clean_json = p.to_json();
        assert!(!clean_json.contains("\"restart\""), "{clean_json}");
        assert_eq!(QueryProfile::from_json(&clean_json).unwrap(), p);
        p.restart = RestartProfile {
            adopted_epoch: 4,
            resumed_iteration: 8,
            replayed_iterations: 2,
        };
        let json = p.to_json();
        assert!(json.contains("\"restart\""), "{json}");
        assert_eq!(QueryProfile::from_json(&json).unwrap(), p);
        let text = p.render();
        assert!(
            text.contains("restart: adopted_epoch=4 resumed_iteration=8 replayed_iterations=2"),
            "{text}"
        );
    }

    #[test]
    fn find_locates_nested_nodes() {
        let p = sample_profile();
        assert!(p.find("SeqScan").is_some());
        assert!(p.find("Rename __work_t").is_some());
        assert!(p.find("nonexistent").is_none());
        assert_eq!(p.loops().len(), 1);
    }
}
