//! Scalar values and their types.
//!
//! The engine is dynamically typed at execution time: every cell is a
//! [`Value`]. SQL three-valued logic is represented with [`Value::Null`].
//! Numeric coercion follows the usual analytical-engine rules: an operation
//! mixing `Int` and `Float` widens to `Float`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// Logical type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// The type of `NULL` literals before coercion.
    Null,
}

impl DataType {
    /// Whether values of this type can be used in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Result type of an arithmetic operation over `self` and `other`.
    pub fn widen(self, other: DataType) -> DataType {
        match (self, other) {
            (DataType::Float, _) | (_, DataType::Float) => DataType::Float,
            (DataType::Null, t) | (t, DataType::Null) => t,
            _ => DataType::Int,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar cell.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The runtime type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64; errors on non-numeric types.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(Error::type_error(format!(
                "cannot interpret {} as a number",
                other.data_type()
            ))),
        }
    }

    /// Integer view; floats are truncated, errors on non-numeric types.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            Value::Bool(b) => Ok(i64::from(*b)),
            other => Err(Error::type_error(format!(
                "cannot interpret {} as an integer",
                other.data_type()
            ))),
        }
    }

    /// Boolean view for predicates. NULL maps to `None` (unknown).
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(Error::type_error(format!(
                "predicate evaluated to {}, expected BOOL",
                other.data_type()
            ))),
        }
    }

    /// Cast to `target`, following SQL CAST semantics. NULL casts to NULL.
    pub fn cast(&self, target: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        match target {
            DataType::Int => Ok(Value::Int(match self {
                Value::Int(i) => *i,
                Value::Float(f) => *f as i64,
                Value::Bool(b) => i64::from(*b),
                Value::Text(s) => s
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| Error::type_error(format!("cannot cast '{s}' to INT")))?,
                Value::Null => unreachable!(),
            })),
            DataType::Float => Ok(Value::Float(match self {
                Value::Int(i) => *i as f64,
                Value::Float(f) => *f,
                Value::Bool(b) => f64::from(u8::from(*b)),
                Value::Text(s) => s
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| Error::type_error(format!("cannot cast '{s}' to FLOAT")))?,
                Value::Null => unreachable!(),
            })),
            DataType::Text => Ok(Value::Text(self.to_string())),
            DataType::Bool => match self {
                Value::Bool(b) => Ok(Value::Bool(*b)),
                Value::Int(i) => Ok(Value::Bool(*i != 0)),
                other => Err(Error::type_error(format!(
                    "cannot cast {} to BOOL",
                    other.data_type()
                ))),
            },
            DataType::Null => Ok(Value::Null),
        }
    }

    /// SQL equality: returns `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other) == Ordering::Equal)
    }

    /// SQL comparison: returns `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_total(other))
    }

    /// Total order used for sorting and grouping. NULLs sort first; numeric
    /// types compare by value across Int/Float; NaN sorts after all other
    /// floats so the order stays total.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Heterogeneous non-numeric comparisons order by type tag so the
            // order stays total for sorting; SQL comparisons between such
            // types are rejected earlier, at expression-evaluation time.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaN handling: NaN > everything, NaN == NaN.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp only fails on NaN"),
        }
    })
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2,
        Value::Text(_) => 3,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float hash identically when they represent the same
            // number, matching `cmp_total` (2 == 2.0 must land in one hash
            // group for joins and GROUP BY).
            Value::Int(i) => {
                state.write_u8(2);
                canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Text(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0_f64.to_bits() // fold -0.0 into +0.0
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v.into())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_and_hash_agree() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_folds_into_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [Value::Int(1), Value::Null, Value::Int(0)];
        vs.sort();
        assert!(vs[0].is_null());
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn cast_text_to_numbers() {
        assert_eq!(
            Value::Text(" 42 ".into()).cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Text("2.5".into()).cast(DataType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert!(Value::Text("abc".into()).cast(DataType::Int).is_err());
    }

    #[test]
    fn cast_null_is_null() {
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
    }

    #[test]
    fn nan_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert_eq!(nan.cmp_total(&Value::Float(1e300)), Ordering::Greater);
    }

    #[test]
    fn as_bool_rejects_numbers() {
        assert!(Value::Int(1).as_bool().is_err());
        assert_eq!(Value::Bool(true).as_bool().unwrap(), Some(true));
        assert_eq!(Value::Null.as_bool().unwrap(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn widen_rules() {
        assert_eq!(DataType::Int.widen(DataType::Float), DataType::Float);
        assert_eq!(DataType::Int.widen(DataType::Int), DataType::Int);
        assert_eq!(DataType::Null.widen(DataType::Int), DataType::Int);
    }
}
