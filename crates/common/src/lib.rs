//! Shared foundation types for the DBSpinner reproduction.
//!
//! This crate holds the pieces every other crate in the workspace needs:
//! scalar [`Value`]s and their [`DataType`]s, relation [`Schema`]s, the
//! in-memory [`Row`]/[`Batch`] representation, the workspace-wide
//! [`Error`] type, and the [`EngineConfig`] feature toggles that drive the
//! paper's ablation experiments (Figures 8-11 of DBSpinner, ICDE 2021).

#![warn(missing_docs)]

pub mod admission;
pub mod approx;
pub mod config;
pub mod error;
pub mod guard;
pub mod memory;
pub mod profile;
pub mod row;
pub mod schema;
pub mod value;

pub use admission::{
    AdmissionController, AdmissionPermit, AdmissionSnapshot, MemoryGate, QueryClass,
};
pub use approx::{floats_approx_eq, rows_approx_eq, values_approx_eq, DEFAULT_TOLERANCE};
pub use config::{EngineConfig, FaultConfig, FaultKind, FaultSite, FaultTrigger, RecoveryPolicy};
pub use error::{Error, ErrorClass, Result};
pub use guard::QueryGuard;
pub use memory::{
    MemoryAccountant, MemoryCounters, MemoryMetrics, RegionId, RegionKind, SpillFaultHook,
    SpillRequest, TransientRegion,
};
pub use profile::{
    AdmissionProfile, DurabilityProfile, IterationProfile, PoolProfile, ProfileNode, QueryProfile,
    RecoveryProfile, RestartProfile, SpanKind, SpillProfile, Tracer,
};
pub use row::{batch_of, row_of, Batch, Row};
pub use schema::{Field, Schema, SchemaRef};
pub use value::{DataType, Value};
