//! Central memory accounting for intermediate state, and the victim
//! selection that drives spill-to-disk under pressure.
//!
//! Every allocator of intermediate state — materialized temp results,
//! working/delta tables, the §V-A common-result tables, hash-aggregate and
//! hash-join build sides, and checkpoint snapshots — registers a *region*
//! with the [`MemoryAccountant`]. The accountant tracks resident bytes
//! against a high-water mark (`spill_threshold_bytes`); when the mark is
//! crossed, [`MemoryAccountant::spill_plan`] picks victims in coldness
//! order — loop-invariant state first (common results, then checkpoints),
//! then working tables, then other temp results — and the executor spills
//! them through the storage layer's `SpillManager`.
//!
//! The accountant is bookkeeping only: it never does I/O itself, so it can
//! live in `spinner-common` below the storage crate. Disk writes/reads and
//! their fault-injection hooks ([`SpillFaultHook`]) are wired in by the
//! engine, keeping the crate dependency graph acyclic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::FaultSite;
use crate::error::Result;

/// Identifier of one registered memory region.
pub type RegionId = u64;

/// What kind of intermediate state a region holds. The kind determines
/// both which store can spill it and its victim priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A §V-A common-result table: loop-invariant, materialized once
    /// before the loop — the coldest state and the first spill victim.
    CommonResult,
    /// A loop checkpoint snapshot: only read again on rollback.
    Checkpoint,
    /// A working or delta table of a running loop.
    WorkingTable,
    /// Any other named temp result (including the live CTE table).
    TempResult,
    /// A hash-aggregate group table being built; pinned (never spilled).
    HashAggregate,
    /// A hash-join build side being probed; pinned (never spilled).
    HashJoinBuild,
    /// A cached loop-invariant join build (hash table + partitioned rows)
    /// held across iterations by the join-state cache. Derived state that
    /// can always be rebuilt from its source temp, so it is the cheapest
    /// thing to give up under pressure: evicted (dropped), not spilled.
    JoinBuild,
}

impl RegionKind {
    /// Victim-selection priority: lower spills first; `None` means the
    /// region is pinned in memory (operator state in active use).
    pub fn victim_priority(self) -> Option<u8> {
        match self {
            RegionKind::JoinBuild => Some(0),
            RegionKind::CommonResult => Some(0),
            RegionKind::Checkpoint => Some(1),
            RegionKind::WorkingTable => Some(2),
            RegionKind::TempResult => Some(3),
            RegionKind::HashAggregate | RegionKind::HashJoinBuild => None,
        }
    }

    /// Stable lowercase name (observability, spill file names).
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::CommonResult => "common_result",
            RegionKind::Checkpoint => "checkpoint",
            RegionKind::WorkingTable => "working_table",
            RegionKind::TempResult => "temp_result",
            RegionKind::HashAggregate => "hash_aggregate",
            RegionKind::HashJoinBuild => "hash_join_build",
            RegionKind::JoinBuild => "join_build",
        }
    }

    /// Classify a temp-registry name by the planner's naming conventions:
    /// `__common_*` are loop-invariant common results, `__work*` and
    /// `__delta_*` are loop working state, everything else is a plain
    /// temp result.
    pub fn of_temp_name(name: &str) -> RegionKind {
        if name.starts_with("__common_") {
            RegionKind::CommonResult
        } else if name.starts_with("__work") || name.starts_with("__delta_") {
            RegionKind::WorkingTable
        } else {
            RegionKind::TempResult
        }
    }
}

/// Cumulative spill observability counters, shared between the accountant,
/// the storage layer's spill manager, and the engine (which drains them
/// into `ExecStats` after every statement).
#[derive(Debug, Default)]
pub struct MemoryMetrics {
    spill_events: AtomicU64,
    spill_bytes_written: AtomicU64,
    spill_bytes_read: AtomicU64,
    peak_tracked_bytes: AtomicU64,
    durable_epochs: AtomicU64,
    verified_reads: AtomicU64,
    corrupt_detected: AtomicU64,
    fsyncs: AtomicU64,
}

/// One drained snapshot of [`MemoryMetrics`]; counters reset to zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryCounters {
    /// Regions written to spill files.
    pub spill_events: u64,
    /// Bytes written to spill files (on-disk size).
    pub spill_bytes_written: u64,
    /// Bytes read back from spill files (on-disk size).
    pub spill_bytes_read: u64,
    /// High-water mark of resident tracked bytes.
    pub peak_tracked_bytes: u64,
    /// Checkpoint epochs committed durably to the manifest.
    pub durable_epochs: u64,
    /// Spill/checkpoint files read back with every checksum verified.
    pub verified_reads: u64,
    /// Reads that failed verification (torn write, bit rot, truncation).
    pub corrupt_detected: u64,
    /// `fsync` calls issued by the atomic-write protocol (file + dir).
    pub fsyncs: u64,
}

impl MemoryMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one region spilled to disk, `bytes` on-disk bytes written.
    pub fn note_spill_write(&self, bytes: u64) {
        self.spill_events.fetch_add(1, Ordering::Relaxed);
        self.spill_bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record one spilled region read back, `bytes` on-disk bytes read.
    pub fn note_spill_read(&self, bytes: u64) {
        self.spill_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Raise the resident-bytes high-water mark to at least `resident`.
    pub fn note_resident(&self, resident: u64) {
        self.peak_tracked_bytes
            .fetch_max(resident, Ordering::Relaxed);
    }

    /// Record one checkpoint epoch committed durably to the manifest.
    pub fn note_epoch(&self) {
        self.durable_epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one on-disk artifact read back with all checksums verified.
    pub fn note_verified_read(&self) {
        self.verified_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one read that failed checksum/trailer verification.
    pub fn note_corrupt_detected(&self) {
        self.corrupt_detected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `fsync` issued by the atomic-write protocol.
    pub fn note_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Read and reset all counters (end of statement).
    pub fn drain(&self) -> MemoryCounters {
        MemoryCounters {
            spill_events: self.spill_events.swap(0, Ordering::Relaxed),
            spill_bytes_written: self.spill_bytes_written.swap(0, Ordering::Relaxed),
            spill_bytes_read: self.spill_bytes_read.swap(0, Ordering::Relaxed),
            peak_tracked_bytes: self.peak_tracked_bytes.swap(0, Ordering::Relaxed),
            durable_epochs: self.durable_epochs.swap(0, Ordering::Relaxed),
            verified_reads: self.verified_reads.swap(0, Ordering::Relaxed),
            corrupt_detected: self.corrupt_detected.swap(0, Ordering::Relaxed),
            fsyncs: self.fsyncs.swap(0, Ordering::Relaxed),
        }
    }
}

/// Fault-injection hook for spill I/O, implemented by the engine over its
/// `FaultInjector` so the storage layer can fire `FaultSite::SpillWrite` /
/// `FaultSite::SpillRead` without depending on the exec crate.
pub trait SpillFaultHook: Send + Sync + std::fmt::Debug {
    /// Fire the injection point for `site`; an `Err` aborts the spill
    /// operation as if the disk had failed.
    fn hit(&self, site: FaultSite) -> Result<()>;
}

/// One spill victim chosen by [`MemoryAccountant::spill_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRequest {
    /// The region to spill.
    pub id: RegionId,
    /// The owner's key for the region (temp-registry name or loop id).
    pub name: String,
    /// Region kind; tells the executor which store owns the region.
    pub kind: RegionKind,
    /// Estimated resident bytes the spill would free.
    pub bytes: u64,
}

#[derive(Debug)]
struct Region {
    name: String,
    kind: RegionKind,
    bytes: u64,
    resident: bool,
    last_touch: u64,
}

/// Tracks every live region of intermediate state and decides what to
/// spill when resident bytes cross the configured high-water mark.
///
/// Charge/release protocol: owners call [`register`](Self::register) when
/// state is allocated, [`touch`](Self::touch) on access,
/// [`note_spilled`](Self::note_spilled) / [`note_rehydrated`](Self::note_rehydrated)
/// as the state moves to and from disk, and [`release`](Self::release)
/// when it is dropped. All methods take `&self` and are thread-safe.
#[derive(Debug)]
pub struct MemoryAccountant {
    threshold: u64,
    regions: Mutex<HashMap<RegionId, Region>>,
    next_id: AtomicU64,
    clock: AtomicU64,
    resident: AtomicU64,
    metrics: Arc<MemoryMetrics>,
}

impl MemoryAccountant {
    /// Accountant with the given spill high-water mark in bytes.
    pub fn new(threshold: u64, metrics: Arc<MemoryMetrics>) -> Self {
        MemoryAccountant {
            threshold,
            regions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            clock: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            metrics,
        }
    }

    /// The configured spill high-water mark in bytes.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The shared metrics sink.
    pub fn metrics(&self) -> &Arc<MemoryMetrics> {
        &self.metrics
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Register a new resident region of `bytes` estimated bytes.
    pub fn register(&self, name: &str, kind: RegionKind, bytes: u64) -> RegionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let last_touch = self.tick();
        self.regions.lock().expect("accountant lock").insert(
            id,
            Region {
                name: name.to_string(),
                kind,
                bytes,
                resident: true,
                last_touch,
            },
        );
        let resident = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.metrics.note_resident(resident);
        id
    }

    /// Mark a region as recently used (affects victim coldness order).
    pub fn touch(&self, id: RegionId) {
        let tick = self.tick();
        if let Some(r) = self.regions.lock().expect("accountant lock").get_mut(&id) {
            r.last_touch = tick;
        }
    }

    /// Re-key a region after the `rename` operator moves its owner entry.
    pub fn rename(&self, id: RegionId, name: &str) {
        if let Some(r) = self.regions.lock().expect("accountant lock").get_mut(&id) {
            r.name = name.to_string();
        }
    }

    /// The region moved to disk: its bytes no longer count as resident.
    pub fn note_spilled(&self, id: RegionId) {
        let mut regions = self.regions.lock().expect("accountant lock");
        if let Some(r) = regions.get_mut(&id) {
            if r.resident {
                r.resident = false;
                self.resident.fetch_sub(r.bytes, Ordering::Relaxed);
            }
        }
    }

    /// The region was read back from disk and is resident again.
    pub fn note_rehydrated(&self, id: RegionId) {
        let tick = self.tick();
        let mut regions = self.regions.lock().expect("accountant lock");
        if let Some(r) = regions.get_mut(&id) {
            if !r.resident {
                r.resident = true;
                r.last_touch = tick;
                let resident = self.resident.fetch_add(r.bytes, Ordering::Relaxed) + r.bytes;
                self.metrics.note_resident(resident);
            }
        }
    }

    /// The region's owner dropped it; stop tracking it entirely.
    pub fn release(&self, id: RegionId) {
        let mut regions = self.regions.lock().expect("accountant lock");
        if let Some(r) = regions.remove(&id) {
            if r.resident {
                self.resident.fetch_sub(r.bytes, Ordering::Relaxed);
            }
        }
    }

    /// Bytes of tracked state currently resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Number of regions currently tracked (resident or spilled). Used by
    /// leak checks: after a statement completes and its temps are dropped,
    /// this must return to its pre-statement baseline.
    pub fn region_count(&self) -> usize {
        self.regions.lock().expect("accountant lock").len()
    }

    /// Whether resident bytes currently exceed the high-water mark.
    pub fn over_threshold(&self) -> bool {
        self.resident_bytes() > self.threshold
    }

    /// Pick spill victims until the projected resident total is back under
    /// the high-water mark. Victims are resident, spillable (see
    /// [`RegionKind::victim_priority`]), not named in `protect`, and
    /// ordered coldest-first: (kind priority, last touch). Regions named in
    /// `protect` — typically the table the executor just wrote — are never
    /// chosen.
    pub fn spill_plan(&self, protect: &[&str]) -> Vec<SpillRequest> {
        let mut resident = self.resident_bytes();
        if resident <= self.threshold {
            return Vec::new();
        }
        let regions = self.regions.lock().expect("accountant lock");
        let mut victims: Vec<(&RegionId, &Region, u8)> = regions
            .iter()
            .filter(|(_, r)| r.resident && !protect.contains(&r.name.as_str()))
            .filter_map(|(id, r)| r.kind.victim_priority().map(|p| (id, r, p)))
            .collect();
        victims.sort_by_key(|(_, r, p)| (*p, r.last_touch));
        let mut plan = Vec::new();
        for (id, r, _) in victims {
            if resident <= self.threshold {
                break;
            }
            plan.push(SpillRequest {
                id: *id,
                name: r.name.clone(),
                kind: r.kind,
                bytes: r.bytes,
            });
            resident = resident.saturating_sub(r.bytes);
        }
        plan
    }

    /// Track a short-lived pinned allocation (hash-aggregate or hash-join
    /// build state); the region is released when the returned guard drops.
    pub fn track_transient(&self, name: &str, kind: RegionKind, bytes: u64) -> TransientRegion<'_> {
        let id = self.register(name, kind, bytes);
        TransientRegion {
            accountant: self,
            id,
        }
    }
}

/// RAII guard for a pinned operator-state region; releases on drop.
#[derive(Debug)]
pub struct TransientRegion<'a> {
    accountant: &'a MemoryAccountant,
    id: RegionId,
}

impl Drop for TransientRegion<'_> {
    fn drop(&mut self) {
        self.accountant.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accountant(threshold: u64) -> MemoryAccountant {
        MemoryAccountant::new(threshold, Arc::new(MemoryMetrics::new()))
    }

    #[test]
    fn register_release_tracks_resident_bytes_and_peak() {
        let a = accountant(1_000);
        let x = a.register("x", RegionKind::TempResult, 300);
        let y = a.register("y", RegionKind::TempResult, 400);
        assert_eq!(a.resident_bytes(), 700);
        a.release(x);
        assert_eq!(a.resident_bytes(), 400);
        a.release(y);
        assert_eq!(a.resident_bytes(), 0);
        assert_eq!(a.metrics().drain().peak_tracked_bytes, 700);
    }

    #[test]
    fn spill_plan_empty_under_threshold() {
        let a = accountant(1_000);
        a.register("x", RegionKind::TempResult, 500);
        assert!(!a.over_threshold());
        assert!(a.spill_plan(&[]).is_empty());
    }

    #[test]
    fn spill_plan_orders_cold_loop_invariant_state_first() {
        let a = accountant(100);
        let work = a.register("__work_pr_2", RegionKind::WorkingTable, 200);
        let common = a.register("__common_1", RegionKind::CommonResult, 200);
        let ckpt = a.register("pr", RegionKind::Checkpoint, 200);
        let cte = a.register("__cte_pr_1", RegionKind::TempResult, 200);
        // Touch order must not override kind priority between kinds.
        a.touch(common);
        let plan = a.spill_plan(&[]);
        let order: Vec<RegionId> = plan.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![common, ckpt, work, cte]);
    }

    #[test]
    fn spill_plan_stops_once_under_threshold_and_respects_protect() {
        let a = accountant(250);
        a.register("__common_1", RegionKind::CommonResult, 200);
        a.register("b", RegionKind::TempResult, 200);
        let c = a.register("c", RegionKind::TempResult, 200);
        a.touch(c);
        let plan = a.spill_plan(&["b"]);
        // 600 resident; spilling common (200) then c (200) reaches 200 <= 250.
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].name, "__common_1");
        assert_eq!(plan[1].name, "c");
    }

    #[test]
    fn pinned_kinds_are_never_victims() {
        let a = accountant(0);
        let _t = a.track_transient("join build", RegionKind::HashJoinBuild, 1_000);
        a.register("agg", RegionKind::HashAggregate, 1_000);
        assert!(a.over_threshold());
        assert!(a.spill_plan(&[]).is_empty());
    }

    #[test]
    fn transient_guard_releases_on_drop() {
        let a = accountant(1_000);
        {
            let _t = a.track_transient("agg p0", RegionKind::HashAggregate, 640);
            assert_eq!(a.resident_bytes(), 640);
        }
        assert_eq!(a.resident_bytes(), 0);
    }

    #[test]
    fn spill_and_rehydrate_move_bytes_out_and_back() {
        let a = accountant(100);
        let id = a.register("x", RegionKind::TempResult, 400);
        a.note_spilled(id);
        assert_eq!(a.resident_bytes(), 0);
        // Idempotent: double-spill must not underflow.
        a.note_spilled(id);
        assert_eq!(a.resident_bytes(), 0);
        a.note_rehydrated(id);
        assert_eq!(a.resident_bytes(), 400);
        a.note_rehydrated(id);
        assert_eq!(a.resident_bytes(), 400);
        a.release(id);
        assert_eq!(a.resident_bytes(), 0);
    }

    #[test]
    fn temp_name_classification_follows_planner_conventions() {
        assert_eq!(
            RegionKind::of_temp_name("__common_1"),
            RegionKind::CommonResult
        );
        assert_eq!(
            RegionKind::of_temp_name("__work_pr_2"),
            RegionKind::WorkingTable
        );
        assert_eq!(
            RegionKind::of_temp_name("__delta_pr"),
            RegionKind::WorkingTable
        );
        assert_eq!(
            RegionKind::of_temp_name("__cte_pr_1"),
            RegionKind::TempResult
        );
    }

    #[test]
    fn metrics_drain_resets() {
        let m = MemoryMetrics::new();
        m.note_spill_write(100);
        m.note_spill_write(50);
        m.note_spill_read(70);
        m.note_resident(900);
        let c = m.drain();
        assert_eq!(c.spill_events, 2);
        assert_eq!(c.spill_bytes_written, 150);
        assert_eq!(c.spill_bytes_read, 70);
        assert_eq!(c.peak_tracked_bytes, 900);
        assert_eq!(m.drain(), MemoryCounters::default());
    }
}
