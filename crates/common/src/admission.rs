//! Global admission control: gate query start against capacity and
//! memory headroom, with a bounded FIFO wait queue and typed shed-load
//! errors.
//!
//! The single-query robustness machinery (guards, budgets, spill) keeps
//! *one* statement bounded; the [`AdmissionController`] is what lets many
//! sessions share one engine safely. Every plan-executing statement asks
//! for an [`AdmissionPermit`] before touching the executor:
//!
//! * if fewer than `max_concurrent` queries are running, the queue is
//!   empty, and the [`MemoryGate`] reports headroom, the query is
//!   admitted immediately;
//! * otherwise it joins a **bounded FIFO queue** — arriving when the
//!   queue is already at `queue_limit` sheds the query right away with
//!   [`Error::Overloaded`] (bounded latency beats unbounded backlog);
//! * a queued query that waits past its [`QueryClass`]'s admission
//!   timeout is shed with [`Error::AdmissionTimeout`];
//! * once draining ([`AdmissionController::begin_drain`]), every new or
//!   queued query is shed with [`Error::ShuttingDown`] while in-flight
//!   permits run to completion.
//!
//! The permit is RAII: dropping it (success *or* any error path,
//! including a killed connection whose guard cancelled the query)
//! releases the slot and wakes the next waiter, so a shed or dead query
//! can never leak capacity. FIFO is strict: only the queue's front
//! ticket may admit, so a memory-blocked front blocks everyone behind it
//! rather than starving.
//!
//! Deadlock note: the memory gate is ignored when nothing is running —
//! if zero queries are active, nothing will ever release memory, so the
//! front waiter is admitted regardless and the spill machinery deals
//! with pressure inside the query.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};

/// Scheduling class of one statement, decided from its plan shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Point/OLTP-ish work: no loop operator in the plan. Gets the
    /// (typically short) `admission_timeout_ms`.
    Interactive,
    /// Iterative/analytical work: the plan contains a loop operator.
    /// Gets the (typically longer) `admission_batch_timeout_ms`.
    Batch,
}

impl QueryClass {
    /// Stable lowercase name (observability, artifacts).
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Batch => "batch",
        }
    }
}

/// Memory-headroom source consulted at admission time. Implemented by
/// the engine over its spill environment's `MemoryAccountant`; kept as a
/// trait so this crate stays below the storage layer.
pub trait MemoryGate: Send + Sync + std::fmt::Debug {
    /// Whether tracked resident intermediate bytes currently exceed the
    /// spill high-water mark. `true` defers admission (unless nothing is
    /// running — see the module docs' deadlock note).
    fn over_threshold(&self) -> bool;
}

/// Point-in-time view of the controller (observability, leak checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionSnapshot {
    /// Queries currently holding a permit.
    pub active: u64,
    /// Queries currently waiting in the FIFO queue.
    pub queued: u64,
    /// Permits granted since construction.
    pub admitted_total: u64,
    /// Queries shed because the queue was full.
    pub shed_overloaded: u64,
    /// Queries shed because their admission timeout expired.
    pub shed_timeout: u64,
    /// Queries shed because the controller was draining.
    pub shed_shutdown: u64,
    /// Deepest the wait queue has ever been.
    pub peak_queue_depth: u64,
}

impl AdmissionSnapshot {
    /// Total shed decisions of any kind.
    pub fn shed_total(&self) -> u64 {
        self.shed_overloaded + self.shed_timeout + self.shed_shutdown
    }
}

/// Mutable controller state under one lock; the condvar signals slot
/// releases, queue movement and drain.
#[derive(Debug, Default)]
struct State {
    active: u64,
    queue: VecDeque<u64>,
    next_ticket: u64,
    draining: bool,
    admitted_total: u64,
    shed_overloaded: u64,
    shed_timeout: u64,
    shed_shutdown: u64,
    peak_queue_depth: u64,
}

/// Gates query start for one engine. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionController {
    max_concurrent: u64,
    queue_limit: u64,
    interactive_timeout: Option<Duration>,
    batch_timeout: Option<Duration>,
    memory: Option<Arc<dyn MemoryGate>>,
    state: Mutex<State>,
    changed: Condvar,
}

/// Memory headroom can change without a permit release (spills run
/// inside queries), so blocked waiters re-poll at this cadence instead
/// of trusting the condvar alone.
const MEMORY_POLL: Duration = Duration::from_millis(10);

impl AdmissionController {
    /// Controller admitting at most `max_concurrent` queries, queueing at
    /// most `queue_limit` more, with per-class admission timeouts and an
    /// optional memory-headroom gate.
    pub fn new(
        max_concurrent: usize,
        queue_limit: usize,
        interactive_timeout_ms: Option<u64>,
        batch_timeout_ms: Option<u64>,
        memory: Option<Arc<dyn MemoryGate>>,
    ) -> Self {
        AdmissionController {
            max_concurrent: max_concurrent.max(1) as u64,
            queue_limit: queue_limit as u64,
            interactive_timeout: interactive_timeout_ms.map(Duration::from_millis),
            batch_timeout: batch_timeout_ms.map(Duration::from_millis),
            memory,
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
        }
    }

    /// The configured concurrency cap.
    pub fn max_concurrent(&self) -> u64 {
        self.max_concurrent
    }

    /// Lock the state, recovering from poison: the critical sections
    /// below only move plain counters and a `VecDeque`, which stay
    /// consistent across an unwinding waiter.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn memory_ok(&self, st: &State) -> bool {
        // Never memory-block an idle engine: with nothing running,
        // nothing will release memory, so waiting would deadlock.
        st.active == 0
            || match &self.memory {
                Some(gate) => !gate.over_threshold(),
                None => true,
            }
    }

    fn timeout_for(&self, class: QueryClass) -> Option<Duration> {
        match class {
            QueryClass::Interactive => self.interactive_timeout,
            QueryClass::Batch => self.batch_timeout,
        }
    }

    /// Ask to start a query of `class`. Blocks (bounded by the class's
    /// admission timeout) until admitted; returns the RAII permit, or a
    /// typed shed error ([`Error::Overloaded`], [`Error::AdmissionTimeout`],
    /// [`Error::ShuttingDown`]).
    pub fn admit(self: &Arc<Self>, class: QueryClass) -> Result<AdmissionPermit> {
        let started = Instant::now();
        let limit = self.timeout_for(class);
        let mut st = self.lock();
        if st.draining {
            st.shed_shutdown += 1;
            return Err(Error::ShuttingDown);
        }
        // Fast path: free slot, nobody queued ahead, memory headroom.
        if st.queue.is_empty() && st.active < self.max_concurrent && self.memory_ok(&st) {
            st.active += 1;
            st.admitted_total += 1;
            return Ok(AdmissionPermit {
                controller: Arc::clone(self),
                waited_us: 0,
                queue_depth: 0,
                class,
            });
        }
        if st.queue.len() as u64 >= self.queue_limit {
            let shed = Error::Overloaded {
                active: st.active,
                queued: st.queue.len() as u64,
                limit: self.queue_limit,
            };
            st.shed_overloaded += 1;
            return Err(shed);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        let queue_depth = st.queue.len() as u64;
        st.peak_queue_depth = st.peak_queue_depth.max(queue_depth);
        loop {
            if st.draining {
                st.queue.retain(|&t| t != ticket);
                st.shed_shutdown += 1;
                self.changed.notify_all();
                return Err(Error::ShuttingDown);
            }
            if st.queue.front() == Some(&ticket)
                && st.active < self.max_concurrent
                && self.memory_ok(&st)
            {
                st.queue.pop_front();
                st.active += 1;
                st.admitted_total += 1;
                // The next ticket in line may also be admittable.
                self.changed.notify_all();
                return Ok(AdmissionPermit {
                    controller: Arc::clone(self),
                    waited_us: started.elapsed().as_micros() as u64,
                    queue_depth,
                    class,
                });
            }
            let mut wait = MEMORY_POLL;
            if let Some(limit) = limit {
                let elapsed = started.elapsed();
                if elapsed >= limit {
                    st.queue.retain(|&t| t != ticket);
                    st.shed_timeout += 1;
                    self.changed.notify_all();
                    return Err(Error::AdmissionTimeout {
                        waited_ms: elapsed.as_millis() as u64,
                        limit_ms: limit.as_millis() as u64,
                    });
                }
                wait = wait.min(limit - elapsed);
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, wait)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Release one permit's slot (called by [`AdmissionPermit::drop`]).
    fn release(&self) {
        let mut st = self.lock();
        st.active = st.active.saturating_sub(1);
        self.changed.notify_all();
    }

    /// Stop admitting: every subsequent or queued `admit` fails with
    /// [`Error::ShuttingDown`]; in-flight permits finish normally.
    pub fn begin_drain(&self) {
        let mut st = self.lock();
        st.draining = true;
        self.changed.notify_all();
    }

    /// Whether [`begin_drain`](Self::begin_drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Block until no permits are outstanding, up to `timeout`. Returns
    /// whether the controller went idle in time.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        while st.active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        true
    }

    /// Current counters. `active == 0 && queued == 0` after a workload
    /// completes is the no-leaked-slots invariant the CI gate checks.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let st = self.lock();
        AdmissionSnapshot {
            active: st.active,
            queued: st.queue.len() as u64,
            admitted_total: st.admitted_total,
            shed_overloaded: st.shed_overloaded,
            shed_timeout: st.shed_timeout,
            shed_shutdown: st.shed_shutdown,
            peak_queue_depth: st.peak_queue_depth,
        }
    }
}

/// RAII admission slot: held for the duration of one statement, released
/// (waking the next waiter) on drop — every exit path, including panics
/// and cancelled queries, gives the slot back.
#[derive(Debug)]
pub struct AdmissionPermit {
    controller: Arc<AdmissionController>,
    waited_us: u64,
    queue_depth: u64,
    class: QueryClass,
}

impl AdmissionPermit {
    /// Microseconds spent waiting in the admission queue (0 = fast path).
    pub fn waited_us(&self) -> u64 {
        self.waited_us
    }

    /// Queue depth at enqueue time (0 = admitted on the fast path).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth
    }

    /// The class this permit was admitted under.
    pub fn class(&self) -> QueryClass {
        self.class
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.controller.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn controller(max: usize, queue: usize) -> Arc<AdmissionController> {
        Arc::new(AdmissionController::new(max, queue, None, None, None))
    }

    #[test]
    fn fast_path_admits_up_to_capacity() {
        let c = controller(2, 4);
        let a = c.admit(QueryClass::Interactive).unwrap();
        let b = c.admit(QueryClass::Batch).unwrap();
        assert_eq!(a.waited_us(), 0);
        assert_eq!(b.queue_depth(), 0);
        let snap = c.snapshot();
        assert_eq!(snap.active, 2);
        assert_eq!(snap.admitted_total, 2);
        drop(a);
        drop(b);
        assert_eq!(c.snapshot().active, 0, "permits release on drop");
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let c = Arc::new(AdmissionController::new(1, 0, Some(50), None, None));
        let _held = c.admit(QueryClass::Interactive).unwrap();
        match c.admit(QueryClass::Interactive) {
            Err(Error::Overloaded {
                active,
                queued,
                limit,
            }) => {
                assert_eq!(active, 1);
                assert_eq!(queued, 0);
                assert_eq!(limit, 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(c.snapshot().shed_overloaded, 1);
    }

    #[test]
    fn queued_query_times_out_with_admission_timeout() {
        let c = Arc::new(AdmissionController::new(1, 4, Some(30), None, None));
        let _held = c.admit(QueryClass::Interactive).unwrap();
        let started = Instant::now();
        match c.admit(QueryClass::Interactive) {
            Err(Error::AdmissionTimeout {
                waited_ms,
                limit_ms,
            }) => {
                assert_eq!(limit_ms, 30);
                assert!(waited_ms >= 30, "waited {waited_ms} < limit");
            }
            other => panic!("expected AdmissionTimeout, got {other:?}"),
        }
        assert!(started.elapsed() >= Duration::from_millis(30));
        let snap = c.snapshot();
        assert_eq!(snap.shed_timeout, 1);
        assert_eq!(snap.queued, 0, "timed-out ticket left the queue");
    }

    #[test]
    fn classes_use_their_own_timeouts() {
        // Batch waits longer than interactive: with the slot held for
        // ~60ms, the 20ms interactive class sheds, the unlimited batch
        // class eventually admits.
        let c = Arc::new(AdmissionController::new(1, 4, Some(20), None, None));
        let held = c.admit(QueryClass::Batch).unwrap();
        let c2 = Arc::clone(&c);
        let batch = std::thread::spawn(move || c2.admit(QueryClass::Batch).map(|p| p.waited_us()));
        assert!(matches!(
            c.admit(QueryClass::Interactive),
            Err(Error::AdmissionTimeout { .. })
        ));
        drop(held);
        let waited = batch.join().unwrap().expect("batch admits after release");
        assert!(waited > 0, "batch permit waited in the queue");
    }

    #[test]
    fn release_admits_the_next_waiter_in_fifo_order() {
        let c = controller(1, 8);
        let first = c.admit(QueryClass::Interactive).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut waiters = Vec::new();
        for i in 0..3 {
            let c = Arc::clone(&c);
            let order = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                // Stagger enqueue so ticket order is deterministic.
                std::thread::sleep(Duration::from_millis(10 * (i as u64 + 1)));
                let permit = c.admit(QueryClass::Batch).unwrap();
                order.lock().unwrap().push(i);
                // Hold briefly so the next waiter observes the release.
                std::thread::sleep(Duration::from_millis(5));
                drop(permit);
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        drop(first);
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "strict FIFO");
        let snap = c.snapshot();
        assert_eq!(snap.active, 0);
        assert_eq!(snap.queued, 0);
        assert_eq!(snap.admitted_total, 4);
        assert!(snap.peak_queue_depth >= 2);
    }

    #[test]
    fn drain_sheds_new_and_queued_queries_but_not_running_ones() {
        let c = controller(1, 8);
        let held = c.admit(QueryClass::Interactive).unwrap();
        let c2 = Arc::clone(&c);
        let queued =
            std::thread::spawn(move || c2.admit(QueryClass::Batch).map(|p| p.queue_depth()));
        std::thread::sleep(Duration::from_millis(20));
        c.begin_drain();
        assert!(matches!(queued.join().unwrap(), Err(Error::ShuttingDown)));
        assert!(matches!(
            c.admit(QueryClass::Interactive),
            Err(Error::ShuttingDown)
        ));
        // The in-flight permit still counts until dropped.
        assert!(!c.wait_idle(Duration::from_millis(10)));
        drop(held);
        assert!(c.wait_idle(Duration::from_millis(200)));
        assert_eq!(c.snapshot().shed_shutdown, 2);
    }

    #[derive(Debug)]
    struct FlagGate(AtomicBool);

    impl MemoryGate for FlagGate {
        fn over_threshold(&self) -> bool {
            self.0.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn memory_pressure_defers_admission_unless_idle() {
        let gate = Arc::new(FlagGate(AtomicBool::new(true)));
        let c = Arc::new(AdmissionController::new(
            2,
            8,
            Some(40),
            None,
            Some(Arc::clone(&gate) as Arc<dyn MemoryGate>),
        ));
        // Idle engine: admitted despite pressure (deadlock avoidance).
        let first = c.admit(QueryClass::Interactive).unwrap();
        // Busy engine + pressure: the second query waits and times out.
        assert!(matches!(
            c.admit(QueryClass::Interactive),
            Err(Error::AdmissionTimeout { .. })
        ));
        // Pressure clears: the next query sails through.
        gate.0.store(false, Ordering::Relaxed);
        let second = c.admit(QueryClass::Interactive).unwrap();
        drop(first);
        drop(second);
        assert_eq!(c.snapshot().active, 0);
    }

    #[test]
    fn snapshot_shed_total_sums_all_kinds() {
        let s = AdmissionSnapshot {
            shed_overloaded: 1,
            shed_timeout: 2,
            shed_shutdown: 3,
            ..Default::default()
        };
        assert_eq!(s.shed_total(), 6);
    }
}
