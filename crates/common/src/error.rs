//! Workspace-wide error type.
//!
//! A single error enum keeps cross-crate plumbing simple; variants are
//! grouped by pipeline stage (parse, plan, execution, catalog). The
//! `DuplicateIterationKey` variant reproduces the runtime error DBSpinner
//! raises when the iterative part of a CTE yields two updates for the same
//! row key (paper §II).

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// All errors produced by the DBSpinner reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser failure, with a 1-based character position when known.
    Parse {
        /// What went wrong.
        message: String,
        /// 1-based character offset into the SQL text, when known.
        position: Option<usize>,
    },
    /// Semantic analysis / planning failure (unknown column, arity, ...).
    Plan(String),
    /// Type mismatch discovered during planning or evaluation.
    Type(String),
    /// Runtime execution failure.
    Execution(String),
    /// Catalog object not found.
    TableNotFound(String),
    /// Catalog object already exists.
    TableExists(String),
    /// Column not found in a schema.
    ColumnNotFound(String),
    /// The iterative part produced two or more updates for one row key.
    ///
    /// Per the paper (§II), the user must restate the iterative part with an
    /// aggregation that resolves the duplicates.
    DuplicateIterationKey {
        /// The iterative CTE's user-visible name.
        cte: String,
        /// The duplicated key value, rendered as text.
        key: String,
    },
    /// An iterative CTE exceeded the configured safety bound on iterations.
    IterationLimitExceeded {
        /// The iterative CTE's user-visible name.
        cte: String,
        /// The configured `max_iterations` bound.
        limit: u64,
    },
    /// Arithmetic error (division by zero, overflow).
    Arithmetic(String),
    /// Feature understood by the grammar but not supported by this build.
    Unsupported(String),
    /// I/O error (dataset loading); stringified to keep `Error: Clone + Eq`.
    Io(String),
    /// The query was cancelled cooperatively (via `QueryGuard::cancel`).
    Cancelled,
    /// The query ran past its wall-clock deadline.
    Timeout {
        /// Milliseconds the query had been running when the check fired.
        elapsed_ms: u64,
        /// The configured timeout in milliseconds.
        limit_ms: u64,
    },
    /// A resource budget (rows materialized, rows moved, intermediate
    /// bytes) was exhausted. `used` is the amount observed when the
    /// budget tripped, so `used >= limit` always holds.
    ResourceExhausted {
        /// Which budget tripped (e.g. `rows_materialized`).
        resource: String,
        /// Amount observed when the budget tripped.
        used: u64,
        /// The configured budget.
        limit: u64,
    },
    /// A parallel partition worker panicked; the panic was caught at the
    /// partition boundary and sibling partitions were cancelled.
    WorkerPanicked {
        /// Index of the partition whose worker panicked.
        partition: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A configured fault-injection point fired (testing only).
    FaultInjected {
        /// The fault site that fired.
        site: String,
    },
    /// The engine configuration failed validation.
    InvalidConfig(String),
    /// Memory pressure demanded a spill but the disk write (or read-back)
    /// failed, so the engine could not degrade gracefully. Carries the
    /// region that needed spilling and the underlying failure text.
    SpillUnavailable {
        /// The region (temp result or checkpoint) that needed spilling.
        region: String,
        /// The underlying I/O failure, stringified.
        message: String,
    },
    /// Mid-loop recovery gave up: every rollback budgeted by
    /// `max_loop_recoveries` was spent and the loop still failed. Carries
    /// the error that exhausted the budget.
    RecoveryExhausted {
        /// The iterative CTE's user-visible name.
        cte: String,
        /// Recovery attempts consumed before giving up.
        recoveries: u64,
        /// The failure that exhausted the budget.
        source: Box<Error>,
    },
    /// The admission controller shed this query because the bounded wait
    /// queue was already full — the typed shed-load signal, returned
    /// *instead of* letting the queue grow without bound.
    Overloaded {
        /// Queries running when the shed decision was made.
        active: u64,
        /// Queries already waiting in the admission queue.
        queued: u64,
        /// The configured `admission_queue_limit`.
        limit: u64,
    },
    /// The query waited in the admission queue past its class's admission
    /// timeout and was shed without ever starting.
    AdmissionTimeout {
        /// Milliseconds spent waiting in the queue.
        waited_ms: u64,
        /// The configured admission timeout for the query's class.
        limit_ms: u64,
    },
    /// The server (or admission controller) is draining for shutdown and
    /// no longer admits new queries.
    ShuttingDown,
    /// A `WorkerPool::scope` call made no progress within the stall
    /// deadline and reclaimed its still-queued tasks — a lost-task
    /// surface instead of a coordinator hang.
    PoolStalled {
        /// Milliseconds the scope had been waiting when it gave up.
        waited_ms: u64,
        /// Tasks reclaimed from the queue without ever running.
        pending_tasks: u64,
    },
    /// An on-disk artifact (spill file, checkpoint epoch, manifest) failed
    /// its integrity verification on read: bad magic, short/torn file,
    /// checksum mismatch, or the file is missing entirely. Transient by
    /// contract — recovery falls back to an older checkpoint epoch or
    /// recomputes the region, and only gives up through the bounded
    /// `RecoveryExhausted` path.
    StorageCorrupt {
        /// The region (temp result, checkpoint epoch, or manifest) whose
        /// on-disk bytes failed verification.
        region: String,
        /// What the verifier found, stringified (offset, expected/actual).
        message: String,
    },
    /// A client tried to attach to a query handle the server does not
    /// know: never issued, already fetched, or belonging to a statement
    /// that was not adopted across the restart.
    UnknownHandle {
        /// The handle the client presented.
        handle: u64,
    },
    /// A client's bounded reconnect budget ran out without ever reaching
    /// the server — the typed end state of retry-with-backoff, so callers
    /// see one structured error instead of the last raw I/O failure.
    ConnectExhausted {
        /// Connection attempts made before giving up.
        attempts: u64,
        /// The final underlying failure, stringified.
        message: String,
    },
}

/// Coarse failure classification used by the recovery subsystem.
///
/// Transient errors (injected faults, worker panics, I/O) are worth
/// retrying against the same input snapshot; fatal errors (bad SQL, type
/// errors, tripped budgets, user cancellation) are deterministic or
/// intentional, and retrying them only wastes the recovery budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Plausibly transient: re-running the same work may succeed.
    Transient,
    /// Deterministic or user-initiated: retrying cannot help.
    Fatal,
}

impl Error {
    /// Parse error without position information.
    pub fn parse(message: impl Into<String>) -> Self {
        Error::Parse {
            message: message.into(),
            position: None,
        }
    }

    /// Parse error anchored at a character offset.
    pub fn parse_at(message: impl Into<String>, position: usize) -> Self {
        Error::Parse {
            message: message.into(),
            position: Some(position),
        }
    }

    /// Planning error.
    pub fn plan(message: impl Into<String>) -> Self {
        Error::Plan(message.into())
    }

    /// Type error.
    pub fn type_error(message: impl Into<String>) -> Self {
        Error::Type(message.into())
    }

    /// Execution error.
    pub fn execution(message: impl Into<String>) -> Self {
        Error::Execution(message.into())
    }

    /// Unsupported-feature error.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Error::Unsupported(message.into())
    }

    /// Classify this error for the recovery subsystem.
    ///
    /// Injected faults, caught worker panics, and I/O errors are
    /// [`ErrorClass::Transient`]; everything else — including cancellation,
    /// deadlines, and resource budgets, which represent deliberate limits —
    /// is [`ErrorClass::Fatal`].
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::FaultInjected { .. }
            | Error::WorkerPanicked { .. }
            | Error::Io(_)
            | Error::SpillUnavailable { .. }
            | Error::StorageCorrupt { .. }
            | Error::PoolStalled { .. } => ErrorClass::Transient,
            // Shed-load decisions (`Overloaded`, `AdmissionTimeout`,
            // `ShuttingDown`) are deliberate back-pressure: retrying
            // inside the engine would defeat the shedding, so they are
            // Fatal here — the *client* is the right retry loop.
            _ => ErrorClass::Fatal,
        }
    }

    /// Whether the recovery subsystem may retry work that failed with this
    /// error. Shorthand for `self.class() == ErrorClass::Transient`.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse {
                message,
                position: Some(p),
            } => {
                write!(f, "parse error at position {p}: {message}")
            }
            Error::Parse {
                message,
                position: None,
            } => write!(f, "parse error: {message}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::TableNotFound(t) => write!(f, "table '{t}' does not exist"),
            Error::TableExists(t) => write!(f, "table '{t}' already exists"),
            Error::ColumnNotFound(c) => write!(f, "column '{c}' does not exist"),
            Error::DuplicateIterationKey { cte, key } => write!(
                f,
                "iterative CTE '{cte}' produced multiple updates for row key {key}; \
                 add an aggregation to the iterative part to resolve duplicates"
            ),
            Error::IterationLimitExceeded { cte, limit } => write!(
                f,
                "iterative CTE '{cte}' exceeded the safety limit of {limit} iterations"
            ),
            Error::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::Timeout {
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "query timed out after {elapsed_ms} ms (limit {limit_ms} ms)"
            ),
            Error::ResourceExhausted {
                resource,
                used,
                limit,
            } => write!(
                f,
                "resource budget exhausted: {resource} used {used} of limit {limit}"
            ),
            Error::WorkerPanicked { partition, message } => {
                write!(f, "worker for partition {partition} panicked: {message}")
            }
            Error::FaultInjected { site } => write!(f, "injected fault at {site}"),
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::SpillUnavailable { region, message } => write!(
                f,
                "spill unavailable for '{region}': {message}; \
                 intermediate state cannot be moved to disk"
            ),
            Error::RecoveryExhausted {
                cte,
                recoveries,
                source,
            } => write!(
                f,
                "iterative CTE '{cte}' failed after {recoveries} recovery attempt(s): {source}"
            ),
            Error::Overloaded {
                active,
                queued,
                limit,
            } => write!(
                f,
                "server overloaded: {active} queries running, {queued} queued \
                 (queue limit {limit}); try again later"
            ),
            Error::AdmissionTimeout {
                waited_ms,
                limit_ms,
            } => write!(
                f,
                "admission timed out after waiting {waited_ms} ms (limit {limit_ms} ms); \
                 the query never started"
            ),
            Error::ShuttingDown => write!(f, "server is shutting down; no new queries admitted"),
            Error::PoolStalled {
                waited_ms,
                pending_tasks,
            } => write!(
                f,
                "worker pool made no progress for {waited_ms} ms; \
                 {pending_tasks} queued task(s) reclaimed without running"
            ),
            Error::StorageCorrupt { region, message } => write!(
                f,
                "on-disk state for '{region}' failed verification: {message}; \
                 recovery will fall back or recompute"
            ),
            Error::UnknownHandle { handle } => write!(
                f,
                "unknown query handle {handle}: never issued, already fetched, \
                 or not adopted across the restart"
            ),
            Error::ConnectExhausted { attempts, message } => write!(
                f,
                "could not connect after {attempts} attempt(s): {message}"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::parse_at("unexpected ')'", 17);
        assert_eq!(e.to_string(), "parse error at position 17: unexpected ')'");
    }

    #[test]
    fn duplicate_key_message_mentions_aggregation() {
        let e = Error::DuplicateIterationKey {
            cte: "pr".into(),
            key: "7".into(),
        };
        assert!(e.to_string().contains("aggregation"));
    }

    #[test]
    fn guardrail_errors_carry_their_numbers() {
        let t = Error::Timeout {
            elapsed_ms: 61,
            limit_ms: 50,
        };
        assert_eq!(t.to_string(), "query timed out after 61 ms (limit 50 ms)");
        let r = Error::ResourceExhausted {
            resource: "rows_materialized".into(),
            used: 1200,
            limit: 1000,
        };
        assert!(r
            .to_string()
            .contains("rows_materialized used 1200 of limit 1000"));
        let w = Error::WorkerPanicked {
            partition: 3,
            message: "boom".into(),
        };
        assert!(w.to_string().contains("partition 3"));
        assert!(w.to_string().contains("boom"));
    }

    #[test]
    fn classification_separates_transient_from_fatal() {
        assert!(Error::FaultInjected {
            site: "worker".into()
        }
        .is_retryable());
        assert!(Error::WorkerPanicked {
            partition: 0,
            message: "boom".into()
        }
        .is_retryable());
        assert!(Error::Io("disk".into()).is_retryable());
        // A failed spill is an I/O failure at heart: retryable, so a
        // failed spill *read* mid-loop triggers rollback-and-replay.
        assert!(Error::SpillUnavailable {
            region: "__cte_pr_1".into(),
            message: "disk full".into()
        }
        .is_retryable());
        // Corruption detected on read is transient by contract: recovery
        // falls back to an older epoch or recomputes the region.
        assert!(Error::StorageCorrupt {
            region: "checkpoint:pr".into(),
            message: "checksum mismatch at offset 12".into()
        }
        .is_retryable());
        assert_eq!(Error::Cancelled.class(), ErrorClass::Fatal);
        assert_eq!(
            Error::InvalidConfig("bad".into()).class(),
            ErrorClass::Fatal
        );
        assert_eq!(
            Error::Timeout {
                elapsed_ms: 2,
                limit_ms: 1
            }
            .class(),
            ErrorClass::Fatal
        );
        assert_eq!(Error::execution("oops").class(), ErrorClass::Fatal);
    }

    #[test]
    fn shed_load_errors_are_fatal_and_carry_numbers() {
        let o = Error::Overloaded {
            active: 4,
            queued: 16,
            limit: 16,
        };
        assert!(o.to_string().contains("4 queries running"));
        assert!(o.to_string().contains("queue limit 16"));
        assert_eq!(o.class(), ErrorClass::Fatal);
        let t = Error::AdmissionTimeout {
            waited_ms: 120,
            limit_ms: 100,
        };
        assert!(t.to_string().contains("waiting 120 ms"));
        assert!(t.to_string().contains("never started"));
        assert_eq!(t.class(), ErrorClass::Fatal);
        assert_eq!(Error::ShuttingDown.class(), ErrorClass::Fatal);
    }

    #[test]
    fn pool_stall_is_transient_and_names_reclaimed_tasks() {
        let e = Error::PoolStalled {
            waited_ms: 250,
            pending_tasks: 3,
        };
        assert!(e.to_string().contains("3 queued task(s)"));
        assert!(e.is_retryable(), "a stalled scope is worth one retry");
    }

    #[test]
    fn restart_errors_are_fatal_and_carry_context() {
        let u = Error::UnknownHandle { handle: 42 };
        assert!(u.to_string().contains("handle 42"));
        assert_eq!(u.class(), ErrorClass::Fatal);
        let c = Error::ConnectExhausted {
            attempts: 5,
            message: "connection refused".into(),
        };
        assert!(c.to_string().contains("5 attempt(s)"));
        assert!(c.to_string().contains("connection refused"));
        // The client's retry loop already ran; surfacing Transient here
        // would invite a second, unbounded retry loop around it.
        assert_eq!(c.class(), ErrorClass::Fatal);
    }

    #[test]
    fn recovery_exhausted_wraps_its_source() {
        let e = Error::RecoveryExhausted {
            cte: "pr".into(),
            recoveries: 3,
            source: Box::new(Error::WorkerPanicked {
                partition: 1,
                message: "boom".into(),
            }),
        };
        assert!(e.to_string().contains("after 3 recovery attempt(s)"));
        assert!(e.to_string().contains("partition 1"));
        // Exhaustion itself is terminal, never retried again.
        assert_eq!(e.class(), ErrorClass::Fatal);
    }
}
