//! Relation schemas.
//!
//! A [`Schema`] is an ordered list of [`Field`]s. Fields carry an optional
//! *relation qualifier* (the table or alias they came from) so that
//! `PageRank.node` and `IncomingRank.node` stay distinguishable after a
//! self-join — the PR query of the paper depends on this.

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::DataType;

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Field {
    /// Column name (lower-cased by the parser).
    pub name: String,
    /// Value type.
    pub data_type: DataType,
    /// Table or alias the column belongs to, when known.
    pub relation: Option<String>,
}

impl Field {
    /// Unqualified field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            relation: None,
        }
    }

    /// Field qualified with a relation name.
    pub fn qualified(
        relation: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Field {
            name: name.into(),
            data_type,
            relation: Some(relation.into()),
        }
    }

    /// Re-qualify with a new relation (used by subquery aliases and rename).
    pub fn with_relation(&self, relation: impl Into<String>) -> Self {
        Field {
            name: self.name.clone(),
            data_type: self.data_type,
            relation: Some(relation.into()),
        }
    }

    /// `relation.name` when qualified, else just `name`.
    pub fn qualified_name(&self) -> String {
        match &self.relation {
            Some(r) => format!("{r}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered collection of fields describing one relation.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle; plans and batches hold `Arc<Schema>` so cloning a
/// plan node never deep-copies field lists.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Schema from a field list.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The empty schema (zero columns).
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Borrow the fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Find the index of a column, honouring an optional qualifier.
    ///
    /// * `index_of(None, "node")` matches any field named `node`, and is
    ///   ambiguous when several relations expose one.
    /// * `index_of(Some("pr"), "node")` matches only `pr.node`.
    pub fn index_of(&self, relation: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name.eq_ignore_ascii_case(name)
                    && match relation {
                        Some(r) => f
                            .relation
                            .as_deref()
                            .is_some_and(|fr| fr.eq_ignore_ascii_case(r)),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(Error::ColumnNotFound(match relation {
                Some(r) => format!("{r}.{name}"),
                None => name.to_owned(),
            })),
            _ => Err(Error::plan(format!(
                "column reference '{name}' is ambiguous ({} candidates)",
                matches.len()
            ))),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(right.fields.iter().cloned());
        Schema { fields }
    }

    /// Replace every field's qualifier with `relation` (aliasing a subquery
    /// or renaming a temp result).
    pub fn qualify_all(&self, relation: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| f.with_relation(relation))
                .collect(),
        }
    }

    /// Strip all qualifiers (e.g. for final output to the client).
    pub fn unqualified(&self) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::new(f.name.clone(), f.data_type))
                .collect(),
        }
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.qualified_name(), field.data_type)?;
        }
        write!(f, "]")
    }
}

impl FromIterator<Field> for Schema {
    fn from_iter<T: IntoIterator<Item = Field>>(iter: T) -> Self {
        Schema {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pr_schema() -> Schema {
        Schema::new(vec![
            Field::qualified("pr", "node", DataType::Int),
            Field::qualified("pr", "rank", DataType::Float),
            Field::qualified("incoming", "node", DataType::Int),
        ])
    }

    #[test]
    fn unqualified_lookup_is_ambiguous_after_self_join() {
        let s = pr_schema();
        assert!(matches!(s.index_of(None, "node"), Err(Error::Plan(_))));
        assert_eq!(s.index_of(None, "rank").unwrap(), 1);
    }

    #[test]
    fn qualified_lookup_disambiguates() {
        let s = pr_schema();
        assert_eq!(s.index_of(Some("pr"), "node").unwrap(), 0);
        assert_eq!(s.index_of(Some("incoming"), "node").unwrap(), 2);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = pr_schema();
        assert_eq!(s.index_of(Some("PR"), "NODE").unwrap(), 0);
    }

    #[test]
    fn missing_column_reports_qualified_name() {
        let s = pr_schema();
        let err = s.index_of(Some("pr"), "missing").unwrap_err();
        assert_eq!(err, Error::ColumnNotFound("pr.missing".into()));
    }

    #[test]
    fn join_concatenates_in_order() {
        let left = Schema::new(vec![Field::new("a", DataType::Int)]);
        let right = Schema::new(vec![Field::new("b", DataType::Text)]);
        let joined = left.join(&right);
        assert_eq!(joined.names(), vec!["a", "b"]);
    }

    #[test]
    fn qualify_all_rewrites_relations() {
        let s = pr_schema().qualify_all("t");
        assert!(s
            .fields()
            .iter()
            .all(|f| f.relation.as_deref() == Some("t")));
    }
}
