//! Engine configuration and optimization toggles.
//!
//! Every optimization the paper evaluates can be switched off individually,
//! which is how the benchmark harness reproduces the baseline series of
//! Figures 8-10: the baseline is the same engine with the corresponding
//! toggle disabled.

/// Feature toggles and tuning knobs for a [`Database`](https://docs.rs) session.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// Number of virtual shared-nothing workers (partitions). The paper's
    /// testbed is an MPP cluster; we model it as hash partitions with
    /// explicit exchange operators. Must be >= 1.
    pub partitions: usize,
    /// §IV / Fig. 8 — use the `rename` operator instead of copying the
    /// working table back into the CTE table when the iterative part
    /// replaces the whole dataset. Disabled = baseline that always merges
    /// and diffs.
    pub minimize_data_movement: bool,
    /// §V-A / Fig. 9 — materialize loop-invariant join subtrees once before
    /// the loop and reuse them every iteration.
    pub common_result_optimization: bool,
    /// §V-B / Fig. 10 — push predicates from the final query into the
    /// non-iterative part when provably safe.
    pub predicate_pushdown: bool,
    /// General-purpose logical rewrites (constant folding, projection
    /// pruning, filter merging). Kept separate so ablations isolate the
    /// paper's three optimizations.
    pub general_rewrites: bool,
    /// Two-phase grouped aggregation: partitions pre-aggregate locally and
    /// ship partial states instead of raw rows through the exchange — the
    /// standard MPP optimization. Disabled, every input row crosses the
    /// shuffle. DISTINCT aggregates always use the single-phase path.
    pub two_phase_aggregation: bool,
    /// Execute partitions on worker threads (crossbeam) instead of
    /// sequentially. Sequential execution is deterministic and is the
    /// default for tests.
    pub parallel_partitions: bool,
    /// Safety bound on iterations for data/delta termination conditions, so
    /// a non-converging UNTIL cannot loop forever.
    pub max_iterations: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            partitions: 4,
            minimize_data_movement: true,
            common_result_optimization: true,
            predicate_pushdown: true,
            general_rewrites: true,
            two_phase_aggregation: true,
            parallel_partitions: false,
            max_iterations: 10_000,
        }
    }
}

impl EngineConfig {
    /// Configuration with every DBSpinner optimization disabled — the
    /// "naive rewrite" baseline of §VII.
    pub fn naive() -> Self {
        EngineConfig {
            minimize_data_movement: false,
            common_result_optimization: false,
            predicate_pushdown: false,
            ..Self::default()
        }
    }

    /// Builder-style setter for the partition count.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        assert!(partitions >= 1, "at least one partition is required");
        self.partitions = partitions;
        self
    }

    /// Builder-style setter for the data-movement optimization (Fig. 8).
    pub fn with_minimize_data_movement(mut self, on: bool) -> Self {
        self.minimize_data_movement = on;
        self
    }

    /// Builder-style setter for the common-result optimization (Fig. 9).
    pub fn with_common_result(mut self, on: bool) -> Self {
        self.common_result_optimization = on;
        self
    }

    /// Builder-style setter for predicate push-down (Fig. 10).
    pub fn with_predicate_pushdown(mut self, on: bool) -> Self {
        self.predicate_pushdown = on;
        self
    }

    /// Builder-style setter for the iteration safety bound.
    pub fn with_max_iterations(mut self, limit: u64) -> Self {
        self.max_iterations = limit;
        self
    }

    /// Builder-style setter for parallel partition execution.
    pub fn with_parallel_partitions(mut self, on: bool) -> Self {
        self.parallel_partitions = on;
        self
    }

    /// Builder-style setter for two-phase grouped aggregation.
    pub fn with_two_phase_aggregation(mut self, on: bool) -> Self {
        self.two_phase_aggregation = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_paper_optimizations() {
        let c = EngineConfig::default();
        assert!(c.minimize_data_movement);
        assert!(c.common_result_optimization);
        assert!(c.predicate_pushdown);
    }

    #[test]
    fn naive_disables_paper_optimizations_only() {
        let c = EngineConfig::naive();
        assert!(!c.minimize_data_movement);
        assert!(!c.common_result_optimization);
        assert!(!c.predicate_pushdown);
        assert!(c.general_rewrites);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = EngineConfig::default().with_partitions(0);
    }
}
