//! Engine configuration and optimization toggles.
//!
//! Every optimization the paper evaluates can be switched off individually,
//! which is how the benchmark harness reproduces the baseline series of
//! Figures 8-10: the baseline is the same engine with the corresponding
//! toggle disabled.

/// Feature toggles and tuning knobs for a `Database` session (the
/// `Database` type lives in the `spinner-engine` crate, which depends on
/// this one).
///
/// # Guardrail knobs
///
/// Besides the optimization toggles, the config carries the per-session
/// default *guardrails* — limits every statement starts with unless the
/// caller supplies its own `QueryGuard`:
///
/// * [`query_timeout_ms`](Self::query_timeout_ms) — wall-clock deadline
///   per statement; exceeded ⇒ `Error::Timeout`.
/// * [`max_rows_materialized`](Self::max_rows_materialized) — budget on
///   rows written into temp results; exceeded ⇒
///   `Error::ResourceExhausted { resource: "rows_materialized", .. }`.
/// * [`max_rows_moved`](Self::max_rows_moved) — budget on rows crossing
///   exchange operators (shuffle/gather/broadcast).
/// * [`max_intermediate_bytes`](Self::max_intermediate_bytes) — budget on
///   the estimated size of intermediate state.
/// * [`faults`](Self::faults) — deterministic fault-injection points for
///   chaos testing; empty (off) by default.
///
/// All guardrails default to `None`/empty, i.e. unlimited — the paper's
/// benchmark figures run unchanged. Use [`EngineConfig::validate`] (the
/// engine calls it on construction) to reject nonsensical settings as a
/// structured `Error::InvalidConfig` instead of panicking.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// Number of virtual shared-nothing workers (partitions). The paper's
    /// testbed is an MPP cluster; we model it as hash partitions with
    /// explicit exchange operators. Must be >= 1.
    pub partitions: usize,
    /// §IV / Fig. 8 — use the `rename` operator instead of copying the
    /// working table back into the CTE table when the iterative part
    /// replaces the whole dataset. Disabled = baseline that always merges
    /// and diffs.
    pub minimize_data_movement: bool,
    /// §V-A / Fig. 9 — materialize loop-invariant join subtrees once before
    /// the loop and reuse them every iteration.
    pub common_result_optimization: bool,
    /// §V-B / Fig. 10 — push predicates from the final query into the
    /// non-iterative part when provably safe.
    pub predicate_pushdown: bool,
    /// Semi-naive (delta-driven) evaluation of iterative CTEs: when the
    /// loop body is delta-eligible (monotone MIN/MAX propagation joins
    /// over the recursive table), feed only the rows that changed last
    /// iteration into the iterative join instead of the full CTE table,
    /// merging new rows back into the accumulated result. Turns
    /// O(V·E)-per-iteration workloads like SSSP and connected components
    /// into O(changed·E). Ineligible bodies (non-monotone aggregates,
    /// missing propagation join) silently fall back to full recompute;
    /// the decision is recorded in EXPLAIN ANALYZE
    /// (`iteration: mode=semi_naive|full`).
    pub semi_naive: bool,
    /// General-purpose logical rewrites (constant folding, projection
    /// pruning, filter merging). Kept separate so ablations isolate the
    /// paper's three optimizations.
    pub general_rewrites: bool,
    /// Two-phase grouped aggregation: partitions pre-aggregate locally and
    /// ship partial states instead of raw rows through the exchange — the
    /// standard MPP optimization. Disabled, every input row crosses the
    /// shuffle. DISTINCT aggregates always use the single-phase path.
    pub two_phase_aggregation: bool,
    /// Execute partitions on worker threads (crossbeam) instead of
    /// sequentially. Sequential execution is deterministic and is the
    /// default for tests.
    pub parallel_partitions: bool,
    /// Safety bound on iterations for data/delta termination conditions, so
    /// a non-converging UNTIL cannot loop forever.
    pub max_iterations: u64,
    /// Wall-clock deadline per statement, in milliseconds. `None` =
    /// unlimited.
    pub query_timeout_ms: Option<u64>,
    /// Budget on rows materialized into temp results per statement.
    /// `None` = unlimited.
    pub max_rows_materialized: Option<u64>,
    /// Budget on rows moved through exchange operators per statement.
    /// `None` = unlimited.
    pub max_rows_moved: Option<u64>,
    /// Budget on estimated bytes of intermediate state per statement.
    /// `None` = unlimited.
    pub max_intermediate_bytes: Option<u64>,
    /// Fault-injection points (chaos testing). Empty = off. Faults are
    /// deterministic: triggered by hit count or a seeded PRNG, never by
    /// wall-clock or global randomness.
    pub faults: Vec<FaultConfig>,
    /// Snapshot the live loop state (CTE table, working/delta tables, loop
    /// counters) every this many iterations. `0` disables periodic
    /// checkpoints; when [`max_loop_recoveries`](Self::max_loop_recoveries)
    /// is non-zero an entry checkpoint is still taken at iteration 0 so a
    /// rollback always has a target. Snapshots are cheap: `Partitioned`
    /// clones are O(partitions) `Arc` bumps over shared immutable row
    /// buffers (copy-on-write), not row copies.
    pub checkpoint_interval: u64,
    /// Bounded retries for a *transient* failure of one unit of work (a
    /// partition worker closure, or a non-loop step re-run against its
    /// unchanged input snapshot) before the failure escalates. `0` = no
    /// retry, the PR-1 fail-fast behaviour.
    pub max_partition_retries: u64,
    /// Base of the deterministic backoff between retries, in milliseconds;
    /// attempt `k` sleeps `retry_backoff_ms * 2^(k-1)` (capped). `0` =
    /// retry immediately, the right setting for tests.
    pub retry_backoff_ms: u64,
    /// How many times a loop may roll back to its last checkpoint and
    /// replay after retries are exhausted inside the loop body. `0`
    /// disables mid-loop recovery; exhausting a non-zero budget yields
    /// `Error::RecoveryExhausted`.
    pub max_loop_recoveries: u64,
    /// High-water mark in estimated bytes of resident intermediate state.
    /// `None` (the default) disables spilling entirely and preserves the
    /// PR-1 fail-fast budget behaviour; `Some(n)` makes the executor spill
    /// cold intermediate state to disk whenever tracked resident bytes
    /// exceed `n`, degrading to slower-but-correct execution instead of
    /// failing the query.
    pub spill_threshold_bytes: Option<u64>,
    /// Directory for spill files. `None` uses the OS temp directory. Only
    /// consulted when [`spill_threshold_bytes`](Self::spill_threshold_bytes)
    /// is set; validated (created if missing, is a directory, writable) by
    /// [`EngineConfig::validate`].
    pub spill_dir: Option<String>,
    /// Crash-consistency for on-disk state: when on (the default), every
    /// spill/checkpoint file is written to a temp name, fsynced, atomically
    /// renamed into place, and the parent directory is fsynced — so a
    /// process kill at any point leaves either the old complete artifact or
    /// the new complete artifact, never a torn file under the final name.
    /// Off skips the fsyncs (rename is still atomic); checksums are
    /// verified on read either way. The fsync count is surfaced as
    /// `durability: ... refsync=` in stats and EXPLAIN ANALYZE.
    pub durable_spill: bool,
    /// Use a persistent worker pool (one thread per partition, created once
    /// per database) for parallel partition execution instead of spawning a
    /// fresh scoped thread per operator invocation. Only takes effect when
    /// [`parallel_partitions`](Self::parallel_partitions) is on; disabling
    /// it restores the spawn-per-operator path (useful for A/B timing).
    pub worker_pool: bool,
    /// Cache the hash table built for a loop-invariant join side (a hoisted
    /// `__common_*` result) across iterations, re-probing it instead of
    /// re-hashing every time. Keyed by temp-result identity and registered
    /// with the memory accountant so spill pressure can reclaim it.
    pub join_state_cache: bool,
    /// Cap on queries executing plans concurrently. `None` (the default)
    /// disables admission control entirely — every statement starts
    /// immediately, the single-session behaviour. `Some(n)` makes the
    /// engine gate statement start through the global
    /// `AdmissionController`: at most `n` run at once, excess queries
    /// wait in a bounded FIFO queue and are shed with typed
    /// `Error::Overloaded` / `Error::AdmissionTimeout` under overload.
    pub max_concurrent_queries: Option<usize>,
    /// Bound on the admission wait queue. A query arriving when the queue
    /// is already this deep is shed immediately with `Error::Overloaded`
    /// instead of queueing — bounded latency beats unbounded backlog.
    /// Only consulted when [`max_concurrent_queries`](Self::max_concurrent_queries)
    /// is set.
    pub admission_queue_limit: usize,
    /// How long an *interactive* query (no loop operator in its plan) may
    /// wait in the admission queue before being shed with
    /// `Error::AdmissionTimeout`. `None` = wait indefinitely.
    pub admission_timeout_ms: Option<u64>,
    /// How long a *batch* query (its plan contains a loop operator) may
    /// wait in the admission queue. Batch work tolerates more queueing
    /// delay than interactive work, so the two classes get separate
    /// timeouts. `None` = wait indefinitely.
    pub admission_batch_timeout_ms: Option<u64>,
    /// Stall deadline for `WorkerPool::scope`, in milliseconds: if no
    /// submitted task completes within this window, still-queued tasks
    /// are reclaimed and the scope fails with the typed
    /// `Error::PoolStalled` instead of blocking the coordinator forever.
    pub pool_stall_timeout_ms: u64,
    /// Read keepalive for server sessions, in milliseconds: a connection
    /// that sends no frame for this long between statements is reaped —
    /// the socket is closed and its resources released — so a half-open
    /// TCP session (peer vanished without FIN) cannot hold a connection
    /// slot forever waiting for a write failure. `0` disables reaping
    /// (reads block indefinitely, the pre-PR-8 behaviour).
    pub session_keepalive_ms: u64,
    /// Crash-consistent query resumption. When on, every iterative
    /// statement is recorded in an on-disk query journal, its checkpoint
    /// epochs are persisted as sealed files, and a fresh engine started
    /// over the same spill directory *adopts* a dead process's in-flight
    /// loops — re-planning the journaled SQL and resuming from the newest
    /// readable checkpoint epoch — instead of garbage-collecting them.
    /// Requires a spill directory; off (the default) preserves the PR-8
    /// behaviour where durability ends at process death.
    pub resumable_queries: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            partitions: 4,
            minimize_data_movement: true,
            common_result_optimization: true,
            predicate_pushdown: true,
            semi_naive: true,
            general_rewrites: true,
            two_phase_aggregation: true,
            parallel_partitions: false,
            max_iterations: 10_000,
            query_timeout_ms: None,
            max_rows_materialized: None,
            max_rows_moved: None,
            max_intermediate_bytes: None,
            faults: Vec::new(),
            checkpoint_interval: 0,
            max_partition_retries: 0,
            retry_backoff_ms: 0,
            max_loop_recoveries: 0,
            spill_threshold_bytes: spill_threshold_from_env(),
            spill_dir: std::env::var("SPINNER_SPILL_DIR").ok(),
            durable_spill: true,
            worker_pool: true,
            join_state_cache: true,
            max_concurrent_queries: None,
            admission_queue_limit: 16,
            admission_timeout_ms: None,
            admission_batch_timeout_ms: None,
            pool_stall_timeout_ms: 60_000,
            session_keepalive_ms: 300_000,
            resumable_queries: false,
        }
    }
}

/// Forced-spill override for CI: `SPINNER_SPILL_THRESHOLD=<bytes>` makes
/// every default-configured engine spill once resident intermediate state
/// exceeds that many bytes, so the whole tier-1 suite exercises the spill
/// path. Unset, unparsable, or `0` all mean "disabled".
fn spill_threshold_from_env() -> Option<u64> {
    std::env::var("SPINNER_SPILL_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
}

/// A usable spill directory is creatable, is a directory, and accepts
/// writes. Probed up front so misconfiguration is an
/// [`crate::Error::InvalidConfig`] at `Database::new`, not a mid-loop
/// `SpillUnavailable`. A missing directory is created (like most engines'
/// data dirs) rather than rejected, so a fresh deployment needs no manual
/// `mkdir`.
fn validate_spill_dir(dir: &str) -> crate::Result<()> {
    use crate::Error;
    let path = std::path::Path::new(dir);
    if !path.exists() {
        std::fs::create_dir_all(path).map_err(|e| {
            Error::InvalidConfig(format!("spill_dir '{dir}' cannot be created: {e}"))
        })?;
    }
    if !path.is_dir() {
        return Err(Error::InvalidConfig(format!(
            "spill_dir '{dir}' is not a directory"
        )));
    }
    let probe = path.join(format!(".spinner_spill_probe_{}", std::process::id()));
    match std::fs::write(&probe, b"probe") {
        Ok(()) => {
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(Error::InvalidConfig(format!(
            "spill_dir '{dir}' is not writable: {e}"
        ))),
    }
}

impl EngineConfig {
    /// Configuration with every DBSpinner optimization disabled — the
    /// "naive rewrite" baseline of §VII.
    pub fn naive() -> Self {
        EngineConfig {
            minimize_data_movement: false,
            common_result_optimization: false,
            predicate_pushdown: false,
            semi_naive: false,
            ..Self::default()
        }
    }

    /// Builder-style setter for the partition count.
    ///
    /// Does not validate eagerly; `partitions == 0` is rejected by
    /// [`EngineConfig::validate`] (which `Database::new` calls), so a bad
    /// value surfaces as `Error::InvalidConfig` rather than a panic.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Builder-style setter for the data-movement optimization (Fig. 8).
    pub fn with_minimize_data_movement(mut self, on: bool) -> Self {
        self.minimize_data_movement = on;
        self
    }

    /// Builder-style setter for the common-result optimization (Fig. 9).
    pub fn with_common_result(mut self, on: bool) -> Self {
        self.common_result_optimization = on;
        self
    }

    /// Builder-style setter for predicate push-down (Fig. 10).
    pub fn with_predicate_pushdown(mut self, on: bool) -> Self {
        self.predicate_pushdown = on;
        self
    }

    /// Builder-style setter for semi-naive (delta-driven) iteration.
    /// Off, every iteration re-joins the full CTE table even when the
    /// loop is converging.
    pub fn with_semi_naive(mut self, on: bool) -> Self {
        self.semi_naive = on;
        self
    }

    /// Builder-style setter for the iteration safety bound.
    pub fn with_max_iterations(mut self, limit: u64) -> Self {
        self.max_iterations = limit;
        self
    }

    /// Builder-style setter for parallel partition execution.
    pub fn with_parallel_partitions(mut self, on: bool) -> Self {
        self.parallel_partitions = on;
        self
    }

    /// Builder-style setter for two-phase grouped aggregation.
    pub fn with_two_phase_aggregation(mut self, on: bool) -> Self {
        self.two_phase_aggregation = on;
        self
    }

    /// Builder-style setter for the per-statement wall-clock deadline.
    pub fn with_query_timeout_ms(mut self, limit_ms: u64) -> Self {
        self.query_timeout_ms = Some(limit_ms);
        self
    }

    /// Builder-style setter for the rows-materialized budget.
    pub fn with_max_rows_materialized(mut self, limit: u64) -> Self {
        self.max_rows_materialized = Some(limit);
        self
    }

    /// Builder-style setter for the rows-moved (exchange) budget.
    pub fn with_max_rows_moved(mut self, limit: u64) -> Self {
        self.max_rows_moved = Some(limit);
        self
    }

    /// Builder-style setter for the intermediate-state byte budget.
    pub fn with_max_intermediate_bytes(mut self, limit: u64) -> Self {
        self.max_intermediate_bytes = Some(limit);
        self
    }

    /// Builder-style helper adding one fault-injection point.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.faults.push(fault);
        self
    }

    /// Builder-style setter for the checkpoint interval (0 = off).
    pub fn with_checkpoint_interval(mut self, every_n_iterations: u64) -> Self {
        self.checkpoint_interval = every_n_iterations;
        self
    }

    /// Builder-style setter for the transient-retry budget per unit of
    /// work (0 = fail fast).
    pub fn with_max_partition_retries(mut self, retries: u64) -> Self {
        self.max_partition_retries = retries;
        self
    }

    /// Builder-style setter for the deterministic retry backoff base.
    pub fn with_retry_backoff_ms(mut self, ms: u64) -> Self {
        self.retry_backoff_ms = ms;
        self
    }

    /// Builder-style setter for the mid-loop recovery budget (0 = off).
    pub fn with_max_loop_recoveries(mut self, recoveries: u64) -> Self {
        self.max_loop_recoveries = recoveries;
        self
    }

    /// Builder-style setter for the spill high-water mark in bytes.
    /// Crossing it spills cold intermediate state to disk instead of
    /// failing the query.
    pub fn with_spill_threshold_bytes(mut self, threshold: u64) -> Self {
        self.spill_threshold_bytes = Some(threshold);
        self
    }

    /// Builder-style setter for the spill-file directory.
    pub fn with_spill_dir(mut self, dir: impl Into<String>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Builder-style setter for crash-consistent (fsynced) spill and
    /// checkpoint writes. Off skips the fsyncs for speed; checksums are
    /// still verified on read.
    pub fn with_durable_spill(mut self, on: bool) -> Self {
        self.durable_spill = on;
        self
    }

    /// Builder-style setter for the server session read keepalive
    /// (0 = never reap idle connections).
    pub fn with_session_keepalive_ms(mut self, limit_ms: u64) -> Self {
        self.session_keepalive_ms = limit_ms;
        self
    }

    /// Builder-style setter for crash-consistent query resumption.
    /// Validation requires a spill directory when this is on — the
    /// journal and adoptable checkpoint files need a stable home shared
    /// across process generations (the OS temp dir would work but makes
    /// the restart contract accidental).
    pub fn with_resumable_queries(mut self, on: bool) -> Self {
        self.resumable_queries = on;
        self
    }

    /// Builder-style setter for the persistent worker pool. Off, parallel
    /// operators fall back to spawning a scoped thread per partition.
    pub fn with_worker_pool(mut self, on: bool) -> Self {
        self.worker_pool = on;
        self
    }

    /// Builder-style setter for loop-invariant join-state caching.
    pub fn with_join_state_cache(mut self, on: bool) -> Self {
        self.join_state_cache = on;
        self
    }

    /// Builder-style setter enabling admission control with a cap on
    /// concurrently executing queries.
    pub fn with_max_concurrent_queries(mut self, max: usize) -> Self {
        self.max_concurrent_queries = Some(max);
        self
    }

    /// Builder-style setter for the bounded admission-queue depth.
    pub fn with_admission_queue_limit(mut self, limit: usize) -> Self {
        self.admission_queue_limit = limit;
        self
    }

    /// Builder-style setter for the interactive-class admission timeout.
    pub fn with_admission_timeout_ms(mut self, limit_ms: u64) -> Self {
        self.admission_timeout_ms = Some(limit_ms);
        self
    }

    /// Builder-style setter for the batch-class admission timeout.
    pub fn with_admission_batch_timeout_ms(mut self, limit_ms: u64) -> Self {
        self.admission_batch_timeout_ms = Some(limit_ms);
        self
    }

    /// Builder-style setter for the worker-pool stall deadline.
    pub fn with_pool_stall_timeout_ms(mut self, limit_ms: u64) -> Self {
        self.pool_stall_timeout_ms = limit_ms;
        self
    }

    /// Apply a whole [`RecoveryPolicy`] at once.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.checkpoint_interval = policy.checkpoint_interval;
        self.max_partition_retries = policy.max_partition_retries;
        self.retry_backoff_ms = policy.retry_backoff_ms;
        self.max_loop_recoveries = policy.max_loop_recoveries;
        self
    }

    /// The recovery-related knobs bundled as a [`RecoveryPolicy`].
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        RecoveryPolicy {
            checkpoint_interval: self.checkpoint_interval,
            max_partition_retries: self.max_partition_retries,
            retry_backoff_ms: self.retry_backoff_ms,
            max_loop_recoveries: self.max_loop_recoveries,
        }
    }

    /// Validate the configuration; `Database::new` calls this so a bad
    /// config is a structured [`crate::Error::InvalidConfig`], not a
    /// process abort.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::Error;
        if self.partitions < 1 {
            return Err(Error::InvalidConfig(
                "at least one partition is required".into(),
            ));
        }
        if self.max_iterations < 1 {
            return Err(Error::InvalidConfig(
                "max_iterations must be at least 1".into(),
            ));
        }
        if self.query_timeout_ms == Some(0) {
            return Err(Error::InvalidConfig(
                "query_timeout_ms of 0 would reject every statement; use None for unlimited".into(),
            ));
        }
        if self.retry_backoff_ms > 60_000 {
            return Err(Error::InvalidConfig(format!(
                "retry_backoff_ms {} exceeds the 60s sanity cap",
                self.retry_backoff_ms
            )));
        }
        if self.spill_threshold_bytes == Some(0) {
            return Err(Error::InvalidConfig(
                "spill_threshold_bytes of 0 would spill every allocation; \
                 use None to disable spilling"
                    .into(),
            ));
        }
        if let Some(dir) = &self.spill_dir {
            validate_spill_dir(dir)?;
        }
        if self.resumable_queries && self.spill_dir.is_none() {
            return Err(Error::InvalidConfig(
                "resumable_queries requires a spill_dir: the query journal and \
                 adoptable checkpoints must live in a directory shared across \
                 process restarts"
                    .into(),
            ));
        }
        if self.max_concurrent_queries == Some(0) {
            return Err(Error::InvalidConfig(
                "max_concurrent_queries of 0 would admit nothing; \
                 use None to disable admission control"
                    .into(),
            ));
        }
        if self.admission_timeout_ms == Some(0) || self.admission_batch_timeout_ms == Some(0) {
            return Err(Error::InvalidConfig(
                "admission timeouts of 0 would shed every queued query; \
                 use None to wait indefinitely"
                    .into(),
            ));
        }
        if self.pool_stall_timeout_ms == 0 {
            return Err(Error::InvalidConfig(
                "pool_stall_timeout_ms of 0 would reclaim every queued pool task".into(),
            ));
        }
        if self.pool_stall_timeout_ms > 3_600_000 {
            return Err(Error::InvalidConfig(format!(
                "pool_stall_timeout_ms {} exceeds the 1h sanity cap",
                self.pool_stall_timeout_ms
            )));
        }
        for fault in &self.faults {
            match fault.trigger {
                FaultTrigger::Nth(0) => {
                    return Err(Error::InvalidConfig(format!(
                        "fault at {:?}: Nth trigger is 1-based, 0 never fires",
                        fault.site
                    )));
                }
                FaultTrigger::Seeded {
                    probability_ppm, ..
                } if probability_ppm > 1_000_000 => {
                    return Err(Error::InvalidConfig(format!(
                        "fault at {:?}: probability_ppm {} exceeds 1_000_000 (= always)",
                        fault.site, probability_ppm
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Pipeline stage a fault attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultSite {
    /// An exchange operator (shuffle / gather / broadcast).
    Exchange,
    /// Materialization of a step result into the temp registry.
    Materialize,
    /// The rename fast path swapping the working table in.
    Rename,
    /// The top of every loop iteration.
    LoopIteration,
    /// Inside a per-partition worker closure (parallel or sequential).
    Worker,
    /// While a loop checkpoint is being snapshotted. A firing here must
    /// never corrupt the live loop state or the previous checkpoint.
    Checkpoint,
    /// While a rollback is restoring a checkpoint. Fires *before* any
    /// table is put back, so a failed restore leaves the registry as the
    /// failed iteration left it and consumes another recovery attempt.
    Recovery,
    /// While a victim region is being serialized to a spill file. Fires
    /// before any bytes are written, so a failed spill write leaves the
    /// region resident and untouched.
    SpillWrite,
    /// While a spilled region is being read back. Fires before the file is
    /// opened; a firing is a transient fault, absorbed by step retry or
    /// rollback-and-replay like any other transient I/O failure.
    SpillRead,
    /// When the server accepts a TCP connection, before any session state
    /// exists. An error here sheds the connection; a delay simulates a
    /// slow accept path.
    Accept,
    /// While a session's request frame is being read from the socket. An
    /// error here is treated as a connection failure: the in-flight query
    /// (if any) is cancelled and the session is torn down.
    SessionRead,
    /// While a session's response frame is being written to the socket.
    /// An error here tears the session down after its query completed,
    /// exercising the result-undeliverable path.
    SessionWrite,
    /// Adversarial disk: the spill/checkpoint file is silently truncated
    /// to half its length *and the write still reports success* — the
    /// state a process kill between `write` and `fsync` leaves behind.
    /// Detection must happen at read time via the whole-file trailer.
    TornWrite,
    /// Adversarial disk: one bit of the payload is flipped before the
    /// write, which still reports success — simulated bit rot. Detection
    /// must happen at read time via the partition/file checksums.
    BitFlip,
    /// Adversarial disk: the write fails as if the device were out of
    /// space (ENOSPC). Degrades to the fail-fast budget error
    /// `ResourceExhausted { resource: "spill_disk", .. }` — deliberate
    /// back-pressure, not a retryable fault and not a process abort.
    DiskFull,
    /// Adversarial disk: the fsync after a spill write fails. The temp
    /// file is discarded and the write surfaces as the transient
    /// `SpillUnavailable`, leaving the previous artifact intact.
    FsyncFail,
    /// The epoch-commit barrier between writing a durable checkpoint file
    /// and committing the manifest epoch that names it. The crash harness
    /// aborts here to exercise the file-written-epoch-uncommitted window;
    /// an injected error skips the commit (the save degrades to in-memory
    /// only) without failing the loop.
    ManifestCommit,
}

/// The recovery-related knobs of an [`EngineConfig`], bundled so callers
/// can switch coherent presets instead of tuning four numbers.
///
/// Apply with [`EngineConfig::with_recovery`] or
/// `Database::set_recovery_policy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryPolicy {
    /// See [`EngineConfig::checkpoint_interval`].
    pub checkpoint_interval: u64,
    /// See [`EngineConfig::max_partition_retries`].
    pub max_partition_retries: u64,
    /// See [`EngineConfig::retry_backoff_ms`].
    pub retry_backoff_ms: u64,
    /// See [`EngineConfig::max_loop_recoveries`].
    pub max_loop_recoveries: u64,
}

impl RecoveryPolicy {
    /// Everything off — the PR-1 fail-fast behaviour (the default).
    pub fn disabled() -> Self {
        RecoveryPolicy {
            checkpoint_interval: 0,
            max_partition_retries: 0,
            retry_backoff_ms: 0,
            max_loop_recoveries: 0,
        }
    }

    /// A balanced production preset: checkpoint every 5 iterations, two
    /// in-place retries per unit of work, immediate retry (no backoff),
    /// and up to three rollback-and-replay recoveries per loop.
    pub fn standard() -> Self {
        RecoveryPolicy {
            checkpoint_interval: 5,
            max_partition_retries: 2,
            retry_backoff_ms: 0,
            max_loop_recoveries: 3,
        }
    }

    /// Whether any recovery mechanism is active.
    pub fn is_enabled(&self) -> bool {
        self.checkpoint_interval > 0
            || self.max_partition_retries > 0
            || self.max_loop_recoveries > 0
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Return `Error::FaultInjected` from the faulted step.
    Error,
    /// Sleep this many milliseconds, then continue normally. Used to make
    /// timeout tests deterministic without huge datasets.
    DelayMs(u64),
    /// Panic inside the faulted step (exercises panic isolation).
    Panic,
    /// Abort the whole process at the faulted step, skipping every
    /// destructor — the in-process equivalent of `SIGKILL`. Drop-based
    /// cleanup (spill handles, manifests, journals) does not run, leaving
    /// the on-disk state a real crash would, which is exactly what the
    /// restart-recovery harness needs to stage.
    Abort,
}

/// When a fault fires. Deterministic by construction: either an exact
/// hit count or a seeded PRNG — never wall-clock or global randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultTrigger {
    /// Fire on the n-th hit of the site (1-based), once.
    Nth(u64),
    /// Fire per-hit with probability `probability_ppm` / 1_000_000,
    /// drawn from a PRNG seeded with `seed` (kept in parts-per-million
    /// so the config stays `Eq`).
    Seeded {
        /// PRNG seed; identical seeds replay the same fault sequence.
        seed: u64,
        /// Per-hit firing probability in parts-per-million.
        probability_ppm: u32,
    },
}

/// One configured fault-injection point.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultConfig {
    /// Where in the executor the fault fires.
    pub site: FaultSite,
    /// What happens when it fires (error or panic).
    pub kind: FaultKind,
    /// When it fires (n-th hit or seeded probability).
    pub trigger: FaultTrigger,
}

impl FaultConfig {
    /// Error out on the n-th (1-based) hit of `site`.
    pub fn fail_nth(site: FaultSite, n: u64) -> Self {
        FaultConfig {
            site,
            kind: FaultKind::Error,
            trigger: FaultTrigger::Nth(n),
        }
    }

    /// Panic on the n-th (1-based) hit of `site`.
    pub fn panic_nth(site: FaultSite, n: u64) -> Self {
        FaultConfig {
            site,
            kind: FaultKind::Panic,
            trigger: FaultTrigger::Nth(n),
        }
    }

    /// Abort the process (SIGKILL-equivalent, no destructors) on the
    /// n-th (1-based) hit of `site`. Only meaningful from a subprocess
    /// harness that restarts and inspects what survived.
    pub fn abort_nth(site: FaultSite, n: u64) -> Self {
        FaultConfig {
            site,
            kind: FaultKind::Abort,
            trigger: FaultTrigger::Nth(n),
        }
    }

    /// Sleep `ms` milliseconds on the n-th (1-based) hit of `site`. For
    /// a delay on *every* hit, use [`FaultConfig::seeded`] with
    /// `probability_ppm = 1_000_000`.
    pub fn delay_nth(site: FaultSite, n: u64, ms: u64) -> Self {
        FaultConfig {
            site,
            kind: FaultKind::DelayMs(ms),
            trigger: FaultTrigger::Nth(n),
        }
    }

    /// Fire `kind` with `probability_ppm`/1_000_000 per hit, seeded.
    pub fn seeded(site: FaultSite, kind: FaultKind, seed: u64, probability_ppm: u32) -> Self {
        FaultConfig {
            site,
            kind,
            trigger: FaultTrigger::Seeded {
                seed,
                probability_ppm,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_paper_optimizations() {
        let c = EngineConfig::default();
        assert!(c.minimize_data_movement);
        assert!(c.common_result_optimization);
        assert!(c.predicate_pushdown);
        assert!(c.semi_naive);
    }

    #[test]
    fn naive_disables_paper_optimizations_only() {
        let c = EngineConfig::naive();
        assert!(!c.minimize_data_movement);
        assert!(!c.common_result_optimization);
        assert!(!c.predicate_pushdown);
        assert!(!c.semi_naive);
        assert!(c.general_rewrites);
    }

    #[test]
    fn zero_partitions_rejected_by_validate() {
        let config = EngineConfig::default().with_partitions(0);
        match config.validate() {
            Err(crate::Error::InvalidConfig(m)) => {
                assert!(m.contains("at least one partition"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn default_config_validates() {
        assert!(EngineConfig::default().validate().is_ok());
        assert!(EngineConfig::naive().validate().is_ok());
    }

    #[test]
    fn guardrails_default_to_unlimited() {
        let c = EngineConfig::default();
        assert_eq!(c.query_timeout_ms, None);
        assert_eq!(c.max_rows_materialized, None);
        assert_eq!(c.max_rows_moved, None);
        assert_eq!(c.max_intermediate_bytes, None);
        assert!(c.faults.is_empty());
    }

    #[test]
    fn bad_fault_triggers_rejected() {
        let c = EngineConfig::default().with_fault(FaultConfig::fail_nth(FaultSite::Exchange, 0));
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
        let c = EngineConfig::default().with_fault(FaultConfig::seeded(
            FaultSite::Materialize,
            FaultKind::Error,
            7,
            2_000_000,
        ));
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
    }

    #[test]
    fn zero_timeout_rejected() {
        let c = EngineConfig::default().with_query_timeout_ms(0);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
    }

    #[test]
    fn recovery_defaults_to_disabled() {
        let c = EngineConfig::default();
        assert_eq!(c.checkpoint_interval, 0);
        assert_eq!(c.max_partition_retries, 0);
        assert_eq!(c.retry_backoff_ms, 0);
        assert_eq!(c.max_loop_recoveries, 0);
        assert!(!c.recovery_policy().is_enabled());
        assert_eq!(c.recovery_policy(), RecoveryPolicy::disabled());
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::disabled());
    }

    #[test]
    fn recovery_policy_round_trips_through_config() {
        let policy = RecoveryPolicy::standard();
        assert!(policy.is_enabled());
        let c = EngineConfig::default().with_recovery(policy);
        assert_eq!(c.recovery_policy(), policy);
        assert!(c.validate().is_ok());
        let c = EngineConfig::default()
            .with_checkpoint_interval(7)
            .with_max_partition_retries(1)
            .with_retry_backoff_ms(2)
            .with_max_loop_recoveries(4);
        assert_eq!(
            c.recovery_policy(),
            RecoveryPolicy {
                checkpoint_interval: 7,
                max_partition_retries: 1,
                retry_backoff_ms: 2,
                max_loop_recoveries: 4,
            }
        );
    }

    #[test]
    fn admission_defaults_to_disabled() {
        let c = EngineConfig::default();
        assert_eq!(c.max_concurrent_queries, None);
        assert_eq!(c.admission_queue_limit, 16);
        assert_eq!(c.admission_timeout_ms, None);
        assert_eq!(c.admission_batch_timeout_ms, None);
        assert_eq!(c.pool_stall_timeout_ms, 60_000);
    }

    #[test]
    fn degenerate_admission_knobs_rejected() {
        let c = EngineConfig::default().with_max_concurrent_queries(0);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
        let c = EngineConfig::default().with_admission_timeout_ms(0);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
        let c = EngineConfig::default().with_admission_batch_timeout_ms(0);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
        let c = EngineConfig::default().with_pool_stall_timeout_ms(0);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
        let c = EngineConfig::default().with_pool_stall_timeout_ms(7_200_000);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
        let c = EngineConfig::default()
            .with_max_concurrent_queries(2)
            .with_admission_queue_limit(4)
            .with_admission_timeout_ms(100)
            .with_admission_batch_timeout_ms(1_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn resumable_queries_requires_a_spill_dir() {
        let c = EngineConfig::default().with_resumable_queries(true);
        let c = EngineConfig {
            spill_dir: None,
            ..c
        };
        match c.validate() {
            Err(crate::Error::InvalidConfig(m)) => {
                assert!(m.contains("resumable_queries"), "{m}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        let c = EngineConfig::default()
            .with_resumable_queries(true)
            .with_spill_dir(std::env::temp_dir().to_str().unwrap());
        assert!(c.validate().is_ok());
        assert!(!EngineConfig::default().resumable_queries);
    }

    #[test]
    fn huge_backoff_rejected() {
        let c = EngineConfig::default().with_retry_backoff_ms(120_000);
        assert!(matches!(c.validate(), Err(crate::Error::InvalidConfig(_))));
    }

    #[test]
    fn zero_spill_threshold_rejected() {
        let c = EngineConfig::default().with_spill_threshold_bytes(0);
        match c.validate() {
            Err(crate::Error::InvalidConfig(m)) => {
                assert!(m.contains("spill_threshold_bytes"), "{m}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn spill_dir_is_created_when_missing_and_rejected_when_uncreatable() {
        // A missing directory is created by validation (fresh-deployment
        // ergonomics), so the engine never fails its first spill on a
        // typo'd-but-creatable path.
        let fresh = std::env::temp_dir().join(format!(
            "spinner_fresh_spill_{}/nested/dir",
            std::process::id()
        ));
        let c = EngineConfig::default()
            .with_spill_threshold_bytes(1024)
            .with_spill_dir(fresh.to_str().unwrap());
        assert!(c.validate().is_ok());
        assert!(fresh.is_dir(), "validation must create the directory");
        std::fs::remove_dir_all(fresh.parent().unwrap().parent().unwrap()).unwrap();

        // A file path is rejected even though it exists...
        let file = std::env::temp_dir().join(format!("spinner_not_a_dir_{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let c = EngineConfig::default().with_spill_dir(file.to_str().unwrap());
        match c.validate() {
            Err(crate::Error::InvalidConfig(m)) => {
                assert!(m.contains("not a directory"), "{m}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // ...and so is an uncreatable path (its parent is that file).
        let blocked = file.join("sub");
        let c = EngineConfig::default()
            .with_spill_threshold_bytes(1024)
            .with_spill_dir(blocked.to_str().unwrap());
        match c.validate() {
            Err(crate::Error::InvalidConfig(m)) => {
                assert!(m.contains("cannot be created"), "{m}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        std::fs::remove_file(&file).unwrap();
        // The OS temp dir is writable, so this validates.
        let c = EngineConfig::default()
            .with_spill_threshold_bytes(1024)
            .with_spill_dir(std::env::temp_dir().to_str().unwrap());
        assert!(c.validate().is_ok());
    }
}
