//! Row and batch representation.
//!
//! The executor is row-oriented: a [`Row`] is a boxed slice of values, a
//! [`Batch`] couples a vector of rows with their schema. Intermediate
//! results in DBSpinner are fully materialized between plan steps (paper
//! §III, Table I), so batches are the unit the `materialize`, `rename` and
//! `loop` operators act on.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;

/// One tuple. Boxed slice keeps the footprint at two words and makes
/// accidental growth impossible.
pub type Row = Box<[Value]>;

/// Build a row from an iterator of values.
pub fn row_of<I: IntoIterator<Item = Value>>(values: I) -> Row {
    values.into_iter().collect::<Vec<_>>().into_boxed_slice()
}

/// A fully materialized set of rows sharing one schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: SchemaRef,
    rows: Vec<Row>,
}

impl Batch {
    /// Batch from parts. Debug builds assert width agreement.
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == schema.len()),
            "row width does not match schema width"
        );
        Batch { schema, rows }
    }

    /// Empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        Batch {
            schema,
            rows: Vec::new(),
        }
    }

    /// Checked constructor: errors when any row width disagrees with the
    /// schema. Used at ingestion boundaries (INSERT, CSV load).
    pub fn try_new(schema: SchemaRef, rows: Vec<Row>) -> Result<Self> {
        if let Some(bad) = rows.iter().find(|r| r.len() != schema.len()) {
            return Err(Error::execution(format!(
                "row width {} does not match schema width {}",
                bad.len(),
                schema.len()
            )));
        }
        Ok(Batch { schema, rows })
    }

    /// Shared schema handle.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Borrow all rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume into the row vector.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Replace the schema handle without touching the data (rename /
    /// re-qualification). Widths must agree.
    pub fn with_schema(self, schema: SchemaRef) -> Result<Self> {
        if schema.len() != self.schema.len() {
            return Err(Error::execution(format!(
                "cannot retarget batch of width {} to schema of width {}",
                self.schema.len(),
                schema.len()
            )));
        }
        Ok(Batch {
            schema,
            rows: self.rows,
        })
    }

    /// Append the rows of `other`; schemas must have equal width (UNION ALL).
    pub fn append(&mut self, other: Batch) -> Result<()> {
        if other.schema.len() != self.schema.len() {
            return Err(Error::execution(format!(
                "UNION width mismatch: {} vs {}",
                self.schema.len(),
                other.schema.len()
            )));
        }
        self.rows.extend(other.rows);
        Ok(())
    }

    /// Pretty-print as an ASCII table (examples and the repro binary).
    pub fn to_table(&self) -> String {
        let names: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = names.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (name, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {name:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

/// Helper for tests and examples: batch from a schema and literal rows.
pub fn batch_of(schema: Schema, rows: Vec<Vec<Value>>) -> Batch {
    Batch::new(
        Arc::new(schema),
        rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::value::DataType;

    fn schema2() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Text),
        ])
    }

    #[test]
    fn try_new_rejects_ragged_rows() {
        let schema = Arc::new(schema2());
        let rows = vec![row_of([Value::Int(1)])];
        assert!(Batch::try_new(schema, rows).is_err());
    }

    #[test]
    fn append_checks_width() {
        let mut b = batch_of(schema2(), vec![vec![Value::Int(1), Value::from("x")]]);
        let narrow = batch_of(
            Schema::new(vec![Field::new("a", DataType::Int)]),
            vec![vec![Value::Int(2)]],
        );
        assert!(b.append(narrow).is_err());
        let ok = batch_of(schema2(), vec![vec![Value::Int(2), Value::from("y")]]);
        b.append(ok).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn with_schema_keeps_rows() {
        let b = batch_of(schema2(), vec![vec![Value::Int(1), Value::from("x")]]);
        let renamed = b
            .clone()
            .with_schema(Arc::new(schema2().qualify_all("t")))
            .unwrap();
        assert_eq!(renamed.rows(), b.rows());
    }

    #[test]
    fn to_table_renders_header_and_rows() {
        let b = batch_of(schema2(), vec![vec![Value::Int(1), Value::from("hi")]]);
        let t = b.to_table();
        assert!(t.contains("| a | b  |"));
        assert!(t.contains("| 1 | hi |"));
    }
}
