//! Cooperative query guardrails: cancellation, deadline, resource budgets.
//!
//! A [`QueryGuard`] is a shared token (wrap it in an `Arc` to signal from
//! another thread) that the executor consults at operator batch
//! boundaries and at every loop iteration. It carries three kinds of
//! limits, all unlimited by default:
//!
//! * a **cancel flag** — [`QueryGuard::cancel`] makes the next
//!   [`QueryGuard::check`] return [`Error::Cancelled`];
//! * a **wall-clock deadline** — `check` returns [`Error::Timeout`] once
//!   the elapsed time passes `query_timeout_ms`;
//! * **atomic budgets** for rows materialized into temp results, rows
//!   moved through exchange operators, and estimated bytes of
//!   intermediate state — the `charge_*` methods return
//!   [`Error::ResourceExhausted`] when a budget trips.
//!
//! Checks are cooperative: a guard never interrupts a worker
//! pre-emptively, it only fails the next boundary check, which keeps
//! catalog and temp-result state consistent (partial working tables are
//! cleaned up by the engine's normal error path).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::config::EngineConfig;
use crate::error::{Error, Result};

/// An atomic counter with an upper bound (`u64::MAX` = unlimited).
#[derive(Debug)]
struct Budget {
    used: AtomicU64,
    limit: u64,
}

impl Budget {
    fn unlimited() -> Self {
        Budget {
            used: AtomicU64::new(0),
            limit: u64::MAX,
        }
    }

    fn limited(limit: Option<u64>) -> Self {
        Budget {
            used: AtomicU64::new(0),
            limit: limit.unwrap_or(u64::MAX),
        }
    }

    /// Add `amount`; error once the running total exceeds the limit.
    fn charge(&self, resource: &str, amount: u64) -> Result<()> {
        let used = self
            .used
            .fetch_add(amount, Ordering::Relaxed)
            .saturating_add(amount);
        if used > self.limit {
            return Err(Error::ResourceExhausted {
                resource: resource.to_string(),
                used,
                limit: self.limit,
            });
        }
        Ok(())
    }

    fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

/// Shared guardrail token for one query (or one script).
///
/// See the [module docs](self) for semantics. Constructed from an
/// [`EngineConfig`] (the engine does this per statement) or explicitly
/// via the builder methods for caller-supplied limits:
///
/// ```
/// use spinner_common::QueryGuard;
/// let guard = QueryGuard::unlimited().with_timeout_ms(50);
/// assert!(guard.check().is_ok());
/// ```
#[derive(Debug)]
pub struct QueryGuard {
    cancelled: AtomicBool,
    worker_abort: AtomicBool,
    started: Instant,
    deadline: Option<Instant>,
    limit_ms: u64,
    rows_materialized: Budget,
    rows_moved: Budget,
    intermediate_bytes: Budget,
}

impl Default for QueryGuard {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl QueryGuard {
    /// A guard with no limits: checks always pass until [`cancel`] is
    /// called.
    ///
    /// [`cancel`]: QueryGuard::cancel
    pub fn unlimited() -> Self {
        QueryGuard {
            cancelled: AtomicBool::new(false),
            worker_abort: AtomicBool::new(false),
            started: Instant::now(),
            deadline: None,
            limit_ms: 0,
            rows_materialized: Budget::unlimited(),
            rows_moved: Budget::unlimited(),
            intermediate_bytes: Budget::unlimited(),
        }
    }

    /// A guard carrying the session-default limits of `config`
    /// (`query_timeout_ms`, `max_rows_materialized`, `max_rows_moved`,
    /// `max_intermediate_bytes`). The clock starts now.
    pub fn from_config(config: &EngineConfig) -> Self {
        let started = Instant::now();
        QueryGuard {
            cancelled: AtomicBool::new(false),
            worker_abort: AtomicBool::new(false),
            started,
            deadline: config
                .query_timeout_ms
                .map(|ms| started + std::time::Duration::from_millis(ms)),
            limit_ms: config.query_timeout_ms.unwrap_or(0),
            rows_materialized: Budget::limited(config.max_rows_materialized),
            rows_moved: Budget::limited(config.max_rows_moved),
            intermediate_bytes: Budget::limited(config.max_intermediate_bytes),
        }
    }

    /// Builder: wall-clock deadline, measured from guard creation.
    pub fn with_timeout_ms(mut self, limit_ms: u64) -> Self {
        self.deadline = Some(self.started + std::time::Duration::from_millis(limit_ms));
        self.limit_ms = limit_ms;
        self
    }

    /// Builder: budget for rows materialized into temp results.
    pub fn with_max_rows_materialized(mut self, limit: u64) -> Self {
        self.rows_materialized = Budget::limited(Some(limit));
        self
    }

    /// Builder: budget for rows moved through exchange operators.
    pub fn with_max_rows_moved(mut self, limit: u64) -> Self {
        self.rows_moved = Budget::limited(Some(limit));
        self
    }

    /// Builder: budget for estimated bytes of intermediate state.
    pub fn with_max_intermediate_bytes(mut self, limit: u64) -> Self {
        self.intermediate_bytes = Budget::limited(Some(limit));
        self
    }

    /// Request cooperative cancellation; the next [`check`] anywhere in
    /// the pipeline fails with [`Error::Cancelled`]. Safe to call from
    /// any thread, any number of times.
    ///
    /// [`check`]: QueryGuard::check
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`QueryGuard::cancel`] has been called.
    ///
    /// Reflects *external* cancellation only — internal worker aborts
    /// (see [`QueryGuard::abort_workers`]) do not show up here.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Request an *internal* stop of in-flight sibling workers, e.g.
    /// because one partition exhausted its retries. Like [`cancel`] this
    /// makes the next [`check`] fail with [`Error::Cancelled`], but unlike
    /// external cancellation it is clearable: the recovery subsystem calls
    /// [`clear_worker_abort`] before replaying from a checkpoint.
    ///
    /// [`cancel`]: QueryGuard::cancel
    /// [`check`]: QueryGuard::check
    /// [`clear_worker_abort`]: QueryGuard::clear_worker_abort
    pub fn abort_workers(&self) {
        self.worker_abort.store(true, Ordering::Release);
    }

    /// Whether an internal worker abort is pending (and not yet cleared).
    pub fn worker_abort_requested(&self) -> bool {
        self.worker_abort.load(Ordering::Acquire)
    }

    /// Clear a pending internal worker abort so a rollback can replay.
    /// External cancellation ([`QueryGuard::cancel`]) is sticky and is
    /// *not* cleared by this.
    pub fn clear_worker_abort(&self) {
        self.worker_abort.store(false, Ordering::Release);
    }

    /// Milliseconds since the guard was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The boundary check: fails with [`Error::Cancelled`] or
    /// [`Error::Timeout`]. Called at operator batch boundaries, between
    /// step-program steps, and at every loop iteration.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() || self.worker_abort_requested() {
            return Err(Error::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Error::Timeout {
                    elapsed_ms: self.elapsed_ms(),
                    limit_ms: self.limit_ms,
                });
            }
        }
        Ok(())
    }

    /// Charge rows written into a materialized temp result.
    pub fn charge_rows_materialized(&self, rows: u64) -> Result<()> {
        self.rows_materialized.charge("rows_materialized", rows)
    }

    /// Charge rows crossing an exchange (shuffle/gather/broadcast).
    pub fn charge_rows_moved(&self, rows: u64) -> Result<()> {
        self.rows_moved.charge("rows_moved", rows)
    }

    /// Charge estimated bytes of intermediate state.
    pub fn charge_intermediate_bytes(&self, bytes: u64) -> Result<()> {
        self.intermediate_bytes.charge("intermediate_bytes", bytes)
    }

    /// Rows materialized so far (observability / tests).
    pub fn rows_materialized_used(&self) -> u64 {
        self.rows_materialized.used()
    }

    /// Rows moved through exchanges so far (observability / tests).
    pub fn rows_moved_used(&self) -> u64 {
        self.rows_moved.used()
    }

    /// Estimated intermediate bytes so far (observability / tests).
    pub fn intermediate_bytes_used(&self) -> u64 {
        self.intermediate_bytes.used()
    }

    /// The configured intermediate-bytes budget, `None` when unlimited.
    ///
    /// With spilling enabled the executor enforces this limit against
    /// *resident* bytes (after a spill pass) instead of the cumulative
    /// charge, so it needs the raw limit rather than
    /// [`charge_intermediate_bytes`](Self::charge_intermediate_bytes).
    pub fn intermediate_bytes_limit(&self) -> Option<u64> {
        let limit = self.intermediate_bytes.limit;
        (limit != u64::MAX).then_some(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_always_passes() {
        let g = QueryGuard::unlimited();
        assert!(g.check().is_ok());
        assert!(g.charge_rows_materialized(u64::MAX / 2).is_ok());
        assert!(g.charge_rows_moved(u64::MAX / 2).is_ok());
    }

    #[test]
    fn cancel_trips_check() {
        let g = QueryGuard::unlimited();
        assert!(g.check().is_ok());
        g.cancel();
        assert_eq!(g.check(), Err(Error::Cancelled));
    }

    #[test]
    fn cancel_works_across_threads() {
        let g = std::sync::Arc::new(QueryGuard::unlimited());
        let g2 = std::sync::Arc::clone(&g);
        std::thread::spawn(move || g2.cancel()).join().unwrap();
        assert_eq!(g.check(), Err(Error::Cancelled));
    }

    #[test]
    fn deadline_trips_check() {
        let g = QueryGuard::unlimited().with_timeout_ms(5);
        assert!(g.check().is_ok());
        std::thread::sleep(std::time::Duration::from_millis(10));
        match g.check() {
            Err(Error::Timeout {
                elapsed_ms,
                limit_ms,
            }) => {
                assert_eq!(limit_ms, 5);
                assert!(elapsed_ms >= 5, "elapsed {elapsed_ms} < 5");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn budget_reports_used_at_least_limit() {
        let g = QueryGuard::unlimited().with_max_rows_materialized(100);
        assert!(g.charge_rows_materialized(60).is_ok());
        match g.charge_rows_materialized(60) {
            Err(Error::ResourceExhausted {
                resource,
                used,
                limit,
            }) => {
                assert_eq!(resource, "rows_materialized");
                assert_eq!(limit, 100);
                assert!(used >= limit, "used {used} < limit {limit}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn budgets_are_independent() {
        let g = QueryGuard::unlimited().with_max_rows_moved(10);
        assert!(g.charge_rows_materialized(1000).is_ok());
        assert!(g.charge_intermediate_bytes(1000).is_ok());
        assert!(g.charge_rows_moved(11).is_err());
    }

    #[test]
    fn worker_abort_trips_check_but_is_clearable() {
        let g = QueryGuard::unlimited();
        g.abort_workers();
        assert!(g.worker_abort_requested());
        assert_eq!(g.check(), Err(Error::Cancelled));
        // Not an external cancellation...
        assert!(!g.is_cancelled());
        // ...and recovery can clear it and resume.
        g.clear_worker_abort();
        assert!(g.check().is_ok());
    }

    #[test]
    fn external_cancel_survives_worker_abort_clear() {
        let g = QueryGuard::unlimited();
        g.cancel();
        g.abort_workers();
        g.clear_worker_abort();
        assert_eq!(g.check(), Err(Error::Cancelled));
        assert!(g.is_cancelled());
    }

    #[test]
    fn from_config_picks_up_limits() {
        let config = crate::EngineConfig::default()
            .with_max_rows_materialized(5)
            .with_query_timeout_ms(60_000);
        let g = QueryGuard::from_config(&config);
        assert!(g.check().is_ok());
        assert!(g.charge_rows_materialized(6).is_err());
    }
}
