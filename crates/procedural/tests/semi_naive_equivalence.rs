//! Delta-equivalence suite for the semi-naive optimizer rewrite.
//!
//! The rewrite must be *invisible* in results: every workload, graph, and
//! partition count has to produce byte-identical output with semi-naive
//! execution on and off. Non-monotone loop bodies must not be rewritten at
//! all — they take the full-recompute path, observable through the
//! executor's `semi_naive_loops` counter and the EXPLAIN ANALYZE
//! `iteration:` line.

use proptest::prelude::*;
use spinner_common::{DataType, EngineConfig, Field, Row, Schema};
use spinner_datagen::GraphSpec;
use spinner_engine::Database;
use spinner_procedural::queries;

fn edge_schema() -> Schema {
    Schema::new(vec![
        Field::new("src", DataType::Int),
        Field::new("dst", DataType::Int),
        Field::new("weight", DataType::Float),
    ])
}

fn database(partitions: usize, semi_naive: bool, rows: Vec<Row>) -> Database {
    let db = Database::new(
        EngineConfig::default()
            .with_partitions(partitions)
            .with_semi_naive(semi_naive),
    )
    .unwrap();
    db.create_table_from_rows("edges", edge_schema(), rows, None, Some(1))
        .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs x every workload x semi-naive on/off x partition
    /// counts {1, 2, 4}: results must be identical.
    #[test]
    fn semi_naive_matches_full_recompute(
        nodes in 10usize..40,
        extra_edges in 0usize..60,
        seed in 0u64..1000,
        partitions in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let spec = GraphSpec {
            nodes,
            edges: nodes + extra_edges,
            seed,
            max_weight: 7,
        };
        let symmetric = spec.generate_symmetric_components(2);
        let directed = spec.generate();
        let workloads = [
            (queries::connected_components(None).cte, symmetric),
            (queries::sssp_convergent(1, None).cte, directed.clone()),
            (queries::sssp(10, 1, false).cte, directed.clone()),
            (queries::pagerank(5, false).cte, directed.clone()),
            (queries::ff(5, 10).cte, directed),
        ];
        for (sql, rows) in workloads {
            let on = database(partitions, true, rows.clone());
            let off = database(partitions, false, rows);
            let got = on.query(&sql).unwrap();
            let want = off.query(&sql).unwrap();
            prop_assert_eq!(got.rows(), want.rows(), "sql: {}", sql);
        }
    }
}

#[test]
fn monotone_workloads_run_semi_naive() {
    let spec = GraphSpec {
        nodes: 30,
        edges: 70,
        seed: 7,
        max_weight: 5,
    };
    for sql in [
        queries::connected_components(None).cte,
        queries::sssp_convergent(1, None).cte,
    ] {
        let db = database(2, true, spec.generate_symmetric_components(2));
        db.query(&sql).unwrap();
        let stats = db.stats();
        assert_eq!(stats.semi_naive_loops, 1, "expected rewrite for: {sql}");
        assert!(stats.delta_rows_fed > 0, "delta never consumed for: {sql}");
    }
}

#[test]
fn non_monotone_workloads_fall_back_to_full_recompute() {
    let spec = GraphSpec {
        nodes: 30,
        edges: 70,
        seed: 7,
        max_weight: 5,
    };
    // PageRank's SUM is not a monotone accumulator, FF reads its CTE only
    // once (no join to substitute), and the paper-literal SSSP rebuilds a
    // scratch `delta` column from the raw MIN — all three must keep the
    // full-recompute loop even with semi-naive enabled.
    for sql in [
        queries::pagerank(3, false).cte,
        queries::ff(3, 10).cte,
        queries::sssp(3, 1, false).cte,
    ] {
        let db = database(2, true, spec.generate());
        db.query(&sql).unwrap();
        assert_eq!(
            db.stats().semi_naive_loops,
            0,
            "unsound rewrite applied to: {sql}"
        );
    }
}

#[test]
fn explain_analyze_reports_iteration_mode() {
    let spec = GraphSpec {
        nodes: 24,
        edges: 48,
        seed: 3,
        max_weight: 5,
    };
    let cc = queries::connected_components(None).cte;
    let on = database(2, true, spec.generate_symmetric_components(2));
    let text = on.explain_analyze(&cc).unwrap().render();
    assert!(
        text.contains("iteration: mode=semi_naive"),
        "missing semi-naive mode line:\n{text}"
    );
    let off = database(2, false, spec.generate_symmetric_components(2));
    let text = off.explain_analyze(&cc).unwrap().render();
    assert!(
        text.contains("iteration: mode=full"),
        "missing full mode line:\n{text}"
    );
}
