use spinner_common::{DataType, EngineConfig, Field, Row, Schema, Value};
use spinner_engine::Database;

fn edge_schema() -> Schema {
    Schema::new(vec![
        Field::new("src", DataType::Int),
        Field::new("dst", DataType::Int),
    ])
}

fn db(semi_naive: bool, rows: Vec<Row>) -> Database {
    let db = Database::new(EngineConfig::default().with_semi_naive(semi_naive)).unwrap();
    db.create_table_from_rows("edges", edge_schema(), rows, None, Some(1))
        .unwrap();
    db
}

#[test]
fn anchor_column_in_fold_equivalence() {
    // Graph: 1 -> 2. Node 1 has no incoming edge.
    let rows = vec![vec![Value::Int(1), Value::Int(2)].into_boxed_slice()];
    let sql = "WITH ITERATIVE t (node, a, b) AS ( \
          SELECT src, src, 100 FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
        ITERATE SELECT t.node, t.a, LEAST(t.b, t.a, COALESCE(MIN(nbr.b), t.b)) \
           FROM t LEFT JOIN edges AS e ON t.node = e.dst \
                  LEFT JOIN t AS nbr ON nbr.node = e.src \
           GROUP BY t.node, t.a, t.b \
        UNTIL DELTA < 1 ) \
       SELECT node, a, b FROM t ORDER BY node";
    let on = db(true, rows.clone());
    let off = db(false, rows);
    let got = on.query(sql).unwrap();
    let want = off.query(sql).unwrap();
    eprintln!("semi_naive_loops on={}", on.stats().semi_naive_loops);
    assert_eq!(got.rows(), want.rows());
}
