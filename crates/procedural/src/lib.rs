//! Baseline execution strategies the paper compares against (§II, §VII-E):
//!
//! * **Stored procedures** — the computation is a statement list executed
//!   one statement at a time *inside* the engine. Each statement is
//!   planned and optimized in isolation, so no loop-level optimization
//!   (rename, common-result hoisting, cross-block push-down) can apply.
//! * **SQLoop-style middleware** — the same statement-at-a-time execution
//!   driven from *outside*, maintaining its intermediate state in real
//!   temporary tables with CREATE/DROP per iteration (metadata churn) and
//!   INSERT/UPDATE/DELETE DML (per-row update cost).
//!
//! [`queries`] holds the canonical SQL for the paper's four workloads in
//! all three formulations (iterative CTE / stored procedure / middleware),
//! and [`runner`] executes the procedural scripts while counting
//! statements and DDL operations.

pub mod queries;
pub mod runner;
pub mod workloads;

pub use queries::{connected_components, ff, pagerank, sssp, sssp_convergent};
pub use runner::{run_script, run_script_with_guard, ProcedureScript, RunReport};
pub use workloads::{
    kmeans_cte, label_propagation_cte, logistic_regression_cte, triangle_rank_cte,
};
