//! Statement-at-a-time script runner.

use spinner_common::{Batch, QueryGuard, Result};
use spinner_engine::{Database, QueryResult};

/// A procedural workload: setup once, iterate N times, read the result,
/// clean up. Mirrors the paper's stored procedures ("a procedure that
/// executes R0 one time and then a loop that executes Ri for 25 times")
/// and, with DDL inside `iteration`, the SQLoop middleware loop of Fig. 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureScript {
    /// Human-readable name for reports.
    pub name: String,
    /// Run once: temp-table DDL plus the non-iterative part R0.
    pub setup: Vec<String>,
    /// Run `iterations` times, in order.
    pub iteration: Vec<String>,
    pub iterations: u64,
    /// The final query Qf.
    pub final_query: String,
    /// Run once at the end (DROP temp tables).
    pub cleanup: Vec<String>,
}

/// What a script run cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Rows returned by the final query.
    pub rows: Batch,
    /// Total statements sent to the engine.
    pub statements_executed: u64,
    /// CREATE/DROP operations performed during the run (the middleware
    /// metadata overhead of §II).
    pub ddl_ops: u64,
    /// Rows touched by DML statements.
    pub dml_rows: u64,
}

/// Execute a script against the engine, one statement at a time — each
/// statement parsed, planned and optimized in isolation, exactly the
/// property that makes procedural baselines slower than the native plan.
pub fn run_script(db: &Database, script: &ProcedureScript) -> Result<RunReport> {
    run_script_with_guard(db, script, &QueryGuard::unlimited())
}

/// [`run_script`] under a caller-supplied [`QueryGuard`]: every setup,
/// iteration and final-query statement checks the shared guard, so a
/// cancel or deadline stops the script between statements (and, via the
/// engine, mid-loop inside a statement). Cleanup statements deliberately
/// run with a *fresh* unlimited guard — a timed-out experiment must
/// still be able to drop its temp tables.
pub fn run_script_with_guard(
    db: &Database,
    script: &ProcedureScript,
    guard: &QueryGuard,
) -> Result<RunReport> {
    fn run(
        db: &Database,
        sql: &str,
        guard: &QueryGuard,
        statements: &mut u64,
        dml_rows: &mut u64,
    ) -> Result<()> {
        *statements += 1;
        if let QueryResult::Affected { rows } = db.execute_with_guard(sql, guard)? {
            *dml_rows += rows as u64;
        }
        Ok(())
    }
    fn body(
        db: &Database,
        script: &ProcedureScript,
        guard: &QueryGuard,
        statements: &mut u64,
        dml_rows: &mut u64,
    ) -> Result<Batch> {
        for sql in &script.setup {
            run(db, sql, guard, statements, dml_rows)?;
        }
        for _ in 0..script.iterations {
            for sql in &script.iteration {
                run(db, sql, guard, statements, dml_rows)?;
            }
        }
        *statements += 1;
        db.query_with_guard(&script.final_query, guard)
    }
    let ddl_before = db.catalog().ddl_op_count();
    let mut statements = 0u64;
    let mut dml_rows = 0u64;
    let result = body(db, script, guard, &mut statements, &mut dml_rows);
    // Cleanup always runs — under a fresh guard — so a failed or
    // cancelled experiment leaves no debris.
    let cleanup_guard = QueryGuard::unlimited();
    for sql in &script.cleanup {
        statements += 1;
        let _ = db.execute_with_guard(sql, &cleanup_guard);
    }
    let rows = result?;
    Ok(RunReport {
        rows,
        statements_executed: statements,
        ddl_ops: db.catalog().ddl_op_count() - ddl_before,
        dml_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::Value;

    #[test]
    fn script_counts_statements_and_ddl() {
        let db = Database::default();
        db.execute("CREATE TABLE base (x INT)").unwrap();
        db.execute("INSERT INTO base VALUES (1), (2)").unwrap();
        let script = ProcedureScript {
            name: "toy".into(),
            setup: vec![
                "CREATE TABLE acc (x INT)".into(),
                "INSERT INTO acc SELECT x FROM base".into(),
            ],
            iteration: vec!["UPDATE acc SET x = x + 1".into()],
            iterations: 3,
            final_query: "SELECT SUM(x) FROM acc".into(),
            cleanup: vec!["DROP TABLE acc".into()],
        };
        let report = run_script(&db, &script).unwrap();
        // setup 2 + 3 iterations * 1 + final 1 + cleanup 1
        assert_eq!(report.statements_executed, 7);
        assert_eq!(report.ddl_ops, 2); // CREATE + DROP of acc
        assert_eq!(report.rows.rows()[0][0], Value::Int(1 + 2 + 2 * 3));
        assert!(!db.catalog().contains("acc"));
    }

    #[test]
    fn cleanup_runs_even_on_failure() {
        let db = Database::default();
        let script = ProcedureScript {
            name: "bad".into(),
            setup: vec!["CREATE TABLE tmp (x INT)".into()],
            iteration: vec!["SELECT broken FROM tmp".into()],
            iterations: 1,
            final_query: "SELECT 1".into(),
            cleanup: vec!["DROP TABLE tmp".into()],
        };
        assert!(run_script(&db, &script).is_err());
        assert!(!db.catalog().contains("tmp"), "cleanup must still drop tmp");
    }
}
