//! Canonical SQL for the paper's workloads, in all three formulations.
//!
//! * `cte` — the native iterative-CTE query (Figures 2, 6, 7 of the
//!   paper; the `-VS` variants add the `vertexStatus` join of §V-A);
//! * `procedure` — a stored-procedure-style statement list (R0 once, Ri in
//!   a loop via DELETE + INSERT + UPDATE on persistent temp tables);
//! * `middleware` — the SQLoop-style external loop of Fig. 1, which also
//!   CREATEs and DROPs its working table every iteration (metadata churn).
//!
//! All three compute identical results so experiments can assert equality
//! before timing anything. One deliberate deviation from the paper's
//! verbatim text: the FF query's `R0` casts `count(dst)` to FLOAT so the
//! dynamically-typed CTE formulation divides in floating point from the
//! first iteration, exactly like the baselines' FLOAT-typed temp tables.

use crate::runner::ProcedureScript;

/// The three formulations of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSql {
    /// Native iterative CTE.
    pub cte: String,
    /// Stored-procedure-style statement loop.
    pub procedure: ProcedureScript,
    /// SQLoop middleware-style loop (DDL per iteration).
    pub middleware: ProcedureScript,
}

/// Fragment shared by the PR/SSSP iterative parts when the `-VS` variant
/// restricts the computation to available nodes (paper §V-A).
fn vs_join(edge_alias: &str) -> String {
    format!(" JOIN vertexstatus AS avail_pr ON avail_pr.node = {edge_alias}.dst")
}

/// PageRank (paper Fig. 2; `with_vertex_status` = the PR-VS variant).
pub fn pagerank(iterations: u64, with_vertex_status: bool) -> WorkloadSql {
    let (join, where_clause) = if with_vertex_status {
        (
            vs_join("IncomingEdges"),
            "WHERE avail_pr.status != 0".to_string(),
        )
    } else {
        (String::new(), String::new())
    };
    let iterative_body = |main: &str| {
        format!(
            "SELECT {main}.node, \
                    {main}.rank + {main}.delta, \
                    0.85 * SUM(IncomingRank.delta * IncomingEdges.weight) \
             FROM {main} \
               LEFT JOIN edges AS IncomingEdges ON {main}.node = IncomingEdges.dst\
               {join} \
               LEFT JOIN {main} AS IncomingRank ON IncomingRank.node = IncomingEdges.src \
             {where_clause} \
             GROUP BY {main}.node, {main}.rank + {main}.delta"
        )
    };
    let cte = format!(
        "WITH ITERATIVE PageRank (node, rank, delta) AS ( \
            SELECT src, 0, 0.15 \
            FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
          ITERATE {} \
          UNTIL {iterations} ITERATIONS ) \
         SELECT node, rank FROM PageRank ORDER BY node",
        iterative_body("PageRank"),
    );
    let create_work = "CREATE TABLE pr_work (node INT, rank FLOAT, delta FLOAT)";
    let create_main = "CREATE TABLE pr_main (node INT, rank FLOAT, delta FLOAT)";
    let init = "INSERT INTO pr_main \
                SELECT src, 0, 0.15 \
                FROM (SELECT src FROM edges UNION SELECT dst FROM edges)";
    let insert_work = format!("INSERT INTO pr_work {}", iterative_body("pr_main"));
    let update = "UPDATE pr_main SET rank = pr_work.rank, delta = pr_work.delta \
                  FROM pr_work WHERE pr_main.node = pr_work.node";
    let final_query = "SELECT node, rank FROM pr_main ORDER BY node";
    let procedure = ProcedureScript {
        name: format!(
            "pagerank{}-procedure",
            if with_vertex_status { "-vs" } else { "" }
        ),
        setup: vec![create_work.into(), create_main.into(), init.into()],
        iteration: vec![
            "DELETE FROM pr_work".into(),
            insert_work.clone(),
            update.into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec!["DROP TABLE pr_work".into(), "DROP TABLE pr_main".into()],
    };
    let middleware = ProcedureScript {
        name: format!(
            "pagerank{}-middleware",
            if with_vertex_status { "-vs" } else { "" }
        ),
        setup: vec![create_main.into(), init.into()],
        iteration: vec![
            create_work.into(),
            insert_work,
            update.into(),
            "DROP TABLE pr_work".into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec![
            "DROP TABLE IF EXISTS pr_work".into(),
            "DROP TABLE pr_main".into(),
        ],
    };
    WorkloadSql {
        cte,
        procedure,
        middleware,
    }
}

/// Single-source shortest path (paper Fig. 7; optional PR-VS-style
/// restriction to available nodes).
pub fn sssp(iterations: u64, source: i64, with_vertex_status: bool) -> WorkloadSql {
    let (join, vs_pred) = if with_vertex_status {
        (vs_join("IncomingEdges"), " AND avail_pr.status != 0")
    } else {
        (String::new(), "")
    };
    let iterative_body = |main: &str| {
        format!(
            "SELECT {main}.node, \
                    LEAST({main}.distance, {main}.delta), \
                    COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999) \
             FROM {main} \
               LEFT JOIN edges AS IncomingEdges ON {main}.node = IncomingEdges.dst\
               {join} \
               LEFT JOIN {main} AS IncomingDistance \
                 ON IncomingDistance.node = IncomingEdges.src \
             WHERE IncomingDistance.delta != 9999999{vs_pred} \
             GROUP BY {main}.node, LEAST({main}.distance, {main}.delta)"
        )
    };
    let cte = format!(
        "WITH ITERATIVE sssp (node, distance, delta) AS ( \
            SELECT src, 9999999, CASE WHEN src = {source} THEN 0 ELSE 9999999 END \
            FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
          ITERATE {} \
          UNTIL {iterations} ITERATIONS ) \
         SELECT node, distance FROM sssp ORDER BY node",
        iterative_body("sssp"),
    );
    let create_work = "CREATE TABLE ss_work (node INT, distance FLOAT, delta FLOAT)";
    let create_main = "CREATE TABLE ss_main (node INT, distance FLOAT, delta FLOAT)";
    let init = format!(
        "INSERT INTO ss_main \
         SELECT src, 9999999, CASE WHEN src = {source} THEN 0 ELSE 9999999 END \
         FROM (SELECT src FROM edges UNION SELECT dst FROM edges)"
    );
    let insert_work = format!("INSERT INTO ss_work {}", iterative_body("ss_main"));
    let update = "UPDATE ss_main SET distance = ss_work.distance, delta = ss_work.delta \
                  FROM ss_work WHERE ss_main.node = ss_work.node";
    let final_query = "SELECT node, distance FROM ss_main ORDER BY node";
    let procedure = ProcedureScript {
        name: format!(
            "sssp{}-procedure",
            if with_vertex_status { "-vs" } else { "" }
        ),
        setup: vec![create_work.into(), create_main.into(), init.clone()],
        iteration: vec![
            "DELETE FROM ss_work".into(),
            insert_work.clone(),
            update.into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec!["DROP TABLE ss_work".into(), "DROP TABLE ss_main".into()],
    };
    let middleware = ProcedureScript {
        name: format!(
            "sssp{}-middleware",
            if with_vertex_status { "-vs" } else { "" }
        ),
        setup: vec![create_main.into(), init],
        iteration: vec![
            create_work.into(),
            insert_work,
            update.into(),
            "DROP TABLE ss_work".into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec![
            "DROP TABLE IF EXISTS ss_work".into(),
            "DROP TABLE ss_main".into(),
        ],
    };
    WorkloadSql {
        cte,
        procedure,
        middleware,
    }
}

/// Single-source shortest path in *accumulator* form, running until no
/// distance improves (`UNTIL DELTA < 1`). Unlike the paper-literal
/// [`sssp`], which carries a scratch `delta` column rebuilt from the raw
/// `MIN` every round, this formulation folds the aggregate into the old
/// distance with `LEAST(old, COALESCE(MIN(..), old))` — the monotone
/// accumulator shape the semi-naive optimizer rewrite accepts, so the
/// per-iteration join shrinks with the frontier instead of re-scanning
/// every settled node. No `WHERE distance != 9999999` guard is needed:
/// the sentinel behaves as infinity (`9999999 + w` never beats a real
/// distance under `LEAST`), and once the delta rewrite kicks in the join
/// input is the changed-row set anyway. Both formulations converge to
/// identical distances; this one is the showcase for `repro convergence`.
pub fn sssp_convergent(source: i64, max_iterations_hint: Option<u64>) -> WorkloadSql {
    let until = match max_iterations_hint {
        Some(n) => format!("{n} ITERATIONS"),
        None => "DELTA < 1".to_string(),
    };
    let iterative_body = |main: &str| {
        format!(
            "SELECT {main}.node, \
                    LEAST({main}.distance, \
                          COALESCE(MIN(inc.distance + e.weight), {main}.distance)) \
             FROM {main} \
               LEFT JOIN edges AS e ON {main}.node = e.dst \
               LEFT JOIN {main} AS inc ON inc.node = e.src \
             GROUP BY {main}.node, {main}.distance"
        )
    };
    let init_select = format!(
        "SELECT src, CASE WHEN src = {source} THEN 0 ELSE 9999999 END \
         FROM (SELECT src FROM edges UNION SELECT dst FROM edges)"
    );
    let cte = format!(
        "WITH ITERATIVE sssp (node, distance) AS ( \
            {init_select} \
          ITERATE {} \
          UNTIL {until} ) \
         SELECT node, distance FROM sssp ORDER BY node",
        iterative_body("sssp"),
    );
    // As with connected components, statement loops cannot express delta
    // termination; the procedural baselines run a fixed count.
    let iterations = max_iterations_hint.unwrap_or(64);
    let create_work = "CREATE TABLE sc_work (node INT, distance FLOAT)";
    let create_main = "CREATE TABLE sc_main (node INT, distance FLOAT)";
    let init = format!("INSERT INTO sc_main {init_select}");
    let insert_work = format!("INSERT INTO sc_work {}", iterative_body("sc_main"));
    let update = "UPDATE sc_main SET distance = sc_work.distance \
                  FROM sc_work WHERE sc_main.node = sc_work.node";
    let final_query = "SELECT node, distance FROM sc_main ORDER BY node";
    let procedure = ProcedureScript {
        name: "sssp-convergent-procedure".into(),
        setup: vec![create_work.into(), create_main.into(), init.clone()],
        iteration: vec![
            "DELETE FROM sc_work".into(),
            insert_work.clone(),
            update.into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec!["DROP TABLE sc_work".into(), "DROP TABLE sc_main".into()],
    };
    let middleware = ProcedureScript {
        name: "sssp-convergent-middleware".into(),
        setup: vec![create_main.into(), init],
        iteration: vec![
            create_work.into(),
            insert_work,
            update.into(),
            "DROP TABLE sc_work".into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec![
            "DROP TABLE IF EXISTS sc_work".into(),
            "DROP TABLE sc_main".into(),
        ],
    };
    WorkloadSql {
        cte,
        procedure,
        middleware,
    }
}

/// Forecast-Friends (paper Fig. 6). `mod_x` controls the final-query
/// selectivity: `MOD(node, mod_x) = 0` keeps ~1/mod_x of the rows.
pub fn ff(iterations: u64, mod_x: i64) -> WorkloadSql {
    let iterative_body = |main: &str| {
        format!(
            "SELECT node AS node, \
                    round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends, \
                    friends AS friendsPrev \
             FROM {main}"
        )
    };
    let init_select = "SELECT src AS node, \
                        CAST(count(dst) AS FLOAT) AS friends, \
                        CAST(ceiling(count(dst) * (1.0 - (src % 10) / 100.0)) AS FLOAT) \
                          AS friendsPrev \
                       FROM edges GROUP BY src";
    let final_tail = format!("WHERE MOD(node, {mod_x}) = 0 ORDER BY friends DESC, node LIMIT 10");
    let cte = format!(
        "WITH ITERATIVE forecast (node, friends, friendsPrev) AS ( \
            {init_select} \
          ITERATE {} \
          UNTIL {iterations} ITERATIONS ) \
         SELECT node, friends FROM forecast {final_tail}",
        iterative_body("forecast"),
    );
    let create_work = "CREATE TABLE ff_work (node INT, friends FLOAT, friendsPrev FLOAT)";
    let create_main = "CREATE TABLE ff_main (node INT, friends FLOAT, friendsPrev FLOAT)";
    let init = format!("INSERT INTO ff_main {init_select}");
    let insert_work = format!("INSERT INTO ff_work {}", iterative_body("ff_main"));
    let update = "UPDATE ff_main SET friends = ff_work.friends, \
                  friendsPrev = ff_work.friendsPrev \
                  FROM ff_work WHERE ff_main.node = ff_work.node";
    let final_query = format!("SELECT node, friends FROM ff_main {final_tail}");
    let procedure = ProcedureScript {
        name: "ff-procedure".into(),
        setup: vec![create_work.into(), create_main.into(), init.clone()],
        iteration: vec![
            "DELETE FROM ff_work".into(),
            insert_work.clone(),
            update.into(),
        ],
        iterations,
        final_query: final_query.clone(),
        cleanup: vec!["DROP TABLE ff_work".into(), "DROP TABLE ff_main".into()],
    };
    let middleware = ProcedureScript {
        name: "ff-middleware".into(),
        setup: vec![create_main.into(), init],
        iteration: vec![
            create_work.into(),
            insert_work,
            update.into(),
            "DROP TABLE ff_work".into(),
        ],
        iterations,
        final_query,
        cleanup: vec![
            "DROP TABLE IF EXISTS ff_work".into(),
            "DROP TABLE ff_main".into(),
        ],
    };
    WorkloadSql {
        cte,
        procedure,
        middleware,
    }
}

/// Connected components by min-label propagation — a workload beyond the
/// paper's three, exercising the **delta** termination class at scale: the
/// loop runs until an iteration changes no label. Expects a *symmetric*
/// edge table (see `GraphSpec::generate_symmetric_components`).
pub fn connected_components(max_iterations_hint: Option<u64>) -> WorkloadSql {
    let until = match max_iterations_hint {
        Some(n) => format!("{n} ITERATIONS"),
        None => "DELTA < 1".to_string(),
    };
    let iterative_body = |main: &str| {
        format!(
            "SELECT {main}.node, \
                    LEAST({main}.label, COALESCE(MIN(nbr.label), {main}.label)) \
             FROM {main} \
               LEFT JOIN edges AS e ON {main}.node = e.dst \
               LEFT JOIN {main} AS nbr ON nbr.node = e.src \
             GROUP BY {main}.node, {main}.label"
        )
    };
    let cte = format!(
        "WITH ITERATIVE cc (node, label) AS ( \
            SELECT src, src FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
          ITERATE {} \
          UNTIL {until} ) \
         SELECT node, label FROM cc ORDER BY node",
        iterative_body("cc"),
    );
    // Procedural formulations use a fixed iteration count (statement loops
    // cannot express delta termination — precisely the paper's point about
    // the expressiveness gap).
    let iterations = max_iterations_hint.unwrap_or(64);
    let create_work = "CREATE TABLE cc_work (node INT, label INT)";
    let create_main = "CREATE TABLE cc_main (node INT, label INT)";
    let init = "INSERT INTO cc_main \
                SELECT src, src FROM (SELECT src FROM edges UNION SELECT dst FROM edges)";
    let insert_work = format!("INSERT INTO cc_work {}", iterative_body("cc_main"));
    let update = "UPDATE cc_main SET label = cc_work.label \
                  FROM cc_work WHERE cc_main.node = cc_work.node";
    let final_query = "SELECT node, label FROM cc_main ORDER BY node";
    let procedure = ProcedureScript {
        name: "cc-procedure".into(),
        setup: vec![create_work.into(), create_main.into(), init.into()],
        iteration: vec![
            "DELETE FROM cc_work".into(),
            insert_work.clone(),
            update.into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec!["DROP TABLE cc_work".into(), "DROP TABLE cc_main".into()],
    };
    let middleware = ProcedureScript {
        name: "cc-middleware".into(),
        setup: vec![create_main.into(), init.into()],
        iteration: vec![
            create_work.into(),
            insert_work,
            update.into(),
            "DROP TABLE cc_work".into(),
        ],
        iterations,
        final_query: final_query.into(),
        cleanup: vec![
            "DROP TABLE IF EXISTS cc_work".into(),
            "DROP TABLE cc_main".into(),
        ],
    };
    WorkloadSql {
        cte,
        procedure,
        middleware,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_script;
    use spinner_datagen::{load_edges_into, load_vertex_status_into, GraphSpec};
    use spinner_engine::Database;

    fn small_db(with_vs: bool) -> Database {
        let db = Database::default();
        let spec = GraphSpec::small();
        load_edges_into(&db, "edges", &spec).unwrap();
        if with_vs {
            load_vertex_status_into(&db, "vertexstatus", &spec, 0.8).unwrap();
        }
        db
    }

    fn assert_all_formulations_agree(w: &WorkloadSql, with_vs: bool) {
        let db = small_db(with_vs);
        let cte_rows = db.query(&w.cte).unwrap();
        let proc_rows = run_script(&db, &w.procedure).unwrap().rows;
        let mw_report = run_script(&db, &w.middleware).unwrap();
        assert_eq!(cte_rows.rows(), proc_rows.rows(), "procedure mismatch");
        assert_eq!(
            cte_rows.rows(),
            mw_report.rows.rows(),
            "middleware mismatch"
        );
        // The middleware really pays DDL per iteration.
        assert!(mw_report.ddl_ops as u64 >= 2 * w.middleware.iterations);
    }

    #[test]
    fn pagerank_formulations_agree() {
        assert_all_formulations_agree(&pagerank(5, false), false);
    }

    #[test]
    fn pagerank_vs_formulations_agree() {
        assert_all_formulations_agree(&pagerank(5, true), true);
    }

    #[test]
    fn sssp_formulations_agree() {
        assert_all_formulations_agree(&sssp(5, 1, false), false);
    }

    #[test]
    fn sssp_vs_formulations_agree() {
        assert_all_formulations_agree(&sssp(5, 1, true), true);
    }

    #[test]
    fn sssp_convergent_formulations_agree() {
        assert_all_formulations_agree(&sssp_convergent(1, Some(5)), false);
    }

    #[test]
    fn sssp_convergent_matches_paper_sssp_at_fixpoint() {
        // Both formulations must settle on the same distances once the
        // paper-literal query has run enough rounds to converge.
        let spec = GraphSpec::small();
        let db = small_db(false);
        let convergent = db.query(&sssp_convergent(1, None).cte).unwrap();
        let paper = db.query(&sssp(spec.nodes as u64, 1, false).cte).unwrap();
        assert_eq!(convergent.rows(), paper.rows());
    }

    #[test]
    fn ff_formulations_agree() {
        assert_all_formulations_agree(&ff(5, 10), false);
    }

    #[test]
    fn cc_formulations_agree() {
        // Symmetric two-component graph; fixed iteration count so all
        // three formulations run the same loop.
        let spec = GraphSpec {
            nodes: 60,
            edges: 150,
            seed: 9,
            max_weight: 5,
        };
        let rows = spec.generate_symmetric_components(2);
        let db = Database::default();
        let schema = spinner_common::Schema::new(vec![
            spinner_common::Field::new("src", spinner_common::DataType::Int),
            spinner_common::Field::new("dst", spinner_common::DataType::Int),
            spinner_common::Field::new("weight", spinner_common::DataType::Float),
        ]);
        db.create_table_from_rows("edges", schema, rows, None, Some(1))
            .unwrap();
        let w = connected_components(Some(10));
        let cte_rows = db.query(&w.cte).unwrap();
        let proc_rows = run_script(&db, &w.procedure).unwrap().rows;
        let mw_rows = run_script(&db, &w.middleware).unwrap().rows;
        assert_eq!(cte_rows.rows(), proc_rows.rows());
        assert_eq!(cte_rows.rows(), mw_rows.rows());
    }

    #[test]
    fn sssp_finds_true_shortest_paths() {
        // Shared Dijkstra oracle over the generated graph.
        let spec = GraphSpec::small();
        let dist = spinner_datagen::oracle::dijkstra(&spec, 1);
        // Run enough iterations for full convergence on the small graph.
        let db = small_db(false);
        let w = sssp(spec.nodes as u64, 1, false);
        let batch = db.query(&w.cte).unwrap();
        for row in batch.rows() {
            let node = row[0].as_i64().unwrap() as usize;
            let got = row[1].as_f64().unwrap();
            match dist[node] {
                Some(want) => assert!(
                    (got - want).abs() < 1e-6,
                    "node {node}: sql={got} dijkstra={want}"
                ),
                None => assert_eq!(got, 9_999_999.0, "node {node} unreachable"),
            }
        }
    }
}
