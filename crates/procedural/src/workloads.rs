//! The PR-10 iterative workload suite: four CTE queries whose loop bodies
//! stress plan shapes beyond [`queries`](crate::queries) — an
//! aggregate-heavy assignment step (`ARG_MIN` in k-means), multi-self-join
//! bodies (label propagation, triangle-weighted ranking) and wide float
//! arithmetic projections (logistic-regression gradient descent).
//!
//! Every body is *anchored*: the working table drives the FROM clause and
//! each key emits exactly one row per iteration (empty-group cases fall
//! back to the previous value via `COALESCE`), so the merge path and the
//! rename fast path produce identical results and partition count is
//! transparent. Each query has a hand-rolled oracle in
//! `spinner_datagen::oracle`; the property suite in `tests/workloads.rs`
//! asserts engine ≡ oracle across partition counts, semi-naive on/off and
//! fault/spill schedules.

/// K-means over `points(pid, x, y)` — the paper's "aggregate-heavy loop
/// body" shape. Centroids are seeded from the points with `pid <= k`
/// (the generator pins those one per cluster); the body computes each
/// point's nearest centroid with `ARG_MIN(cid, squared_distance)` and
/// re-centers every centroid on the mean of its members, keeping its old
/// position when the cluster is empty. Non-monotone (centroids move in
/// any direction), so the optimizer must choose `mode=full`.
pub fn kmeans_cte(k: usize, iterations: u64) -> String {
    format!(
        "WITH ITERATIVE centroids (cid, cx, cy) AS ( \
            SELECT pid, x, y FROM points WHERE pid <= {k} \
          ITERATE \
            SELECT c.cid, \
                   COALESCE(AVG(a.px), c.cx), \
                   COALESCE(AVG(a.py), c.cy) \
            FROM centroids AS c \
              LEFT JOIN (SELECT ARG_MIN(c2.cid, \
                                        (p.x - c2.cx) * (p.x - c2.cx) + \
                                        (p.y - c2.cy) * (p.y - c2.cy)) AS cid, \
                                p.x AS px, \
                                p.y AS py \
                         FROM points AS p, centroids AS c2 \
                         GROUP BY p.pid, p.x, p.y) AS a \
                ON a.cid = c.cid \
            GROUP BY c.cid, c.cx, c.cy \
          UNTIL {iterations} ITERATIONS ) \
         SELECT cid, cx, cy FROM centroids ORDER BY cid"
    )
}

/// Label propagation over symmetric `edges(src, dst, weight)` plus a
/// partial `labels(node, label)` assignment — the connected-components
/// shape generalized to sparse seeds. Each node repeatedly takes the
/// minimum label among itself and its in-neighbors until no label
/// changes. Monotone `MIN` accumulator ⇒ eligible for the semi-naive
/// delta rewrite (`mode=semi_naive`); integer labels ⇒ exact equality
/// against the oracle fixpoint.
pub fn label_propagation_cte() -> String {
    "WITH ITERATIVE lp (node, label) AS ( \
        SELECT node, label FROM labels \
      ITERATE \
        SELECT lp.node, \
               LEAST(lp.label, COALESCE(MIN(nbr.label), lp.label)) \
        FROM lp \
          LEFT JOIN edges AS e ON lp.node = e.dst \
          LEFT JOIN lp AS nbr ON nbr.node = e.src \
        GROUP BY lp.node, lp.label \
      UNTIL DELTA < 1 ) \
     SELECT node, label FROM lp ORDER BY node"
        .to_string()
}

/// Triangle-weighted ranking over `edges(src, dst, weight)` — a
/// three-way-self-join body. The invariant subquery counts directed
/// triangles `u -> v -> p -> u` per `(u, p)` pair (edge-row multiplicity
/// included via `COUNT(*)`); each iteration then redistributes rank along
/// triangle co-membership: `rank'(u) = 0.2 + 0.8 * Σ_p rank(p) *
/// tri(u, p)`. The `SUM` accumulator is not monotone-MIN/MAX, so the
/// optimizer must fall back to `mode=full`.
pub fn triangle_rank_cte(iterations: u64) -> String {
    format!(
        "WITH ITERATIVE twr (node, rank) AS ( \
            SELECT src, 1.0 \
            FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
          ITERATE \
            SELECT twr.node, \
                   0.2 + 0.8 * COALESCE(SUM(peer.rank * t.tri), 0.0) \
            FROM twr \
              LEFT JOIN (SELECT e1.src AS node, e2.dst AS peer, COUNT(*) AS tri \
                         FROM edges AS e1 \
                           JOIN edges AS e2 ON e2.src = e1.dst \
                           JOIN edges AS e3 ON e3.src = e2.dst AND e3.dst = e1.src \
                         GROUP BY e1.src, e2.dst) AS t \
                ON twr.node = t.node \
              LEFT JOIN twr AS peer ON peer.node = t.peer \
            GROUP BY twr.node \
          UNTIL {iterations} ITERATIONS ) \
         SELECT node, rank FROM twr ORDER BY node"
    )
}

/// Batch-gradient-descent logistic regression over
/// `observations(id, x1, x2, y)` — a single-row working table whose body
/// is a wide arithmetic projection through the scalar `exp` kernel. Each
/// iteration scores every observation with the sigmoid of the current
/// weights and moves `(w1, w2, b)` against the average gradient.
/// Non-monotone float updates ⇒ `mode=full`.
pub fn logistic_regression_cte(iterations: u64, rate: f64) -> String {
    let sigmoid = "1.0 / (1.0 + exp(0.0 - (w.w1 * o.x1 + w.w2 * o.x2 + w.b)))";
    format!(
        "WITH ITERATIVE w (wid, w1, w2, b) AS ( \
            SELECT 0, 0.0, 0.0, 0.0 \
          ITERATE \
            SELECT w.wid, \
                   w.w1 - {rate} * AVG(({sigmoid} - o.y) * o.x1), \
                   w.w2 - {rate} * AVG(({sigmoid} - o.y) * o.x2), \
                   w.b - {rate} * AVG({sigmoid} - o.y) \
            FROM w, observations AS o \
            GROUP BY w.wid, w.w1, w.w2, w.b \
          UNTIL {iterations} ITERATIONS ) \
         SELECT w1, w2, b FROM w"
    )
}
