//! Abstract syntax tree for the supported SQL dialect.
//!
//! The one non-standard construct is [`CteKind::Iterative`], carrying the
//! non-iterative part `R0`, the iterative part `Ri` and the termination
//! condition `Tc` exactly as the parse-tree node of DBSpinner's Figure 3
//! does (type + N + optional expression).

use std::fmt;

use spinner_common::{DataType, Value};

/// A single SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT (possibly with CTEs, set ops, ORDER BY, LIMIT).
    Query(Query),
    /// `CREATE TABLE name (col type, ...) [PRIMARY KEY (col)] [PARTITION BY (col)]`
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        primary_key: Option<String>,
        partition_key: Option<String>,
        if_not_exists: bool,
    },
    /// DROP TABLE [IF EXISTS] name
    DropTable { name: String, if_exists: bool },
    /// INSERT INTO name [(cols)] VALUES ... | SELECT ...
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    /// UPDATE t SET col = expr, ... [FROM table_ref] [WHERE expr]
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        from: Option<TableRef>,
        selection: Option<Expr>,
    },
    /// DELETE FROM t [WHERE expr]
    Delete {
        table: String,
        selection: Option<Expr>,
    },
    /// `EXPLAIN [ANALYZE] <statement>`
    Explain {
        /// The statement being explained.
        statement: Box<Statement>,
        /// `true` for `EXPLAIN ANALYZE`: execute the statement and report
        /// actual row counts, timings and per-iteration metrics.
        analyze: bool,
    },
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub primary_key: bool,
}

/// The data source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
}

/// A full query: optional CTE list, a set-expression body, ordering, limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<Cte>,
    pub body: SetExpr,
    pub order_by: Vec<OrderByExpr>,
    pub limit: Option<u64>,
}

impl Query {
    /// A query that is just a bare body.
    pub fn plain(body: SetExpr) -> Self {
        Query {
            ctes: Vec::new(),
            body,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// One common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name (lower-cased).
    pub name: String,
    /// Optional declared column names.
    pub columns: Vec<String>,
    pub kind: CteKind,
}

/// The three CTE flavours the engine understands.
#[derive(Debug, Clone, PartialEq)]
pub enum CteKind {
    /// Plain `WITH name AS (query)`.
    Regular(Box<Query>),
    /// ANSI `WITH RECURSIVE`: base ∪ recursive-part until fixed point.
    Recursive {
        base: Box<Query>,
        step: Box<Query>,
        union_all: bool,
    },
    /// DBSpinner `WITH ITERATIVE`: R0 ITERATE Ri UNTIL Tc.
    Iterative {
        init: Box<Query>,
        step: Box<Query>,
        until: Termination,
    },
}

/// Termination condition `Tc` of an iterative CTE.
///
/// Mirrors the paper's three classes (§II, §VI-B):
/// * metadata — a fixed number of iterations or cumulative updated rows,
/// * data — a SQL predicate over the CTE table, satisfied by ≥ N rows,
/// * delta — fewer than N rows changed in the last iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum Termination {
    /// `UNTIL n ITERATIONS`
    Iterations(u64),
    /// `UNTIL n UPDATES` — stop once the cumulative number of updated rows
    /// reaches `n`.
    Updates(u64),
    /// `UNTIL [ANY] (expr) [, n ROWS]` — stop when at least `rows` rows of
    /// the CTE table satisfy `expr` (`ANY` is the `rows = 1` sugar).
    Data { expr: Expr, rows: u64 },
    /// `UNTIL DELTA < n` — stop when fewer than `n` rows changed.
    Delta { threshold: u64 },
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Termination::Iterations(n) => write!(f, "{n} ITERATIONS"),
            Termination::Updates(n) => write!(f, "{n} UPDATES"),
            Termination::Data { expr, rows } => write!(f, "({expr}) , {rows} ROWS"),
            Termination::Delta { threshold } => write!(f, "DELTA < {threshold}"),
        }
    }
}

/// Body of a query: a SELECT or a set operation over two bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
}

/// Set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Except,
    Intersect,
}

impl fmt::Display for SetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SetOp::Union => "UNION",
            SetOp::Except => "EXCEPT",
            SetOp::Intersect => "INTERSECT",
        })
    }
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    /// FROM items; multiple entries form an implicit cross join.
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

impl Select {
    /// SELECT with empty clauses, used as a builder seed.
    pub fn empty() -> Self {
        Select {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE reference.
    Table { name: String, alias: Option<String> },
    /// Parenthesised subquery with a mandatory alias... relaxed: alias optional.
    Subquery {
        query: Box<Query>,
        alias: Option<String>,
    },
    /// A join of two table refs.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// ON condition; `None` only for CROSS joins.
        on: Option<Expr>,
    },
}

impl TableRef {
    /// The name this relation is visible as (alias or base name), when it
    /// is a leaf.
    pub fn visible_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => alias.as_deref(),
            TableRef::Join { .. } => None,
        }
    }
}

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    Cross,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::LeftOuter => "LEFT JOIN",
            JoinKind::RightOuter => "RIGHT JOIN",
            JoinKind::FullOuter => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
        })
    }
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByExpr {
    pub expr: Expr,
    pub asc: bool,
    /// NULLS FIRST (default follows asc: NULLS first on ASC).
    pub nulls_first: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Minus,
    Plus,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `[relation.]name`
    Column {
        relation: Option<String>,
        name: String,
    },
    /// Literal value.
    Literal(Value),
    /// `left op right`
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// `op expr`
    UnaryOp { op: UnaryOp, expr: Box<Expr> },
    /// Function call; aggregates share this node and are classified during
    /// planning. `COUNT(*)` is a zero-arg `count` with `star = true`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST (expr AS type)`
    Cast {
        expr: Box<Expr>,
        data_type: DataType,
    },
    /// `expr IS [NOT] NULL`
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (v1, v2, ...)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            relation: None,
            name: name.into(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(relation: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            relation: Some(relation.into()),
            name: name.into(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self op other` helper.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.binary(BinaryOp::Eq, other)
    }

    /// Visit this expression and all children, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column { .. } | Expr::Literal(_) => {}
            Expr::BinaryOp { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::UnaryOp { expr, .. } => expr.walk(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    op.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Cast { expr, .. } => expr.walk(f),
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column {
                relation: Some(r),
                name,
            } => write!(f, "{r}.{name}"),
            Expr::Column {
                relation: None,
                name,
            } => f.write_str(name),
            Expr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::BinaryOp { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::UnaryOp { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Minus => write!(f, "(-{expr})"),
                UnaryOp::Plus => write!(f, "(+{expr})"),
            },
            Expr::Function {
                name,
                args,
                distinct,
                star,
            } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    if *distinct {
                        write!(f, "DISTINCT ")?;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_roundtrips_structure() {
        let e = Expr::qcol("pr", "rank").binary(BinaryOp::Plus, Expr::lit(1i64));
        assert_eq!(e.to_string(), "(pr.rank + 1)");
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::col("a").and(Expr::col("b").eq(Expr::lit(3i64)));
        let mut cols = Vec::new();
        e.walk(&mut |x| {
            if let Expr::Column { name, .. } = x {
                cols.push(name.clone());
            }
        });
        assert_eq!(cols, vec!["a", "b"]);
    }

    #[test]
    fn termination_display() {
        assert_eq!(Termination::Iterations(10).to_string(), "10 ITERATIONS");
        assert_eq!(Termination::Delta { threshold: 1 }.to_string(), "DELTA < 1");
    }
}
