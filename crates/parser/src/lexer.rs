//! SQL tokenizer.
//!
//! Produces a flat token stream with byte positions for error reporting.
//! Keywords are recognised case-insensitively but identifiers keep being
//! lower-cased, matching the usual unquoted-identifier SQL rule.

use spinner_common::{Error, Result};

/// Kinds of lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword (lower-cased).
    Ident(String),
    /// `"quoted"` identifier (case preserved).
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `'string'` literal with `''` escapes resolved.
    Str(String),
    /// A symbol/operator token, e.g. `(`, `<=`, `!=`, `,`.
    Symbol(&'static str),
    /// End of input.
    Eof,
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

impl Token {
    fn new(kind: TokenKind, pos: usize) -> Self {
        Token { kind, pos }
    }
}

/// Tokenize `sql` into a vector ending with an [`TokenKind::Eof`] token.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::parse_at("unterminated block comment", start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = sql[start..i].to_ascii_lowercase();
                tokens.push(Token::new(TokenKind::Ident(word), start));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        Error::parse_at(format!("invalid float literal '{text}'"), start)
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        // Too big for i64 — fall back to float like most engines.
                        Err(_) => TokenKind::Float(text.parse().map_err(|_| {
                            Error::parse_at(format!("invalid numeric literal '{text}'"), start)
                        })?),
                    }
                };
                tokens.push(Token::new(kind, start));
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(Error::parse_at("unterminated string literal", start)),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::new(TokenKind::Str(s), start));
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(Error::parse_at("unterminated quoted identifier", start))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::new(TokenKind::QuotedIdent(s), start));
            }
            _ => {
                let start = i;
                let two = if i + 1 < bytes.len() {
                    &sql[i..i + 2]
                } else {
                    ""
                };
                let sym: &'static str = match two {
                    "<=" => "<=",
                    ">=" => ">=",
                    "!=" => "!=",
                    "<>" => "<>",
                    "||" => "||",
                    _ => match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        ';' => ";",
                        '.' => ".",
                        '+' => "+",
                        '-' => "-",
                        '*' => "*",
                        '/' => "/",
                        '%' => "%",
                        '=' => "=",
                        '<' => "<",
                        '>' => ">",
                        other => {
                            return Err(Error::parse_at(
                                format!("unexpected character '{other}'"),
                                start,
                            ))
                        }
                    },
                };
                i += sym.len();
                tokens.push(Token::new(TokenKind::Symbol(sym), start));
            }
        }
    }
    tokens.push(Token::new(TokenKind::Eof, sql.len()));
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_lowercase() {
        assert_eq!(
            kinds("SELECT Foo"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("foo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 10000000000000000000"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(1e19),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 -- comment\n /* block */ 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a <= b != c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Symbol("<="),
                TokenKind::Ident("b".into()),
                TokenKind::Symbol("!="),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors_with_position() {
        let err = tokenize("  'abc").unwrap_err();
        assert_eq!(err, Error::parse_at("unterminated string literal", 2));
    }

    #[test]
    fn float_without_trailing_digit_is_dot_symbol() {
        // `edges.src` must lex as ident, dot, ident — not a float.
        assert_eq!(
            kinds("edges.src"),
            vec![
                TokenKind::Ident("edges".into()),
                TokenKind::Symbol("."),
                TokenKind::Ident("src".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        assert_eq!(
            kinds("\"MixedCase\""),
            vec![TokenKind::QuotedIdent("MixedCase".into()), TokenKind::Eof]
        );
    }
}
