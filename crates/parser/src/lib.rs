//! SQL front end for the DBSpinner reproduction.
//!
//! The grammar is the analytical core of SQL (SELECT with joins, GROUP
//! BY/HAVING, set operations, ORDER BY/LIMIT, subqueries, CTEs) plus:
//!
//! * `WITH RECURSIVE` — ANSI recursive CTEs (fixed-point union semantics);
//! * `WITH ITERATIVE name AS ( R0 ITERATE Ri UNTIL Tc ) Qf` — the
//!   iterative-CTE extension of SQLoop \[16\] that DBSpinner integrates
//!   natively, with metadata / data / delta termination conditions;
//! * the DDL/DML subset (CREATE/DROP TABLE, INSERT, UPDATE ... FROM,
//!   DELETE) that the middleware and stored-procedure baselines need.
//!
//! Entry points: [`parse_sql`] (one statement) and [`parse_statements`]
//! (a `;`-separated script).

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse_sql, parse_statements, Parser};
