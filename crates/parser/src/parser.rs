//! Recursive-descent SQL parser.
//!
//! Precedence-climbing expression parser plus straightforward clause
//! parsing. The `WITH ITERATIVE` grammar follows the paper:
//!
//! ```sql
//! WITH ITERATIVE name [(col, ...)] AS (
//!     <non-iterative query R0>
//!     ITERATE <iterative query Ri>
//!     UNTIL <termination>
//! ) <final query Qf>
//! ```
//!
//! Termination forms: `N ITERATIONS`, `N UPDATES`, `DELTA < N`,
//! `[ANY] (expr) [, N ROWS]`.

use spinner_common::{DataType, Error, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};

/// Words that cannot be implicit aliases or bare identifiers mid-clause.
const RESERVED: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "union",
    "except",
    "intersect",
    "join",
    "inner",
    "left",
    "right",
    "full",
    "cross",
    "outer",
    "on",
    "as",
    "and",
    "or",
    "not",
    "case",
    "when",
    "then",
    "else",
    "end",
    "with",
    "recursive",
    "iterative",
    "iterate",
    "until",
    "insert",
    "update",
    "delete",
    "create",
    "drop",
    "table",
    "values",
    "set",
    "into",
    "distinct",
    "is",
    "null",
    "in",
    "between",
    "by",
    "asc",
    "desc",
    "nulls",
    "first",
    "last",
    "explain",
    "primary",
    "key",
    "partition",
    "all",
    "cast",
    "exists",
    "if",
    "using",
];

/// Parse exactly one SQL statement (a trailing `;` is allowed).
pub fn parse_sql(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.eat_symbol(";");
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into a statement list.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut stmts = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if p.at_eof() {
            break;
        }
        stmts.push(p.parse_statement()?);
        if !p.eat_symbol(";") {
            break;
        }
    }
    p.expect_eof()?;
    Ok(stmts)
}

/// Token-stream parser. Construct with [`Parser::new`], then call
/// [`Parser::parse_statement`].
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Tokenize `sql` and position at the first token.
    pub fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    // ---- token helpers -----------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> Error {
        Error::parse_at(
            format!("expected {wanted}, found {:?}", self.peek()),
            self.peek_pos(),
        )
    }

    /// True when the next token is the keyword `kw` (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(w) if w == kw)
    }

    fn at_keyword_ahead(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_ahead(n), TokenKind::Ident(w) if w == kw)
    }

    /// Consume keyword `kw` if present; returns whether it was consumed.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {}", kw.to_uppercase())))
        }
    }

    fn at_symbol(&self, s: &str) -> bool {
        matches!(self.peek(), TokenKind::Symbol(sym) if *sym == s)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.at_symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{s}'")))
        }
    }

    /// Parse an identifier (unquoted identifiers must not be reserved).
    fn parse_ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(w) => {
                if RESERVED.contains(&w.as_str()) {
                    Err(self.unexpected("identifier"))
                } else {
                    self.advance();
                    Ok(w)
                }
            }
            TokenKind::QuotedIdent(w) => {
                self.advance();
                Ok(w)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.peek().clone() {
            TokenKind::Int(v) if v >= 0 => {
                self.advance();
                Ok(v as u64)
            }
            _ => Err(self.unexpected("a non-negative integer")),
        }
    }

    // ---- statements ---------------------------------------------------

    /// Parse one statement.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        if self.eat_keyword("explain") {
            let analyze = self.eat_keyword("analyze");
            return Ok(Statement::Explain {
                statement: Box::new(self.parse_statement()?),
                analyze,
            });
        }
        if self.at_keyword("select") || self.at_keyword("with") || self.at_symbol("(") {
            return Ok(Statement::Query(self.parse_query()?));
        }
        if self.at_keyword("create") {
            return self.parse_create_table();
        }
        if self.at_keyword("drop") {
            return self.parse_drop_table();
        }
        if self.at_keyword("insert") {
            return self.parse_insert();
        }
        if self.at_keyword("update") {
            return self.parse_update();
        }
        if self.at_keyword("delete") {
            return self.parse_delete();
        }
        Err(self.unexpected("a SQL statement"))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let if_not_exists = if self.at_keyword("if") {
            self.advance();
            self.expect_keyword("not")?;
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.parse_ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        loop {
            if self.eat_keyword("primary") {
                self.expect_keyword("key")?;
                self.expect_symbol("(")?;
                let col = self.parse_ident()?;
                self.expect_symbol(")")?;
                primary_key = Some(col);
            } else {
                let col_name = self.parse_ident()?;
                let data_type = self.parse_data_type()?;
                let mut pk = false;
                if self.eat_keyword("primary") {
                    self.expect_keyword("key")?;
                    pk = true;
                }
                if pk {
                    primary_key = Some(col_name.clone());
                }
                columns.push(ColumnDef {
                    name: col_name,
                    data_type,
                    primary_key: pk,
                });
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        let mut partition_key = None;
        if self.eat_keyword("partition") {
            self.expect_keyword("by")?;
            self.expect_symbol("(")?;
            partition_key = Some(self.parse_ident()?);
            self.expect_symbol(")")?;
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
            partition_key,
            if_not_exists,
        })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let word = match self.peek().clone() {
            TokenKind::Ident(w) => w,
            _ => return Err(self.unexpected("a data type")),
        };
        self.advance();
        let dt = match word.as_str() {
            "int" | "integer" | "bigint" | "smallint" | "int4" | "int8" => DataType::Int,
            "float" | "double" | "real" | "numeric" | "decimal" | "float8" | "float4" => {
                DataType::Float
            }
            "text" | "varchar" | "char" | "string" => DataType::Text,
            "bool" | "boolean" => DataType::Bool,
            other => {
                return Err(Error::parse(format!("unknown data type '{other}'")));
            }
        };
        // Optional length/precision arguments, e.g. VARCHAR(20), NUMERIC(10,2).
        if self.eat_symbol("(") {
            loop {
                match self.peek() {
                    TokenKind::Int(_) => {
                        self.advance();
                    }
                    _ => return Err(self.unexpected("a type parameter")),
                }
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        Ok(dt)
    }

    fn parse_drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("drop")?;
        self.expect_keyword("table")?;
        let if_exists = if self.at_keyword("if") {
            self.advance();
            self.expect_keyword("exists")?;
            true
        } else {
            false
        };
        let name = self.parse_ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.parse_ident()?;
        // Optional column list: disambiguate from a following SELECT by
        // looking one token past '('.
        let mut columns = None;
        if self.at_symbol("(")
            && !self.at_keyword_ahead(1, "select")
            && !self.at_keyword_ahead(1, "with")
        {
            self.expect_symbol("(")?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.parse_ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            columns = Some(cols);
        }
        let source = if self.eat_keyword("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                rows.push(row);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(Box::new(self.parse_query()?))
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_keyword("update")?;
        let table = self.parse_ident()?;
        self.expect_keyword("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.parse_ident()?;
            self.expect_symbol("=")?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let from = if self.eat_keyword("from") {
            Some(self.parse_table_ref()?)
        } else {
            None
        };
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            from,
            selection,
        })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_keyword("delete")?;
        self.expect_keyword("from")?;
        let table = self.parse_ident()?;
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, selection })
    }

    // ---- queries ------------------------------------------------------

    /// Parse a query: `[WITH ...] set_expr [ORDER BY ...] [LIMIT n]`.
    pub fn parse_query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_keyword("with") {
            let recursive = self.eat_keyword("recursive");
            let iterative = !recursive && self.eat_keyword("iterative");
            loop {
                ctes.push(self.parse_cte(recursive, iterative)?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_keyword("desc") {
                    false
                } else {
                    self.eat_keyword("asc");
                    true
                };
                let mut nulls_first = asc; // default: NULLS sort as smallest
                if self.eat_keyword("nulls") {
                    if self.eat_keyword("first") {
                        nulls_first = true;
                    } else {
                        self.expect_keyword("last")?;
                        nulls_first = false;
                    }
                }
                order_by.push(OrderByExpr {
                    expr,
                    asc,
                    nulls_first,
                });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            Some(self.parse_u64()?)
        } else {
            None
        };
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn parse_cte(&mut self, recursive: bool, iterative: bool) -> Result<Cte> {
        let name = self.parse_ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol("(") {
            loop {
                columns.push(self.parse_ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        self.expect_keyword("as")?;
        self.expect_symbol("(")?;
        let kind = if iterative {
            let init = self.parse_query()?;
            self.expect_keyword("iterate")?;
            let step = self.parse_query()?;
            self.expect_keyword("until")?;
            let until = self.parse_termination()?;
            CteKind::Iterative {
                init: Box::new(init),
                step: Box::new(step),
                until,
            }
        } else if recursive {
            // ANSI recursive CTE: the body is `base UNION [ALL] step`.
            let q = self.parse_query()?;
            match q.body {
                SetExpr::SetOp {
                    op: SetOp::Union,
                    all,
                    left,
                    right,
                } if q.ctes.is_empty() && q.order_by.is_empty() && q.limit.is_none() => {
                    CteKind::Recursive {
                        base: Box::new(Query::plain(*left)),
                        step: Box::new(Query::plain(*right)),
                        union_all: all,
                    }
                }
                _ => {
                    return Err(Error::parse(format!(
                        "recursive CTE '{name}' must be 'base UNION [ALL] step'"
                    )))
                }
            }
        } else {
            CteKind::Regular(Box::new(self.parse_query()?))
        };
        self.expect_symbol(")")?;
        Ok(Cte {
            name,
            columns,
            kind,
        })
    }

    /// Termination grammar:
    /// `N ITERATIONS | N UPDATES | DELTA < N | [ANY] (expr) [, N ROWS]`.
    fn parse_termination(&mut self) -> Result<Termination> {
        if let TokenKind::Int(n) = self.peek().clone() {
            if n < 0 {
                return Err(self.unexpected("a non-negative iteration count"));
            }
            self.advance();
            if self.eat_keyword("iterations") || self.eat_keyword("iteration") {
                return Ok(Termination::Iterations(n as u64));
            }
            if self.eat_keyword("updates") || self.eat_keyword("update") {
                return Ok(Termination::Updates(n as u64));
            }
            return Err(self.unexpected("ITERATIONS or UPDATES"));
        }
        if self.at_keyword("delta") {
            self.advance();
            self.expect_symbol("<")?;
            let threshold = self.parse_u64()?;
            return Ok(Termination::Delta { threshold });
        }
        let _any = self.eat_keyword("any"); // ANY is sugar for "1 ROWS"
        self.expect_symbol("(")?;
        let expr = self.parse_expr()?;
        self.expect_symbol(")")?;
        let mut rows = 1;
        if self.eat_symbol(",") {
            rows = self.parse_u64()?;
            self.expect_keyword("rows")?;
        }
        Ok(Termination::Data { expr, rows })
    }

    /// `set_expr := set_primary ((UNION|EXCEPT|INTERSECT) [ALL] set_primary)*`
    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_primary()?;
        loop {
            let op = if self.at_keyword("union") {
                SetOp::Union
            } else if self.at_keyword("except") {
                SetOp::Except
            } else if self.at_keyword("intersect") {
                SetOp::Intersect
            } else {
                break;
            };
            self.advance();
            let all = self.eat_keyword("all");
            let right = self.parse_set_primary()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_primary(&mut self) -> Result<SetExpr> {
        if self.at_symbol("(") {
            self.expect_symbol("(")?;
            let inner = self.parse_set_expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_keyword("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if !RESERVED.contains(&name.as_str())
                && matches!(self.peek_ahead(1), TokenKind::Symbol("."))
                && matches!(self.peek_ahead(2), TokenKind::Symbol("*"))
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("as") {
            return Ok(Some(self.parse_ident()?));
        }
        match self.peek().clone() {
            TokenKind::Ident(w) if !RESERVED.contains(&w.as_str()) => {
                self.advance();
                Ok(Some(w))
            }
            TokenKind::QuotedIdent(w) => {
                self.advance();
                Ok(Some(w))
            }
            _ => Ok(None),
        }
    }

    // ---- FROM clause ---------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.eat_keyword("cross") {
                self.expect_keyword("join")?;
                JoinKind::Cross
            } else if self.eat_keyword("inner") {
                self.expect_keyword("join")?;
                JoinKind::Inner
            } else if self.eat_keyword("left") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::LeftOuter
            } else if self.eat_keyword("right") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::RightOuter
            } else if self.eat_keyword("full") {
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::FullOuter
            } else if self.eat_keyword("join") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_keyword("on")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.eat_symbol("(") {
            // Either a subquery or a parenthesised join tree.
            if self.at_keyword("select") || self.at_keyword("with") {
                let query = self.parse_query()?;
                self.expect_symbol(")")?;
                let alias = self.parse_optional_alias()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            let inner = self.parse_table_ref()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        let name = self.parse_ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions ----------------------------------------------------

    /// Parse a scalar expression (public for termination conditions etc.).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = left.binary(BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = left.binary(BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            let expr = self.parse_not()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.at_keyword("is") {
            self.advance();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = if self.at_keyword("not")
            && (self.at_keyword_ahead(1, "in") || self.at_keyword_ahead(1, "between"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_keyword("in") {
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("IN or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            TokenKind::Symbol("=") => BinaryOp::Eq,
            TokenKind::Symbol("!=") | TokenKind::Symbol("<>") => BinaryOp::NotEq,
            TokenKind::Symbol("<") => BinaryOp::Lt,
            TokenKind::Symbol("<=") => BinaryOp::LtEq,
            TokenKind::Symbol(">") => BinaryOp::Gt,
            TokenKind::Symbol(">=") => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(left.binary(op, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol("+") => BinaryOp::Plus,
                TokenKind::Symbol("-") => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol("*") => BinaryOp::Multiply,
                TokenKind::Symbol("/") => BinaryOp::Divide,
                TokenKind::Symbol("%") => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            let expr = self.parse_unary()?;
            // Fold negation into numeric literals immediately.
            if let Expr::Literal(Value::Int(i)) = expr {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = expr {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::UnaryOp {
                op: UnaryOp::Minus,
                expr: Box::new(expr),
            });
        }
        if self.eat_symbol("+") {
            let expr = self.parse_unary()?;
            return Ok(Expr::UnaryOp {
                op: UnaryOp::Plus,
                expr: Box::new(expr),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Symbol("(") => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            TokenKind::Ident(word) => match word.as_str() {
                "null" => {
                    self.advance();
                    Ok(Expr::Literal(Value::Null))
                }
                "true" => {
                    self.advance();
                    Ok(Expr::Literal(Value::Bool(true)))
                }
                "false" => {
                    self.advance();
                    Ok(Expr::Literal(Value::Bool(false)))
                }
                "case" => self.parse_case(),
                "cast" => self.parse_cast(),
                _ => self.parse_column_or_function(),
            },
            TokenKind::QuotedIdent(_) => self.parse_column_or_function(),
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword("case")?;
        let operand = if self.at_keyword("when") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let w = self.parse_expr()?;
            self.expect_keyword("then")?;
            let t = self.parse_expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_expr = if self.eat_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn parse_cast(&mut self) -> Result<Expr> {
        self.expect_keyword("cast")?;
        self.expect_symbol("(")?;
        let expr = self.parse_expr()?;
        self.expect_keyword("as")?;
        let data_type = self.parse_data_type()?;
        self.expect_symbol(")")?;
        Ok(Expr::Cast {
            expr: Box::new(expr),
            data_type,
        })
    }

    fn parse_column_or_function(&mut self) -> Result<Expr> {
        let start = self.peek_pos();
        let first = match self.peek().clone() {
            TokenKind::Ident(w) => {
                // Function names may collide with soft keywords; columns may not.
                self.advance();
                w
            }
            TokenKind::QuotedIdent(w) => {
                self.advance();
                w
            }
            _ => return Err(self.unexpected("identifier")),
        };
        if self.at_symbol("(") {
            // function call
            self.advance();
            let mut args = Vec::new();
            let mut distinct = false;
            let mut star = false;
            if self.eat_symbol("*") {
                star = true;
            } else if !self.at_symbol(")") {
                distinct = self.eat_keyword("distinct");
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::Function {
                name: first,
                args,
                distinct,
                star,
            });
        }
        if self.at_symbol(".") && !matches!(self.peek_ahead(1), TokenKind::Symbol("*")) {
            self.advance();
            let name = match self.peek().clone() {
                TokenKind::Ident(w) if !RESERVED.contains(&w.as_str()) => {
                    self.advance();
                    w
                }
                TokenKind::QuotedIdent(w) => {
                    self.advance();
                    w
                }
                _ => return Err(self.unexpected("a column name after '.'")),
            };
            return Ok(Expr::Column {
                relation: Some(first),
                name,
            });
        }
        if RESERVED.contains(&first.as_str()) {
            return Err(Error::parse_at(
                format!("reserved word '{first}' cannot be used as a column reference"),
                start,
            ));
        }
        Ok(Expr::Column {
            relation: None,
            name: first,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse_sql(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let query = q("SELECT a, b + 1 AS c FROM t WHERE a > 10");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        assert_eq!(s.projection.len(), 2);
        assert!(s.selection.is_some());
    }

    #[test]
    fn select_without_from() {
        let query = q("SELECT 1 + 2");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        assert!(s.from.is_empty());
    }

    #[test]
    fn operator_precedence() {
        let query = q("SELECT 1 + 2 * 3");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let query = q("SELECT 1 WHERE a OR b AND c");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        assert_eq!(
            s.selection.as_ref().unwrap().to_string(),
            "(a OR (b AND c))"
        );
    }

    #[test]
    fn join_tree() {
        let query = q("SELECT * FROM pr LEFT JOIN edges AS e ON pr.node = e.dst \
             LEFT JOIN pr AS p2 ON p2.node = e.src");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let TableRef::Join { kind, left, .. } = &s.from[0] else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::LeftOuter);
        assert!(matches!(**left, TableRef::Join { .. }));
    }

    #[test]
    fn group_by_and_having() {
        let query = q("SELECT src, COUNT(dst) FROM edges GROUP BY src HAVING COUNT(dst) > 2");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn union_in_subquery() {
        let query = q("SELECT src FROM (SELECT src FROM edges UNION SELECT dst FROM edges)");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let TableRef::Subquery { query: sub, .. } = &s.from[0] else {
            panic!()
        };
        assert!(matches!(
            sub.body,
            SetExpr::SetOp {
                op: SetOp::Union,
                all: false,
                ..
            }
        ));
    }

    #[test]
    fn regular_cte() {
        let query = q("WITH t AS (SELECT 1 AS x) SELECT x FROM t");
        assert_eq!(query.ctes.len(), 1);
        assert!(matches!(query.ctes[0].kind, CteKind::Regular(_)));
    }

    #[test]
    fn recursive_cte_splits_base_and_step() {
        let query = q(
            "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5) \
             SELECT n FROM r",
        );
        let CteKind::Recursive { union_all, .. } = &query.ctes[0].kind else {
            panic!()
        };
        assert!(*union_all);
    }

    #[test]
    fn iterative_cte_metadata_termination() {
        let query = q("WITH ITERATIVE pagerank (node, rank, delta) AS (
                SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
             ITERATE
                SELECT pagerank.node, pagerank.rank + pagerank.delta,
                       0.85 * SUM(ir.delta * ie.weight)
                FROM pagerank
                LEFT JOIN edges AS ie ON pagerank.node = ie.dst
                LEFT JOIN pagerank AS ir ON ir.node = ie.src
                GROUP BY pagerank.node, pagerank.rank + pagerank.delta
             UNTIL 10 ITERATIONS)
             SELECT node, rank FROM pagerank");
        assert_eq!(query.ctes.len(), 1);
        assert_eq!(query.ctes[0].columns, vec!["node", "rank", "delta"]);
        let CteKind::Iterative { until, .. } = &query.ctes[0].kind else {
            panic!()
        };
        assert_eq!(*until, Termination::Iterations(10));
    }

    #[test]
    fn iterative_cte_delta_termination() {
        let query = q(
            "WITH ITERATIVE t (a) AS (SELECT 1 ITERATE SELECT a + 1 FROM t UNTIL DELTA < 1) \
             SELECT * FROM t",
        );
        let CteKind::Iterative { until, .. } = &query.ctes[0].kind else {
            panic!()
        };
        assert_eq!(*until, Termination::Delta { threshold: 1 });
    }

    #[test]
    fn iterative_cte_data_termination() {
        let query = q(
            "WITH ITERATIVE t (a) AS (SELECT 1 ITERATE SELECT a + 1 FROM t \
             UNTIL (a > 100), 5 ROWS) SELECT * FROM t",
        );
        let CteKind::Iterative { until, .. } = &query.ctes[0].kind else {
            panic!()
        };
        let Termination::Data { rows, .. } = until else {
            panic!()
        };
        assert_eq!(*rows, 5);
    }

    #[test]
    fn iterative_cte_any_termination_defaults_to_one_row() {
        let query = q(
            "WITH ITERATIVE t (a) AS (SELECT 1 ITERATE SELECT a + 1 FROM t \
             UNTIL ANY (a > 100)) SELECT * FROM t",
        );
        let CteKind::Iterative { until, .. } = &query.ctes[0].kind else {
            panic!()
        };
        assert_eq!(
            *until,
            Termination::Data {
                expr: Expr::col("a").binary(BinaryOp::Gt, Expr::lit(100i64)),
                rows: 1
            }
        );
    }

    #[test]
    fn updates_termination() {
        let query = q(
            "WITH ITERATIVE t (a) AS (SELECT 1 ITERATE SELECT a + 1 FROM t \
             UNTIL 100 UPDATES) SELECT * FROM t",
        );
        let CteKind::Iterative { until, .. } = &query.ctes[0].kind else {
            panic!()
        };
        assert_eq!(*until, Termination::Updates(100));
    }

    #[test]
    fn case_when_and_functions() {
        let query = q("SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END FROM edges");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.projection[2] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Case { .. }));
    }

    #[test]
    fn ff_query_parses() {
        // Figure 6 of the paper, verbatim structure.
        let query = q("WITH ITERATIVE forecast (node, friends, friendsPrev)
             AS( SELECT src AS node, count(dst) AS friends,
                    ceiling(count(dst) * (1.0-(src%10)/100.0)) AS friendsPrev
                 FROM edges GROUP BY src
               ITERATE
                 SELECT node AS node,
                    round(cast((friends / friendsPrev) * friends AS numeric), 5) AS friends,
                    friends AS friendsPrev
                 FROM forecast
               UNTIL 5 Iterations )
             SELECT node, friends
             FROM forecast WHERE MOD(node, 100) = 0
             ORDER BY friends DESC LIMIT 10");
        assert_eq!(query.limit, Some(10));
        assert_eq!(query.order_by.len(), 1);
        assert!(!query.order_by[0].asc);
    }

    #[test]
    fn sssp_query_parses() {
        // Figure 7 of the paper.
        let query = q("WITH ITERATIVE sssp (Node, Distance, Delta)
             AS (SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END
                 FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
              ITERATE
                SELECT sssp.node,
                  LEAST(sssp.distance, sssp.delta),
                  COALESCE(MIN(IncomingDistance.delta + IncomingEdges.weight), 9999999)
                FROM sssp
                 LEFT JOIN edges AS IncomingEdges ON sssp.node = IncomingEdges.dst
                 LEFT JOIN sssp AS IncomingDistance ON IncomingDistance.node = IncomingEdges.src
                WHERE IncomingDistance.Delta != 9999999
                GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta)
              UNTIL 10 ITERATIONS)
             SELECT Distance FROM sssp WHERE Node = 10");
        let CteKind::Iterative { step, .. } = &query.ctes[0].kind else {
            panic!()
        };
        let SetExpr::Select(s) = &step.body else {
            panic!()
        };
        assert!(
            s.selection.is_some(),
            "SSSP iterative part has a WHERE clause"
        );
        assert_eq!(s.group_by.len(), 2);
    }

    #[test]
    fn create_table_with_keys() {
        let stmt = parse_sql(
            "CREATE TABLE edges (src INT, dst INT, weight FLOAT, PRIMARY KEY (src)) \
             PARTITION BY (dst)",
        )
        .unwrap();
        let Statement::CreateTable {
            columns,
            primary_key,
            partition_key,
            ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(columns.len(), 3);
        assert_eq!(primary_key.as_deref(), Some("src"));
        assert_eq!(partition_key.as_deref(), Some("dst"));
    }

    #[test]
    fn insert_values_and_select() {
        let v = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert {
            source: InsertSource::Values(rows),
            ..
        } = v
        else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        let s = parse_sql("INSERT INTO t SELECT a, b FROM u").unwrap();
        assert!(matches!(
            s,
            Statement::Insert {
                source: InsertSource::Query(_),
                ..
            }
        ));
    }

    #[test]
    fn update_with_from() {
        let stmt = parse_sql(
            "UPDATE pagerank SET rank = i.rank, delta = i.delta FROM intermediate AS i \
             WHERE pagerank.node = i.node",
        )
        .unwrap();
        let Statement::Update {
            assignments,
            from,
            selection,
            ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(assignments.len(), 2);
        assert!(from.is_some());
        assert!(selection.is_some());
    }

    #[test]
    fn delete_and_drop() {
        assert!(matches!(
            parse_sql("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_sql("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn explain_wraps_statement() {
        let stmt = parse_sql("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: false, .. }));
    }

    #[test]
    fn explain_analyze_sets_flag() {
        let stmt = parse_sql("EXPLAIN ANALYZE SELECT 1").unwrap();
        let Statement::Explain { statement, analyze } = stmt else {
            panic!("not an explain");
        };
        assert!(analyze);
        assert!(matches!(*statement, Statement::Query(_)));
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_statements("SELECT 1; SELECT 2;; SELECT 3").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_position_reported() {
        let err = parse_sql("SELECT FROM t").unwrap_err();
        assert!(matches!(
            err,
            Error::Parse {
                position: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_sql("SELECT 1 garbage garbage").is_err());
    }

    #[test]
    fn in_list_and_between() {
        let query = q("SELECT 1 WHERE a IN (1, 2, 3) AND b NOT BETWEEN 1 AND 5");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let sel = s.selection.as_ref().unwrap().to_string();
        assert!(sel.contains("IN"));
        assert!(sel.contains("NOT BETWEEN"));
    }

    #[test]
    fn is_null_parses() {
        let query = q("SELECT 1 WHERE a IS NOT NULL");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        assert!(matches!(
            s.selection.as_ref().unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn count_star() {
        let query = q("SELECT COUNT(*) FROM t");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let SelectItem::Expr {
            expr: Expr::Function { star, .. },
            ..
        } = &s.projection[0]
        else {
            panic!()
        };
        assert!(*star);
    }

    #[test]
    fn negative_literals_fold() {
        let query = q("SELECT -5, -2.5");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(*expr, Expr::Literal(Value::Int(-5)));
    }

    #[test]
    fn multiple_ctes_share_iterative_modifier() {
        let query = q(
            "WITH ITERATIVE a (x) AS (SELECT 1 ITERATE SELECT x + 1 FROM a UNTIL 2 ITERATIONS), \
             b (y) AS (SELECT 2 ITERATE SELECT y FROM b UNTIL 1 ITERATIONS) \
             SELECT * FROM a, b",
        );
        assert_eq!(query.ctes.len(), 2);
        assert!(query
            .ctes
            .iter()
            .all(|c| matches!(c.kind, CteKind::Iterative { .. })));
    }

    #[test]
    fn qualified_wildcard() {
        let query = q("SELECT e.* FROM edges e");
        let SetExpr::Select(s) = &query.body else {
            panic!()
        };
        assert_eq!(s.projection[0], SelectItem::QualifiedWildcard("e".into()));
    }
}
