//! Property test: expression `Display` output re-parses to the identical
//! AST. `Display` fully parenthesizes, so this exercises the whole
//! precedence-climbing parser against a structural oracle.

use proptest::prelude::*;
use spinner_common::Value;
use spinner_parser::{BinaryOp, Expr, Parser, UnaryOp};

/// Random expression ASTs. Negative numeric literals are avoided because
/// the parser folds `-5` into a literal at parse time (so `(-5)` would not
/// round-trip as `UnaryOp(Minus, Literal(5))` — that fold is tested
/// separately in the parser's unit tests).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (0u32..1000).prop_map(|i| Expr::Literal(Value::Float(f64::from(i) / 8.0))),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::Literal(Value::Bool(true))),
        "[a-d]".prop_map(Expr::col),
        ("[a-d]", "[x-z]").prop_map(|(r, c)| Expr::qcol(r, c)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), arb_binop(), inner.clone()).prop_map(|(l, op, r)| {
                Expr::BinaryOp {
                    left: Box::new(l),
                    op,
                    right: Box::new(r),
                }
            }),
            inner.clone().prop_map(|e| Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone())
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    operand: None,
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Plus),
        Just(BinaryOp::Minus),
        Just(BinaryOp::Multiply),
        Just(BinaryOp::Divide),
        Just(BinaryOp::Modulo),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_reparses_to_same_ast(expr in arb_expr()) {
        let text = expr.to_string();
        let mut parser = Parser::new(&text)
            .unwrap_or_else(|e| panic!("lexing '{text}' failed: {e}"));
        let reparsed = parser
            .parse_expr()
            .unwrap_or_else(|e| panic!("parsing '{text}' failed: {e}"));
        prop_assert_eq!(reparsed, expr, "text was: {}", text);
    }

    #[test]
    fn select_of_expr_parses(expr in arb_expr()) {
        let sql = format!("SELECT {expr} FROM t");
        prop_assert!(spinner_parser::parse_sql(&sql).is_ok(), "sql was: {}", sql);
    }
}
