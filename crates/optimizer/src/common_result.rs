//! Common-result extraction (paper §V-A, Fig. 5 / Fig. 9).
//!
//! Joins inside the iterative part whose inputs never change across
//! iterations are computed once per iteration by the naive rewrite — and
//! once *total* after this rewrite: the loop-invariant join subtree is
//! materialized before the loop and the loop body re-reads the
//! materialization.
//!
//! To expose invariant subtrees the rule first applies a limited inner-join
//! associativity rewrite,
//!
//! ```text
//! (A ⋈ B) ⋈ C  with the upper keys referencing only B   ⇒   A ⋈ (B ⋈ C)
//! ```
//!
//! which regroups `edges ⨝ vertexStatus` next to each other in the PR-VS
//! query after outer→inner conversion has run (the paper notes general
//! join reordering with outer joins is future work — same here: the
//! rewrite only fires on inner joins).

use std::sync::Arc;

use spinner_common::Result;
use spinner_plan::{JoinType, LogicalPlan, LoopKind, PlanExpr, Step};

/// Scan the step program; for every iterative loop, hoist loop-invariant
/// join subtrees of the working-table plan into pre-loop materializations.
pub fn extract_common_results(steps: Vec<Step>) -> Result<Vec<Step>> {
    let mut out: Vec<Step> = Vec::with_capacity(steps.len());
    let mut counter = 0usize;
    for step in steps {
        match step {
            Step::Loop(mut l) if matches!(l.kind, LoopKind::Iterative { .. }) => {
                let mut commons: Vec<(String, LogicalPlan)> = Vec::new();
                l.body = l
                    .body
                    .into_iter()
                    .map(|body_step| match body_step {
                        Step::Materialize {
                            name,
                            plan,
                            distribute_by,
                        } => {
                            let regrouped = regroup_inner_joins(plan, &l.cte);
                            let rewritten =
                                extract_from_plan(regrouped, &l.cte, &mut commons, &mut counter);
                            Step::Materialize {
                                name,
                                plan: rewritten,
                                distribute_by,
                            }
                        }
                        other => other,
                    })
                    .collect();
                for (name, plan) in commons {
                    out.push(Step::Materialize {
                        name,
                        plan,
                        distribute_by: None,
                    });
                }
                out.push(Step::Loop(l));
            }
            other => out.push(other),
        }
    }
    Ok(out)
}

/// Replace maximal loop-invariant join subtrees with TempScans, collecting
/// the extracted plans. Top-down: the first qualifying node wins, so the
/// largest invariant region is hoisted.
fn extract_from_plan(
    plan: LogicalPlan,
    cte: &str,
    commons: &mut Vec<(String, LogicalPlan)>,
    counter: &mut usize,
) -> LogicalPlan {
    if is_invariant_join_subtree(&plan, cte) {
        *counter += 1;
        let name = format!("__common_{counter}");
        let schema = plan.schema();
        commons.push((name.clone(), plan));
        return LogicalPlan::TempScan { name, schema };
    }
    map_children(plan, &mut |child| {
        extract_from_plan(child, cte, commons, counter)
    })
}

/// A subtree qualifies when it contains at least one join, never reads the
/// iterative CTE, and only reads stable inputs (base tables / other temps).
fn is_invariant_join_subtree(plan: &LogicalPlan, cte: &str) -> bool {
    plan.count_joins() >= 1 && !plan.references_temp(cte)
}

/// Associativity regrouping pass: `(A ⋈i B) ⋈i C` where the upper equi-keys
/// touch only B's columns and A references the CTE while B and C do not
/// becomes `A ⋈i (B ⋈i C)` — exposing `B ⋈ C` as an invariant subtree.
fn regroup_inner_joins(plan: LogicalPlan, cte: &str) -> LogicalPlan {
    let plan = map_children(plan, &mut |c| regroup_inner_joins(c, cte));
    let LogicalPlan::Join {
        left: upper_left,
        right: upper_right,
        join_type: upper_type,
        on: upper_on,
        filter: upper_filter,
        schema: upper_schema,
    } = plan
    else {
        return plan;
    };
    // Only rewrite an inner upper join over an inner/cross lower join.
    let rebuild = |left: Box<LogicalPlan>, right: Box<LogicalPlan>| LogicalPlan::Join {
        left,
        right,
        join_type: upper_type,
        on: upper_on.clone(),
        filter: upper_filter.clone(),
        schema: upper_schema.clone(),
    };
    if upper_type != JoinType::Inner {
        return rebuild(upper_left, upper_right);
    }
    let LogicalPlan::Join {
        left: a,
        right: b,
        join_type: lower_type,
        on: lower_on,
        filter: lower_filter,
        schema: lower_schema,
    } = *upper_left
    else {
        return rebuild(upper_left, upper_right);
    };
    let rebuild_lower = |a: Box<LogicalPlan>, b: Box<LogicalPlan>| {
        Box::new(LogicalPlan::Join {
            left: a,
            right: b,
            join_type: lower_type,
            on: lower_on.clone(),
            filter: lower_filter.clone(),
            schema: lower_schema.clone(),
        })
    };
    if !matches!(lower_type, JoinType::Inner | JoinType::Cross) {
        return rebuild(rebuild_lower(a, b), upper_right);
    }
    let a_width = a.schema().len();
    let b_width = b.schema().len();
    let c = upper_right;
    // Guard: the rewrite only helps (and only preserves key indices) when
    // A is the loop-variant side and B, C are invariant.
    let should = a.references_temp(cte)
        && !b.references_temp(cte)
        && !c.references_temp(cte)
        // Upper keys must reference only B (range [a_width, a_width+b_width)).
        && !upper_on.is_empty()
        && upper_on.iter().all(|(lk, _)| {
            let cols = lk.referenced_columns();
            !cols.is_empty() && cols.iter().all(|&i| i >= a_width && i < a_width + b_width)
        })
        // The lower residual must not span A and B in a way we cannot keep
        // (keeping it in the upper join preserves indices, so any residual
        // is fine — but a residual referencing B must stay semantically a
        // *join* condition; keeping it above the new lower join is exactly
        // that).
        ;
    if !should {
        // Rebuild the original shape.
        return rebuild(rebuild_lower(a, b), c);
    }
    // New lower join: B ⋈ C. Key indices: upper left keys shift by -a_width;
    // right keys (over C) are unchanged.
    let bc_schema = Arc::new(b.schema().join(&c.schema()));
    let bc_on: Vec<(PlanExpr, PlanExpr)> = upper_on
        .iter()
        .map(|(lk, rk)| {
            let shifted = lk
                .remap_columns(&|i| i.checked_sub(a_width))
                .expect("guard ensures keys reference only B");
            (shifted, rk.clone())
        })
        .collect();
    let bc = LogicalPlan::Join {
        left: b,
        right: c,
        join_type: JoinType::Inner,
        on: bc_on,
        filter: None,
        schema: bc_schema,
    };
    // New upper join: A ⋈ (B ⋈ C). Column order A∥B∥C matches the original
    // (A∥B)∥C, so the output schema and any residuals keep their indices.
    // The old lower join's keys (A-side vs B-side) become the upper keys;
    // B-side key indices are already relative to B, which now leads the
    // right side — unchanged.
    let residual = match (lower_filter, upper_filter) {
        (Some(lf), Some(uf)) => Some(lf.binary(spinner_plan::expr::BinaryOp::And, uf)),
        (Some(lf), None) => Some(lf),
        (None, Some(uf)) => Some(uf),
        (None, None) => None,
    };
    LogicalPlan::Join {
        left: a,
        right: Box::new(bc),
        join_type: lower_type,
        on: lower_on,
        filter: residual,
        schema: upper_schema,
    }
}

/// Rebuild a node with transformed children.
fn map_children(plan: LogicalPlan, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            join_type,
            on,
            filter,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            schema,
        },
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use spinner_plan::{LoopStep, TerminationPlan};
    use std::sync::Arc;

    fn table(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: name.into(),
            schema: Arc::new(Schema::new(
                cols.iter().map(|c| Field::new(*c, DataType::Int)).collect(),
            )),
        }
    }

    fn temp(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::TempScan {
            name: name.into(),
            schema: Arc::new(Schema::new(
                cols.iter().map(|c| Field::new(*c, DataType::Int)).collect(),
            )),
        }
    }

    fn inner(l: LogicalPlan, r: LogicalPlan, lk: usize, rk: usize) -> LogicalPlan {
        let schema = Arc::new(l.schema().join(&r.schema()));
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            join_type: JoinType::Inner,
            on: vec![(PlanExpr::column(lk, "lk"), PlanExpr::column(rk, "rk"))],
            filter: None,
            schema,
        }
    }

    fn loop_step(body_plan: LogicalPlan) -> Step {
        let schema = Arc::new(Schema::new(vec![Field::new("node", DataType::Int)]));
        Step::Loop(LoopStep {
            cte: "cte_pr".into(),
            cte_display_name: "pr".into(),
            kind: LoopKind::Iterative {
                working: "w".into(),
                merge: false,
                delta: None,
            },
            body: vec![
                Step::Materialize {
                    name: "w".into(),
                    plan: body_plan,
                    distribute_by: Some(0),
                },
                Step::Rename {
                    from: "w".into(),
                    to: "cte_pr".into(),
                },
            ],
            termination: TerminationPlan::Iterations(5),
            key: 0,
            schema,
        })
    }

    #[test]
    fn invariant_join_is_hoisted_before_loop() {
        // pr ⋈ (edges ⋈ vs): the right subtree is invariant.
        let invariant = inner(
            table("edges", &["src", "dst"]),
            table("vs", &["node"]),
            1,
            0,
        );
        let body = inner(temp("cte_pr", &["node"]), invariant, 0, 1);
        let steps = extract_common_results(vec![loop_step(body)]).unwrap();
        assert_eq!(steps.len(), 2);
        let Step::Materialize { name, plan, .. } = &steps[0] else {
            panic!("common first")
        };
        assert!(name.starts_with("__common_"));
        assert_eq!(plan.count_joins(), 1);
        let Step::Loop(l) = &steps[1] else { panic!() };
        let Step::Materialize { plan, .. } = &l.body[0] else {
            panic!()
        };
        // The loop body now reads the materialized common result.
        assert!(plan.references_temp(name));
        assert_eq!(plan.count_joins(), 1); // only the variant join remains
    }

    #[test]
    fn variant_join_not_hoisted() {
        // pr ⋈ edges — references the CTE, cannot be hoisted.
        let body = inner(
            temp("cte_pr", &["node"]),
            table("edges", &["src", "dst"]),
            0,
            0,
        );
        let steps = extract_common_results(vec![loop_step(body)]).unwrap();
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn bare_scan_not_hoisted() {
        // A lone invariant scan has no join — materializing it buys nothing.
        let body = inner(
            temp("cte_pr", &["node"]),
            table("edges", &["src", "dst"]),
            0,
            0,
        );
        let steps = extract_common_results(vec![loop_step(body)]).unwrap();
        let Step::Loop(l) = &steps[0] else { panic!() };
        let Step::Materialize { plan, .. } = &l.body[0] else {
            panic!()
        };
        assert!(matches!(
            plan,
            LogicalPlan::Join { right, .. } if matches!(**right, LogicalPlan::TableScan { .. })
        ));
    }

    #[test]
    fn left_deep_inner_run_is_regrouped_and_hoisted() {
        // ((pr ⋈ edges) ⋈ vs) with the vs-join keyed on edges columns —
        // the PR-VS shape after outer→inner conversion.
        let pr = temp("cte_pr", &["node"]); // width 1
        let edges = table("edges", &["src", "dst"]); // width 2
        let vs = table("vs", &["vnode", "status"]);
        let lower = inner(pr, edges, 0, 1); // pr.node = edges.dst
                                            // upper keys: edges.dst (combined index 2) = vs.vnode (index 0)
        let upper = inner(lower, vs, 2, 0);
        let steps = extract_common_results(vec![loop_step(upper)]).unwrap();
        assert_eq!(steps.len(), 2, "expected a hoisted common materialization");
        let Step::Materialize { plan, .. } = &steps[0] else {
            panic!()
        };
        // The hoisted subtree is edges ⋈ vs.
        assert_eq!(plan.count_joins(), 1);
        assert!(!plan.references_temp("cte_pr"));
    }
}
