//! Predicate push-down *within* one plan tree.
//!
//! Filters move as close to the scans as legality allows:
//!
//! * through another Filter (merging conjuncts),
//! * through Projection (substituting the projected expressions),
//! * into the legal side(s) of a Join (preserved sides of outer joins),
//! * through Distinct and Sort,
//! * into both branches of UNION / INTERSECT, the left branch of EXCEPT,
//! * below an Aggregate when the conjunct touches only group columns.
//!
//! The *cross-block* push-down into an iterative CTE's non-iterative part
//! — which must be restricted, per the paper — lives in
//! [`crate::iterative_pushdown`], not here.

use spinner_common::Result;
use spinner_plan::{JoinType, LogicalPlan, PlanExpr};

use crate::{conjoin, split_conjuncts};

/// One pass of push-down over the whole tree (run to fixpoint by the
/// driver).
pub fn push_down_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_filters(*input)?;
            push_filter(predicate, input)?
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(push_down_filters(*input)?),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(*left)?),
            right: Box::new(push_down_filters(*right)?),
            join_type,
            on,
            filter,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_down_filters(*input)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(*input)?),
            n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(push_down_filters(*left)?),
            right: Box::new(push_down_filters(*right)?),
            schema,
        },
        leaf => leaf,
    })
}

/// Push `predicate` into `input` as far as one level allows, recursing
/// where the filter sinks.
fn push_filter(predicate: PlanExpr, input: LogicalPlan) -> Result<LogicalPlan> {
    match input {
        // Merge adjacent filters (then retry on the merged predicate).
        LogicalPlan::Filter {
            input: inner,
            predicate: p2,
        } => {
            let merged = conjoin(vec![p2, predicate]).expect("two conjuncts");
            push_filter(merged, *inner)
        }
        // Substitute projection expressions into the predicate and sink it.
        LogicalPlan::Projection {
            input: inner,
            exprs,
            schema,
        } => {
            let substituted = substitute_columns(&predicate, &exprs)?;
            let pushed = push_filter(substituted, *inner)?;
            Ok(LogicalPlan::Projection {
                input: Box::new(pushed),
                exprs,
                schema,
            })
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let lwidth = left.schema().len();
            let mut conjuncts = Vec::new();
            split_conjuncts(&predicate, &mut conjuncts);
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut keep = Vec::new();
            let (push_left_ok, push_right_ok) = match join_type {
                JoinType::Inner | JoinType::Cross => (true, true),
                JoinType::Left => (true, false),
                JoinType::Right => (false, true),
                JoinType::Full => (false, false),
            };
            for c in conjuncts {
                let cols = c.referenced_columns();
                let all_left = cols.iter().all(|&i| i < lwidth);
                let all_right = cols.iter().all(|&i| i >= lwidth);
                if all_left && !cols.is_empty() && push_left_ok {
                    to_left.push(c);
                } else if all_right && !cols.is_empty() && push_right_ok {
                    to_right.push(c.remap_columns(&|i| Some(i - lwidth))?);
                } else {
                    keep.push(c);
                }
            }
            let mut new_left = *left;
            if let Some(p) = conjoin(to_left) {
                new_left = push_filter(p, new_left)?;
            }
            let mut new_right = *right;
            if let Some(p) = conjoin(to_right) {
                new_right = push_filter(p, new_right)?;
            }
            let join = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                join_type,
                on,
                filter,
                schema,
            };
            Ok(match conjoin(keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            })
        }
        LogicalPlan::Aggregate {
            input: inner,
            group,
            aggs,
            schema,
        } => {
            let mut conjuncts = Vec::new();
            split_conjuncts(&predicate, &mut conjuncts);
            let ngroups = group.len();
            let mut below = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts {
                let cols = c.referenced_columns();
                if !cols.is_empty() && cols.iter().all(|&i| i < ngroups) {
                    // Rewrite group-column references to the underlying
                    // group expressions and push below.
                    below.push(substitute_columns(&c, &group)?);
                } else {
                    keep.push(c);
                }
            }
            let mut new_input = *inner;
            if let Some(p) = conjoin(below) {
                new_input = push_filter(p, new_input)?;
            }
            let agg = LogicalPlan::Aggregate {
                input: Box::new(new_input),
                group,
                aggs,
                schema,
            };
            Ok(match conjoin(keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(agg),
                    predicate: p,
                },
                None => agg,
            })
        }
        LogicalPlan::Distinct { input: inner } => {
            let pushed = push_filter(predicate, *inner)?;
            Ok(LogicalPlan::Distinct {
                input: Box::new(pushed),
            })
        }
        LogicalPlan::Sort { input: inner, keys } => {
            let pushed = push_filter(predicate, *inner)?;
            Ok(LogicalPlan::Sort {
                input: Box::new(pushed),
                keys,
            })
        }
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => {
            use spinner_plan::SetOpKind;
            let push_right = matches!(op, SetOpKind::Union | SetOpKind::Intersect);
            let new_left = push_filter(predicate.clone(), *left)?;
            let new_right = if push_right {
                push_filter(predicate, *right)?
            } else {
                *right
            };
            Ok(LogicalPlan::SetOp {
                op,
                all,
                left: Box::new(new_left),
                right: Box::new(new_right),
                schema,
            })
        }
        // Leaves and barriers (Limit): the filter stays here.
        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

/// Replace every `Column(i)` in `expr` with `replacements[i]`.
fn substitute_columns(expr: &PlanExpr, replacements: &[PlanExpr]) -> Result<PlanExpr> {
    Ok(match expr {
        PlanExpr::Column(c) => replacements.get(c.index).cloned().ok_or_else(|| {
            spinner_common::Error::plan(format!(
                "column index {} out of range during substitution",
                c.index
            ))
        })?,
        PlanExpr::Literal(v) => PlanExpr::Literal(v.clone()),
        PlanExpr::Binary { left, op, right } => PlanExpr::Binary {
            left: Box::new(substitute_columns(left, replacements)?),
            op: *op,
            right: Box::new(substitute_columns(right, replacements)?),
        },
        PlanExpr::Unary { op, expr } => PlanExpr::Unary {
            op: *op,
            expr: Box::new(substitute_columns(expr, replacements)?),
        },
        PlanExpr::Scalar { func, args } => PlanExpr::Scalar {
            func: *func,
            args: args
                .iter()
                .map(|a| substitute_columns(a, replacements))
                .collect::<Result<_>>()?,
        },
        PlanExpr::Case {
            branches,
            else_expr,
        } => PlanExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        substitute_columns(w, replacements)?,
                        substitute_columns(t, replacements)?,
                    ))
                })
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(substitute_columns(e, replacements)?)),
                None => None,
            },
        },
        PlanExpr::Cast { expr, to } => PlanExpr::Cast {
            expr: Box::new(substitute_columns(expr, replacements)?),
            to: *to,
        },
        PlanExpr::IsNull { expr, negated } => PlanExpr::IsNull {
            expr: Box::new(substitute_columns(expr, replacements)?),
            negated: *negated,
        },
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => PlanExpr::InList {
            expr: Box::new(substitute_columns(expr, replacements)?),
            list: list
                .iter()
                .map(|e| substitute_columns(e, replacements))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use spinner_plan::expr::BinaryOp;
    use std::sync::Arc;

    fn scan(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::TempScan {
            name: name.into(),
            schema: Arc::new(Schema::new(
                cols.iter().map(|c| Field::new(*c, DataType::Int)).collect(),
            )),
        }
    }

    fn filt(input: LogicalPlan, pred: PlanExpr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(input),
            predicate: pred,
        }
    }

    #[test]
    fn filter_sinks_through_projection() {
        let proj = LogicalPlan::Projection {
            input: Box::new(scan("t", &["a", "b"])),
            exprs: vec![
                PlanExpr::column(1, "b"),
                PlanExpr::column(0, "a").binary(BinaryOp::Plus, PlanExpr::literal(1i64)),
            ],
            schema: Arc::new(Schema::new(vec![
                Field::new("b", DataType::Int),
                Field::new("a1", DataType::Int),
            ])),
        };
        // filter on output column 0 (= input column 1)
        let pred = PlanExpr::column(0, "b").binary(BinaryOp::Gt, PlanExpr::literal(5i64));
        let out = push_down_filters(filt(proj, pred)).unwrap();
        let LogicalPlan::Projection { input, .. } = out else {
            panic!("projection on top")
        };
        let LogicalPlan::Filter {
            predicate,
            input: below,
        } = *input
        else {
            panic!("filter below projection")
        };
        assert!(matches!(*below, LogicalPlan::TempScan { .. }));
        assert_eq!(predicate.referenced_columns(), vec![1]);
    }

    #[test]
    fn inner_join_splits_conjuncts_to_both_sides() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("l", &["a"])),
            right: Box::new(scan("r", &["b"])),
            join_type: JoinType::Inner,
            on: vec![],
            filter: None,
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ])),
        };
        let pred = PlanExpr::column(0, "a")
            .binary(BinaryOp::Gt, PlanExpr::literal(1i64))
            .binary(
                BinaryOp::And,
                PlanExpr::column(1, "b").binary(BinaryOp::Lt, PlanExpr::literal(9i64)),
            );
        let out = push_down_filters(filt(join, pred)).unwrap();
        let LogicalPlan::Join { left, right, .. } = out else {
            panic!("join on top")
        };
        assert!(matches!(*left, LogicalPlan::Filter { .. }));
        assert!(matches!(*right, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn left_join_keeps_right_side_conjunct_above() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("l", &["a"])),
            right: Box::new(scan("r", &["b"])),
            join_type: JoinType::Left,
            on: vec![],
            filter: None,
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ])),
        };
        let pred = PlanExpr::column(1, "b").binary(BinaryOp::Lt, PlanExpr::literal(9i64));
        let out = push_down_filters(filt(join, pred)).unwrap();
        // The right-side conjunct cannot sink through a LEFT join.
        assert!(matches!(out, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn group_column_filter_sinks_below_aggregate() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan("t", &["a", "b"])),
            group: vec![PlanExpr::column(0, "a")],
            aggs: vec![],
            schema: Arc::new(Schema::new(vec![Field::new("a", DataType::Int)])),
        };
        let pred = PlanExpr::column(0, "a").binary(BinaryOp::Eq, PlanExpr::literal(3i64));
        let out = push_down_filters(filt(agg, pred)).unwrap();
        let LogicalPlan::Aggregate { input, .. } = out else {
            panic!("agg on top")
        };
        assert!(matches!(*input, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn filter_does_not_cross_limit() {
        let lim = LogicalPlan::Limit {
            input: Box::new(scan("t", &["a"])),
            n: 3,
        };
        let pred = PlanExpr::column(0, "a").binary(BinaryOp::Gt, PlanExpr::literal(0i64));
        let out = push_down_filters(filt(lim, pred)).unwrap();
        assert!(matches!(out, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn union_pushes_into_both_branches() {
        let union = LogicalPlan::SetOp {
            op: spinner_plan::SetOpKind::Union,
            all: true,
            left: Box::new(scan("l", &["a"])),
            right: Box::new(scan("r", &["a"])),
            schema: Arc::new(Schema::new(vec![Field::new("a", DataType::Int)])),
        };
        let pred = PlanExpr::column(0, "a").binary(BinaryOp::Gt, PlanExpr::literal(0i64));
        let out = push_down_filters(filt(union, pred)).unwrap();
        let LogicalPlan::SetOp { left, right, .. } = out else {
            panic!()
        };
        assert!(matches!(*left, LogicalPlan::Filter { .. }));
        assert!(matches!(*right, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn except_pushes_left_only() {
        let except = LogicalPlan::SetOp {
            op: spinner_plan::SetOpKind::Except,
            all: false,
            left: Box::new(scan("l", &["a"])),
            right: Box::new(scan("r", &["a"])),
            schema: Arc::new(Schema::new(vec![Field::new("a", DataType::Int)])),
        };
        let pred = PlanExpr::column(0, "a").binary(BinaryOp::Gt, PlanExpr::literal(0i64));
        let out = push_down_filters(filt(except, pred)).unwrap();
        let LogicalPlan::SetOp { left, right, .. } = out else {
            panic!()
        };
        assert!(matches!(*left, LogicalPlan::Filter { .. }));
        assert!(matches!(*right, LogicalPlan::TempScan { .. }));
    }

    #[test]
    fn adjacent_filters_merge() {
        let two = filt(
            filt(
                scan("t", &["a"]),
                PlanExpr::column(0, "a").binary(BinaryOp::Gt, PlanExpr::literal(0i64)),
            ),
            PlanExpr::column(0, "a").binary(BinaryOp::Lt, PlanExpr::literal(9i64)),
        );
        let out = push_down_filters(two).unwrap();
        let LogicalPlan::Filter { input, .. } = out else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::TempScan { .. }));
    }
}
