//! Restricted predicate push-down into the non-iterative part
//! (paper §V-B, Fig. 10).
//!
//! For regular CTEs a final-query predicate can be pushed into the CTE
//! body unconditionally. For *iterative* CTEs that is wrong in general —
//! in PageRank, filtering to `node = 10` before the loop would also remove
//! node 10's neighbours, corrupting the rank. The rewrite is legal exactly
//! when every row's iterative computation is independent of every other
//! row and the filtered columns never change:
//!
//! 1. the final plan references the CTE exactly once, with the predicate
//!    sitting directly above that scan (general push-down has already
//!    driven it there);
//! 2. the iterative part `Ri` is a pure per-row pipeline over the CTE — a
//!    chain of Projection/Filter over the single `TempScan` of the CTE
//!    (no self-join, no join with other tables, no aggregation); and
//! 3. every column the predicate references is *invariant*: `Ri` passes it
//!    through unchanged (e.g. `node AS node` in the FF query).
//!
//! When all three hold, the predicate moves into `R0`'s materialization,
//! shrinking every iteration's input; the now-redundant copy in the final
//! plan is removed, exactly as MPPDB does for the FF query.

use spinner_common::{EngineConfig, Result};
use spinner_plan::{LogicalPlan, LoopKind, PlanExpr, Step};

/// Apply the rewrite across the whole step program. Returns the possibly
/// rewritten steps and final plan.
pub fn push_into_non_iterative(
    mut steps: Vec<Step>,
    mut root: LogicalPlan,
    _config: &EngineConfig,
) -> Result<(Vec<Step>, LogicalPlan)> {
    // Collect candidate loops: (index of loop step, cte temp name).
    let loops: Vec<(usize, String)> = steps
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Step::Loop(l) if matches!(l.kind, LoopKind::Iterative { .. }) => {
                Some((i, l.cte.clone()))
            }
            _ => None,
        })
        .collect();
    for (loop_idx, cte) in loops {
        // Condition 1: single reference in the final plan, filter directly
        // above it.
        if root.count_temp_refs(&cte) != 1 {
            continue;
        }
        let Some(predicate) = find_filter_over_scan(&root, &cte) else {
            continue;
        };
        // Condition 2 + 3: Ri is a per-row pipeline and the predicate's
        // columns are invariant.
        let Step::Loop(l) = &steps[loop_idx] else {
            unreachable!()
        };
        let Some(working_plan) = l.body.iter().find_map(|s| match s {
            Step::Materialize { plan, .. } => Some(plan),
            _ => None,
        }) else {
            continue;
        };
        let Some(passthrough) = per_row_passthrough(working_plan, &cte) else {
            continue;
        };
        let safe = predicate
            .referenced_columns()
            .iter()
            .all(|&c| passthrough.get(c).copied().flatten() == Some(c));
        if !safe {
            continue;
        }
        // Find the init materialization of this CTE (the step before the
        // loop that materializes `cte`).
        let Some(init_idx) = steps[..loop_idx].iter().rposition(
            |s| matches!(s, Step::Materialize { name, .. } if name.eq_ignore_ascii_case(&cte)),
        ) else {
            continue;
        };
        // Move the predicate: wrap R0 in the filter (positions in the CTE
        // schema equal positions in R0's output), drop it from the final
        // plan.
        let Step::Materialize {
            name,
            plan,
            distribute_by,
        } = steps[init_idx].clone()
        else {
            unreachable!()
        };
        steps[init_idx] = Step::Materialize {
            name,
            plan: LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: predicate.clone(),
            },
            distribute_by,
        };
        root = remove_filter_over_scan(root, &cte);
    }
    Ok((steps, root))
}

/// Find a `Filter` whose input is the TempScan of `cte`; return its
/// predicate.
fn find_filter_over_scan(plan: &LogicalPlan, cte: &str) -> Option<PlanExpr> {
    if let LogicalPlan::Filter { input, predicate } = plan {
        if matches!(&**input, LogicalPlan::TempScan { name, .. } if name.eq_ignore_ascii_case(cte))
        {
            return Some(predicate.clone());
        }
    }
    plan.children()
        .into_iter()
        .find_map(|c| find_filter_over_scan(c, cte))
}

/// Remove the `Filter(TempScan(cte))` found by [`find_filter_over_scan`].
fn remove_filter_over_scan(plan: LogicalPlan, cte: &str) -> LogicalPlan {
    if let LogicalPlan::Filter { input, predicate } = plan {
        if matches!(&*input, LogicalPlan::TempScan { name, .. } if name.eq_ignore_ascii_case(cte)) {
            return *input;
        }
        return LogicalPlan::Filter {
            input: Box::new(remove_filter_over_scan(*input, cte)),
            predicate,
        };
    }
    map_children_owned(plan, &mut |c| remove_filter_over_scan(c, cte))
}

/// If `plan` is a Projection/Filter chain over exactly `TempScan(cte)`,
/// return, for each output column, `Some(input column)` when the column is
/// a pure pass-through and `None` when it is computed. Returns `None`
/// overall when the plan has any other shape (join, aggregate, union, ...).
fn per_row_passthrough(plan: &LogicalPlan, cte: &str) -> Option<Vec<Option<usize>>> {
    match plan {
        LogicalPlan::TempScan { name, schema } if name.eq_ignore_ascii_case(cte) => {
            Some((0..schema.len()).map(Some).collect())
        }
        LogicalPlan::Filter { input, .. } => per_row_passthrough(input, cte),
        LogicalPlan::Projection { input, exprs, .. } => {
            let inner = per_row_passthrough(input, cte)?;
            Some(
                exprs
                    .iter()
                    .map(|e| match e {
                        PlanExpr::Column(c) => inner.get(c.index).copied().flatten(),
                        _ => None,
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

fn map_children_owned(
    plan: LogicalPlan,
    f: &mut impl FnMut(LogicalPlan) -> LogicalPlan,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            join_type,
            on,
            filter,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            schema,
        },
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use spinner_plan::expr::BinaryOp;
    use spinner_plan::{LoopStep, ScalarFn, TerminationPlan};
    use std::sync::Arc;

    fn cte_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Field::new("node", DataType::Int),
            Field::new("friends", DataType::Float),
        ]))
    }

    fn cte_scan() -> LogicalPlan {
        LogicalPlan::TempScan {
            name: "cte_f".into(),
            schema: cte_schema(),
        }
    }

    /// FF-shaped Ri: node passes through, friends is recomputed.
    fn ff_ri() -> LogicalPlan {
        LogicalPlan::Projection {
            input: Box::new(cte_scan()),
            exprs: vec![
                PlanExpr::column(0, "node"),
                PlanExpr::column(1, "friends").binary(BinaryOp::Multiply, PlanExpr::literal(2.0)),
            ],
            schema: cte_schema(),
        }
    }

    fn program(ri: LogicalPlan, qf_filter: PlanExpr) -> (Vec<Step>, LogicalPlan) {
        let steps = vec![
            Step::Materialize {
                name: "cte_f".into(),
                plan: LogicalPlan::Values {
                    schema: cte_schema(),
                    rows: vec![],
                },
                distribute_by: Some(0),
            },
            Step::Loop(LoopStep {
                cte: "cte_f".into(),
                cte_display_name: "forecast".into(),
                kind: LoopKind::Iterative {
                    working: "w".into(),
                    merge: false,
                    delta: None,
                },
                body: vec![
                    Step::Materialize {
                        name: "w".into(),
                        plan: ri,
                        distribute_by: Some(0),
                    },
                    Step::Rename {
                        from: "w".into(),
                        to: "cte_f".into(),
                    },
                ],
                termination: TerminationPlan::Iterations(5),
                key: 0,
                schema: cte_schema(),
            }),
        ];
        let root = LogicalPlan::Filter {
            input: Box::new(cte_scan()),
            predicate: qf_filter,
        };
        (steps, root)
    }

    fn node_filter() -> PlanExpr {
        PlanExpr::Scalar {
            func: ScalarFn::Mod,
            args: vec![PlanExpr::column(0, "node"), PlanExpr::literal(100i64)],
        }
        .binary(BinaryOp::Eq, PlanExpr::literal(0i64))
    }

    #[test]
    fn ff_predicate_moves_into_r0() {
        let (steps, root) = program(ff_ri(), node_filter());
        let (steps, root) = push_into_non_iterative(steps, root, &EngineConfig::default()).unwrap();
        // R0 is now filtered...
        let Step::Materialize { plan, .. } = &steps[0] else {
            panic!()
        };
        assert!(matches!(plan, LogicalPlan::Filter { .. }));
        // ...and the final plan's filter is gone.
        assert!(matches!(root, LogicalPlan::TempScan { .. }));
    }

    #[test]
    fn predicate_on_computed_column_stays() {
        // Filter on `friends`, which Ri recomputes — unsafe to push.
        let pred = PlanExpr::column(1, "friends").binary(BinaryOp::Gt, PlanExpr::literal(10i64));
        let (steps, root) = program(ff_ri(), pred);
        let (steps, root) = push_into_non_iterative(steps, root, &EngineConfig::default()).unwrap();
        let Step::Materialize { plan, .. } = &steps[0] else {
            panic!()
        };
        assert!(matches!(plan, LogicalPlan::Values { .. }), "R0 unchanged");
        assert!(matches!(root, LogicalPlan::Filter { .. }), "Qf filter kept");
    }

    #[test]
    fn self_join_in_ri_blocks_pushdown() {
        // PR-shaped Ri: self-join of the CTE — pushing would be incorrect.
        let join_schema = Arc::new(cte_schema().join(&cte_schema()));
        let ri = LogicalPlan::Projection {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(cte_scan()),
                right: Box::new(cte_scan()),
                join_type: spinner_plan::JoinType::Inner,
                on: vec![(PlanExpr::column(0, "node"), PlanExpr::column(0, "node"))],
                filter: None,
                schema: join_schema,
            }),
            exprs: vec![PlanExpr::column(0, "node"), PlanExpr::column(1, "friends")],
            schema: cte_schema(),
        };
        let (steps, root) = program(ri, node_filter());
        let (steps, root) = push_into_non_iterative(steps, root, &EngineConfig::default()).unwrap();
        let Step::Materialize { plan, .. } = &steps[0] else {
            panic!()
        };
        assert!(matches!(plan, LogicalPlan::Values { .. }), "R0 unchanged");
        assert!(matches!(root, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn multiple_qf_references_block_pushdown() {
        let (steps, _) = program(ff_ri(), node_filter());
        // Qf self-joins the CTE; only one branch is filtered.
        let join_schema = Arc::new(cte_schema().join(&cte_schema()));
        let root = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Filter {
                input: Box::new(cte_scan()),
                predicate: node_filter(),
            }),
            right: Box::new(cte_scan()),
            join_type: spinner_plan::JoinType::Inner,
            on: vec![(PlanExpr::column(0, "node"), PlanExpr::column(0, "node"))],
            filter: None,
            schema: join_schema,
        };
        let (steps, root) = push_into_non_iterative(steps, root, &EngineConfig::default()).unwrap();
        let Step::Materialize { plan, .. } = &steps[0] else {
            panic!()
        };
        assert!(matches!(plan, LogicalPlan::Values { .. }), "R0 unchanged");
        assert!(find_filter_over_scan(&root, "cte_f").is_some());
    }
}
