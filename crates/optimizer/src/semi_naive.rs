//! Semi-naive (delta-driven) evaluation of iterative CTEs.
//!
//! The naive loop produced by the planner re-joins the **entire** CTE table
//! against the graph every iteration, even when only a handful of rows
//! changed in the previous round. Classic semi-naive evaluation instead
//! feeds the iterative join the **delta table** — the rows the last merge
//! actually changed — and folds the resulting contributions back into the
//! full table with a dedup-merge. Late iterations then cost `O(delta)`
//! instead of `O(table)`.
//!
//! # Delta-eligibility
//!
//! Substituting the delta for the full table is only exact for *accumulator*
//! loop bodies, where every output column either carries the old row value
//! through unchanged or folds new contributions into it with a monotone
//! `LEAST`/`GREATEST`. Concretely, the working-table plan must look like
//!
//! ```text
//! Projection: key, LEAST(old, COALESCE(MIN(contrib), old)), ...
//!   Aggregate: groupBy=[anchor columns] aggs=[MIN/MAX over other columns]
//!     Join (anchor ⨝ invariant) ⨝ propagation     -- equi joins, Left/Inner
//!       Join: anchor = TempScan cte, invariant = loop-constant side
//!       propagation = TempScan cte (optionally filtered)
//! ```
//!
//! with these rules (checked by [`apply`]; any failure falls back to full
//! recompute, recorded as `mode=full` in `EXPLAIN ANALYZE`):
//!
//! * the body reads the CTE exactly twice: once as the **anchor** (left
//!   spine of the joins, providing the old row) and once as the
//!   **propagation** side (the rows whose new values spread contributions);
//! * both joins are `INNER`/`LEFT` equi joins on bare columns with no
//!   residual filter, and the upper join's keys touch only the invariant
//!   side (`e.src = prop.node`, never an anchor column);
//! * the invariant side never reads the CTE and scans only base tables or
//!   loop-invariant (`__common_*`) temps;
//! * every `GROUP BY` expression is a bare anchor column;
//! * every aggregate is a non-distinct `MIN`/`MAX` whose argument references
//!   only propagation/invariant columns — never the anchor, so a
//!   contribution is fully determined by rows that were once in a delta;
//! * output column `j` is either the bare anchor column `j` (the loop key
//!   must be one of these) or `LEAST(...)`/`GREATEST(...)` containing the
//!   bare anchor column `j` (the running accumulator), where every other
//!   argument is the anchor column `j` itself, a matching-direction
//!   aggregate (`MIN` inside `LEAST`, `MAX` inside `GREATEST`), or
//!   `COALESCE(aggregate, anchor column j)`. A *different* anchor column
//!   in the fold would make the fold change the row's value even with no
//!   aggregate contribution — an update semi-naive would skip, because
//!   rows without contributions never re-run the fold.
//!
//! The accumulator shape is what makes the rewrite *exact*, not just
//! convergence-preserving: by induction over iterations, every value a
//! propagation row ever takes enters the delta when it is created (iteration
//! one seeds the delta with the whole table), its contribution folds into
//! the accumulator the following round, and the accumulator is monotone —
//! so dropping a contribution from an *unchanged* row is harmless, its value
//! was already folded in. Raw aggregate outputs (e.g. the paper-literal SSSP
//! `COALESCE(MIN(..), 9999999)` scratch column) do **not** satisfy this —
//! the minimum over changed rows differs from the minimum over all rows —
//! which is why such bodies (and non-monotone aggregates like PageRank's
//! `SUM`) deliberately take the full-recompute path.
//!
//! # The rewrite
//!
//! For an eligible loop the pass (1) replaces the propagation scan with a
//! scan of `__delta_<cte>`, (2) hoists the invariant side into a
//! `__common_sn_*` materialization before the loop so the executor's
//! join-state cache keeps its hash build across iterations (the delta side
//! is re-probed each round), (3) reorders the joins delta-first so
//! per-iteration join work is proportional to the delta, restoring the
//! original column order with a projection, and (4) forces the merge path
//! with `delta_out` set, so the merge refills the delta with exactly the
//! changed rows — which also makes `UNTIL DELTA` termination `O(delta)`
//! instead of a full-table diff.
//!
//! ```
//! use spinner_parser::parse_sql;
//! use spinner_plan::builder::SchemaProvider;
//! use spinner_plan::{plan_statement, PlannedStatement};
//! use spinner_common::{DataType, EngineConfig, Field, Schema, SchemaRef};
//! use std::sync::Arc;
//!
//! struct Edges;
//! impl SchemaProvider for Edges {
//!     fn table_schema(&self, name: &str) -> Option<SchemaRef> {
//!         (name == "edges").then(|| {
//!             Arc::new(Schema::new(vec![
//!                 Field::new("src", DataType::Int),
//!                 Field::new("dst", DataType::Int),
//!             ]))
//!         })
//!     }
//!     fn table_primary_key(&self, _name: &str) -> Option<usize> { None }
//! }
//!
//! // Connected components by min-label propagation: an accumulator body.
//! let sql = "WITH ITERATIVE cc (node, label) AS ( \
//!              SELECT src, src FROM edges \
//!            ITERATE SELECT cc.node, LEAST(cc.label, COALESCE(MIN(nbr.label), cc.label)) \
//!              FROM cc LEFT JOIN edges AS e ON cc.node = e.dst \
//!                      LEFT JOIN cc AS nbr ON nbr.node = e.src \
//!              GROUP BY cc.node, cc.label \
//!            UNTIL DELTA < 1 ) \
//!            SELECT node, label FROM cc";
//! let config = EngineConfig::default();
//! let stmt = parse_sql(sql).unwrap();
//! let planned = plan_statement(&stmt, &Edges, &config).unwrap();
//! let optimized = spinner_optimizer::optimize_statement(planned, &config).unwrap();
//! let PlannedStatement::Query(q) = optimized else { unreachable!() };
//! let explain = q.explain();
//! // The loop body now probes the delta table against a hoisted,
//! // cache-friendly copy of the invariant side.
//! assert!(explain.contains("TempScan: __delta___cte_cc_1"));
//! assert!(explain.contains("Materialize __common_sn_1"));
//! ```

use std::sync::Arc;

use spinner_common::{Result, Schema};
use spinner_plan::expr::{AggExpr, AggFunc, ScalarFn};
use spinner_plan::{JoinType, LogicalPlan, LoopKind, LoopStep, PlanExpr, Step};

/// Rewrite every delta-eligible iterative loop in the step program to
/// semi-naive form. Ineligible loops are returned untouched (full
/// recompute); recursive (`FixedPoint`) loops are already delta-driven by
/// construction and are left alone.
pub fn apply(steps: Vec<Step>) -> Result<Vec<Step>> {
    let mut counter = 0usize;
    apply_steps(steps, &mut counter)
}

fn apply_steps(steps: Vec<Step>, counter: &mut usize) -> Result<Vec<Step>> {
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            Step::Loop(mut l) => {
                // Nested loops first: their hoists land inside this body.
                l.body = apply_steps(std::mem::take(&mut l.body), counter)?;
                let mut hoists = Vec::new();
                match try_rewrite_loop(&l, &mut hoists, counter) {
                    Some(rewritten) => {
                        out.extend(hoists);
                        out.push(Step::Loop(rewritten));
                    }
                    None => out.push(Step::Loop(l)),
                }
            }
            other => out.push(other),
        }
    }
    Ok(out)
}

/// Attempt the semi-naive rewrite of one iterative loop. `None` means the
/// body is not delta-eligible and the loop keeps full-recompute semantics.
fn try_rewrite_loop(l: &LoopStep, hoists: &mut Vec<Step>, counter: &mut usize) -> Option<LoopStep> {
    let LoopKind::Iterative { working, merge, .. } = &l.kind else {
        return None;
    };
    let work_idx = l
        .body
        .iter()
        .position(|s| matches!(s, Step::Materialize { name, .. } if name == working))?;
    let Step::Materialize { plan, .. } = &l.body[work_idx] else {
        return None;
    };
    let shape = analyze(plan, &l.cte, l.key)?;
    let delta_name = format!("__delta_{}", l.cte);
    let new_plan = build_delta_plan(&shape, &delta_name, hoists, counter);

    let mut body = l.body.clone();
    let Step::Materialize { plan, .. } = &mut body[work_idx] else {
        unreachable!()
    };
    *plan = new_plan;

    if *merge {
        // Existing merge step just gains the delta output.
        let merge_step = body.iter_mut().find_map(|s| match s {
            Step::Merge { cte, delta_out, .. } if *cte == l.cte => Some(delta_out),
            _ => None,
        })?;
        *merge_step = Some(delta_name.clone());
    } else {
        // Rename fast path: replace the trailing rename with a merge that
        // both folds new rows into the table and captures the delta.
        let rename_idx = l.body.iter().position(
            |s| matches!(s, Step::Rename { from, to } if from == working && *to == l.cte),
        )?;
        let merged = format!("__sn_merge_{}", l.cte);
        body.splice(
            rename_idx..rename_idx + 1,
            [
                Step::Merge {
                    cte: l.cte.clone(),
                    working: working.clone(),
                    merged: merged.clone(),
                    key: l.key,
                    cte_display_name: l.cte_display_name.clone(),
                    delta_out: Some(delta_name.clone()),
                },
                Step::Rename {
                    from: merged,
                    to: l.cte.clone(),
                },
            ],
        );
    }

    Some(LoopStep {
        cte: l.cte.clone(),
        cte_display_name: l.cte_display_name.clone(),
        kind: LoopKind::Iterative {
            working: working.clone(),
            merge: true,
            delta: Some(delta_name),
        },
        body,
        termination: l.termination.clone(),
        key: l.key,
        schema: Arc::clone(&l.schema),
    })
}

/// The recognized accumulator body, borrowed from the original plan.
struct Shape<'a> {
    /// Projection on top of the aggregate.
    proj_exprs: &'a [PlanExpr],
    proj_schema: spinner_common::SchemaRef,
    /// The aggregate node.
    group: &'a [PlanExpr],
    aggs: &'a [AggExpr],
    agg_schema: spinner_common::SchemaRef,
    /// Filters between aggregate and upper join (outermost first).
    mid_filters: Vec<&'a PlanExpr>,
    /// Upper join (anchor⨝invariant) ⨝ propagation.
    j2_on: &'a [(PlanExpr, PlanExpr)],
    j2_schema: spinner_common::SchemaRef,
    /// Lower join anchor ⨝ invariant.
    j1_on: &'a [(PlanExpr, PlanExpr)],
    /// Anchor scan of the CTE table.
    anchor_schema: spinner_common::SchemaRef,
    anchor_name: &'a str,
    /// Loop-invariant join input.
    inv: &'a LogicalPlan,
    /// Filters wrapped around the propagation scan (outermost first).
    prop_filters: Vec<&'a PlanExpr>,
    prop_schema: spinner_common::SchemaRef,
}

/// Bare-column index, or `None` for anything more complex.
fn bare(e: &PlanExpr) -> Option<usize> {
    match e {
        PlanExpr::Column(c) => Some(c.index),
        _ => None,
    }
}

/// Check the working-table plan against the delta-eligibility rules in the
/// module docs; return its decomposition when they all hold.
fn analyze<'a>(plan: &'a LogicalPlan, cte: &str, key: usize) -> Option<Shape<'a>> {
    // The CTE is read exactly twice: anchor + propagation.
    if plan.count_temp_refs(cte) != 2 {
        return None;
    }
    let LogicalPlan::Projection {
        input,
        exprs: proj_exprs,
        schema: proj_schema,
    } = plan
    else {
        return None;
    };
    let LogicalPlan::Aggregate {
        input: agg_input,
        group,
        aggs,
        schema: agg_schema,
    } = &**input
    else {
        return None;
    };
    let mut below: &LogicalPlan = agg_input;
    let mut mid_filters = Vec::new();
    while let LogicalPlan::Filter { input, predicate } = below {
        mid_filters.push(predicate);
        below = input;
    }
    let LogicalPlan::Join {
        left: j2_left,
        right: j2_right,
        join_type: j2_type,
        on: j2_on,
        filter: None,
        schema: j2_schema,
    } = below
    else {
        return None;
    };
    let LogicalPlan::Join {
        left: anchor,
        right: inv,
        join_type: j1_type,
        on: j1_on,
        filter: None,
        ..
    } = &**j2_left
    else {
        return None;
    };
    if !matches!(j2_type, JoinType::Inner | JoinType::Left)
        || !matches!(j1_type, JoinType::Inner | JoinType::Left)
        || j1_on.is_empty()
        || j2_on.is_empty()
    {
        return None;
    }
    let LogicalPlan::TempScan {
        name: anchor_name,
        schema: anchor_schema,
    } = &**anchor
    else {
        return None;
    };
    if !anchor_name.eq_ignore_ascii_case(cte) {
        return None;
    }
    // Propagation side: the CTE scan, possibly under pushed-down filters.
    let mut prop: &LogicalPlan = j2_right;
    let mut prop_filters = Vec::new();
    while let LogicalPlan::Filter { input, predicate } = prop {
        prop_filters.push(predicate);
        prop = input;
    }
    let LogicalPlan::TempScan {
        name: prop_name,
        schema: prop_schema,
    } = prop
    else {
        return None;
    };
    if !prop_name.eq_ignore_ascii_case(cte) {
        return None;
    }
    // The invariant side must be loop-constant: no CTE reads, and only
    // base tables or pre-loop (`__common_*`) materializations — any other
    // temp could be redefined inside the body.
    if inv.references_temp(cte) || !invariant_inputs_ok(inv) {
        return None;
    }

    let a = anchor_schema.len();
    let e = inv.schema().len();
    let p = prop_schema.len();

    // Lower join keys: anchor column = invariant column.
    for (le, re) in j1_on.iter() {
        if bare(le).is_none_or(|i| i >= a) || bare(re).is_none_or(|i| i >= e) {
            return None;
        }
    }
    // Upper join keys: invariant column = propagation column. An anchor
    // column here would make the delta-first reorder change semantics.
    for (le, re) in j2_on.iter() {
        if bare(le).is_none_or(|i| i < a || i >= a + e) || bare(re).is_none_or(|i| i >= p) {
            return None;
        }
    }
    // Filters above the joins may only look at propagation/invariant
    // columns: anchor-dependent predicates would drop groups differently
    // once unchanged propagation rows stop arriving.
    if mid_filters
        .iter()
        .any(|f| f.referenced_columns().iter().any(|&c| c < a))
    {
        return None;
    }
    // Group keys are bare anchor columns; aggregates are monotone folds
    // over non-anchor columns.
    if group.iter().any(|g| bare(g).is_none_or(|i| i >= a)) {
        return None;
    }
    for agg in aggs.iter() {
        if agg.distinct || !matches!(agg.func, AggFunc::Min | AggFunc::Max) {
            return None;
        }
        let Some(arg) = &agg.arg else { return None };
        if arg.referenced_columns().iter().any(|&c| c < a) {
            return None;
        }
    }
    // Output columns: identity or accumulator, per the module docs.
    if proj_exprs.len() != a {
        return None;
    }
    for (j, out) in proj_exprs.iter().enumerate() {
        if is_old_term(out, j, group) {
            continue; // unchanged column
        }
        if j == key {
            return None; // the merge key must never be re-derived
        }
        if !is_accumulator(out, j, group, aggs) {
            return None;
        }
    }
    Some(Shape {
        proj_exprs,
        proj_schema: Arc::clone(proj_schema),
        group,
        aggs,
        agg_schema: Arc::clone(agg_schema),
        mid_filters,
        j2_on,
        j2_schema: Arc::clone(j2_schema),
        j1_on,
        anchor_schema: Arc::clone(anchor_schema),
        anchor_name,
        inv,
        prop_filters,
        prop_schema: Arc::clone(prop_schema),
    })
}

/// Only base tables and pre-loop common materializations below here.
fn invariant_inputs_ok(plan: &LogicalPlan) -> bool {
    if let LogicalPlan::TempScan { name, .. } = plan {
        if !name.starts_with("__common_") {
            return false;
        }
    }
    plan.children().iter().all(|c| invariant_inputs_ok(c))
}

/// Is `e` a bare group column that carries anchor column `j` through?
fn is_old_term(e: &PlanExpr, j: usize, group: &[PlanExpr]) -> bool {
    matches!(bare(e), Some(gi) if gi < group.len() && bare(&group[gi]) == Some(j))
}

/// Is `e` an aggregate output column whose function matches the fold
/// direction?
fn agg_term(e: &PlanExpr, group: &[PlanExpr], aggs: &[AggExpr], want: AggFunc) -> bool {
    matches!(
        bare(e),
        Some(i) if i >= group.len() && aggs.get(i - group.len()).is_some_and(|a| a.func == want)
    )
}

/// `LEAST(old_j, ...)`/`GREATEST(old_j, ...)` folding matching-direction
/// aggregates (optionally `COALESCE`d back to `old_j`) into the old value.
fn is_accumulator(out: &PlanExpr, j: usize, group: &[PlanExpr], aggs: &[AggExpr]) -> bool {
    let PlanExpr::Scalar { func, args } = out else {
        return false;
    };
    let want = match func {
        ScalarFn::Least => AggFunc::Min,
        ScalarFn::Greatest => AggFunc::Max,
        _ => return false,
    };
    // The bare old value must be an argument: it makes the column monotone
    // (a COALESCE fallback alone fires only when the aggregate is NULL).
    if !args.iter().any(|arg| is_old_term(arg, j, group)) {
        return false;
    }
    args.iter().all(|arg| {
        // Only the accumulator column itself may appear bare: any OTHER
        // anchor column would let the fold change the value on an empty
        // aggregate (LEAST(old_j, other) != old_j), an update the
        // delta-driven body never re-runs for contribution-less rows.
        if is_old_term(arg, j, group) || agg_term(arg, group, aggs, want) {
            return true;
        }
        // COALESCE(agg, old_j): when the delta brings no contribution the
        // fallback must reproduce the old value, or the fold could dip
        // below what full recompute produces.
        if let PlanExpr::Scalar {
            func: ScalarFn::Coalesce,
            args: cargs,
        } = arg
        {
            return cargs.len() >= 2
                && agg_term(&cargs[0], group, aggs, want)
                && cargs[1..].iter().all(|c| is_old_term(c, j, group));
        }
        false
    })
}

/// Build the delta-first working plan for an eligible body. Appends the
/// invariant-side hoist to `hoists` when one is needed.
fn build_delta_plan(
    shape: &Shape<'_>,
    delta_name: &str,
    hoists: &mut Vec<Step>,
    counter: &mut usize,
) -> LogicalPlan {
    let a = shape.anchor_schema.len();
    let e = shape.inv.schema().len();
    let p = shape.prop_schema.len();

    // 1. The invariant side becomes a pre-loop `__common_sn_*` temp so the
    //    executor's join-state cache reuses its hash build every iteration.
    //    (If common-result extraction already hoisted it, reuse that temp.)
    let inv_scan = match shape.inv {
        scan @ LogicalPlan::TempScan { name, .. } if name.starts_with("__common_") => scan.clone(),
        other => {
            *counter += 1;
            let name = format!("__common_sn_{counter}");
            let schema = other.schema();
            // Pre-distribute on the probe key when there is a single one,
            // so the build-side exchange is a no-op.
            let distribute_by = if shape.j2_on.len() == 1 {
                bare(&shape.j2_on[0].0).map(|i| i - a)
            } else {
                None
            };
            hoists.push(Step::Materialize {
                name: name.clone(),
                plan: other.clone(),
                distribute_by,
            });
            LogicalPlan::TempScan { name, schema }
        }
    };

    // 2. The propagation side scans the delta (same schema as the CTE),
    //    keeping any pushed-down filters.
    let mut prop_side = LogicalPlan::TempScan {
        name: delta_name.to_string(),
        schema: Arc::clone(&shape.prop_schema),
    };
    for pred in shape.prop_filters.iter().rev() {
        prop_side = LogicalPlan::Filter {
            input: Box::new(prop_side),
            predicate: (*pred).clone(),
        };
    }

    // 3. Delta-first join order: probe the (small) delta into the cached
    //    invariant build, then probe the anchor into that (small) result.
    //    J1' = delta ⨝ invariant, on the original upper-join keys.
    let inv_schema = shape.inv.schema();
    let j1_fields: Vec<_> = shape
        .prop_schema
        .fields()
        .iter()
        .chain(inv_schema.fields().iter())
        .cloned()
        .collect();
    let j1_on: Vec<_> = shape
        .j2_on
        .iter()
        .map(|(le, re)| {
            // Left (probe) side is now the delta; right is invariant-local.
            let inv_col = bare(le).expect("checked bare") - a;
            (
                (*re).clone(),
                PlanExpr::column(inv_col, inv_schema.fields()[inv_col].name.clone()),
            )
        })
        .collect();
    let j1 = LogicalPlan::Join {
        left: Box::new(prop_side),
        right: Box::new(inv_scan),
        join_type: JoinType::Inner,
        on: j1_on,
        filter: None,
        schema: Arc::new(Schema::new(j1_fields)),
    };

    // J2' = anchor ⨝ (delta ⨝ invariant), on the original lower-join keys.
    // Always INNER, even when the source join was LEFT: an anchor row with
    // no delta contribution would only produce out = fold-to-old (the
    // accumulator's empty-aggregate branch), and the merge step already
    // keeps the old row for every key absent from the body's output. Going
    // INNER is what makes late iterations O(delta): the aggregate, the
    // exchange above it, and the merge comparison all shrink to the groups
    // the delta actually touched instead of re-emitting every anchor row.
    let j2_fields: Vec<_> = shape
        .anchor_schema
        .fields()
        .iter()
        .chain(j1.schema().fields().iter())
        .cloned()
        .collect();
    let j2_on: Vec<_> = shape
        .j1_on
        .iter()
        .map(|(le, re)| {
            let inv_col = bare(re).expect("checked bare");
            (
                (*le).clone(),
                PlanExpr::column(p + inv_col, inv_schema.fields()[inv_col].name.clone()),
            )
        })
        .collect();
    let j2 = LogicalPlan::Join {
        left: Box::new(LogicalPlan::TempScan {
            name: shape.anchor_name.to_string(),
            schema: Arc::clone(&shape.anchor_schema),
        }),
        right: Box::new(j1),
        join_type: JoinType::Inner,
        on: j2_on,
        filter: None,
        schema: Arc::new(Schema::new(j2_fields)),
    };

    // 4. Restore the original [anchor, invariant, propagation] column order
    //    so the filters/aggregate/projection above stay untouched.
    let combined = &shape.j2_schema;
    let mut restore = Vec::with_capacity(a + e + p);
    for i in 0..a {
        restore.push(PlanExpr::column(i, combined.fields()[i].name.clone()));
    }
    for k in 0..e {
        restore.push(PlanExpr::column(
            a + p + k,
            combined.fields()[a + k].name.clone(),
        ));
    }
    for k in 0..p {
        restore.push(PlanExpr::column(
            a + k,
            combined.fields()[a + e + k].name.clone(),
        ));
    }
    let mut rebuilt = LogicalPlan::Projection {
        input: Box::new(j2),
        exprs: restore,
        schema: Arc::clone(combined),
    };
    for pred in shape.mid_filters.iter().rev() {
        rebuilt = LogicalPlan::Filter {
            input: Box::new(rebuilt),
            predicate: (*pred).clone(),
        };
    }
    let rebuilt = LogicalPlan::Aggregate {
        input: Box::new(rebuilt),
        group: shape.group.to_vec(),
        aggs: shape.aggs.to_vec(),
        schema: Arc::clone(&shape.agg_schema),
    };
    LogicalPlan::Projection {
        input: Box::new(rebuilt),
        exprs: shape.proj_exprs.to_vec(),
        schema: Arc::clone(&shape.proj_schema),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, EngineConfig, Field, SchemaRef};
    use spinner_parser::parse_sql;
    use spinner_plan::builder::SchemaProvider;
    use spinner_plan::{plan_statement, PlannedStatement, QueryPlan};

    struct Graph;

    impl SchemaProvider for Graph {
        fn table_schema(&self, name: &str) -> Option<SchemaRef> {
            match name {
                "edges" => Some(Arc::new(Schema::new(vec![
                    Field::new("src", DataType::Int),
                    Field::new("dst", DataType::Int),
                    Field::new("weight", DataType::Float),
                ]))),
                _ => None,
            }
        }
        fn table_primary_key(&self, _name: &str) -> Option<usize> {
            None
        }
    }

    fn optimized(sql: &str) -> QueryPlan {
        let config = EngineConfig::default();
        let stmt = parse_sql(sql).unwrap();
        let planned = plan_statement(&stmt, &Graph, &config).unwrap();
        let PlannedStatement::Query(q) = crate::optimize_statement(planned, &config).unwrap()
        else {
            panic!("not a query")
        };
        q
    }

    const CC: &str = "WITH ITERATIVE cc (node, label) AS ( \
            SELECT src, src FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
          ITERATE SELECT cc.node, LEAST(cc.label, COALESCE(MIN(nbr.label), cc.label)) \
             FROM cc LEFT JOIN edges AS e ON cc.node = e.dst \
                     LEFT JOIN cc AS nbr ON nbr.node = e.src \
             GROUP BY cc.node, cc.label \
          UNTIL DELTA < 1 ) \
         SELECT node, label FROM cc ORDER BY node";

    const SSSP_ACC: &str = "WITH ITERATIVE sssp (node, distance) AS ( \
            SELECT src, CASE WHEN src = 1 THEN 0 ELSE 9999999 END \
            FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
          ITERATE SELECT sssp.node, \
                    LEAST(sssp.distance, COALESCE(MIN(inc.distance + e.weight), sssp.distance)) \
             FROM sssp JOIN edges AS e ON sssp.node = e.dst \
                       JOIN sssp AS inc ON inc.node = e.src \
             WHERE inc.distance != 9999999 \
             GROUP BY sssp.node, sssp.distance \
          UNTIL DELTA < 1 ) \
         SELECT node, distance FROM sssp ORDER BY node";

    fn loop_step(q: &QueryPlan) -> &LoopStep {
        q.steps
            .iter()
            .find_map(|s| match s {
                Step::Loop(l) => Some(l),
                _ => None,
            })
            .expect("plan has a loop")
    }

    fn delta_of(l: &LoopStep) -> Option<&str> {
        match &l.kind {
            LoopKind::Iterative { delta, .. } => delta.as_deref(),
            _ => None,
        }
    }

    #[test]
    fn cc_rename_loop_becomes_semi_naive_merge_loop() {
        let q = optimized(CC);
        let l = loop_step(&q);
        assert_eq!(delta_of(l), Some("__delta___cte_cc_1"));
        let LoopKind::Iterative { merge, .. } = &l.kind else {
            panic!()
        };
        assert!(*merge, "rename path must be forced onto the merge path");
        // The merge now captures the changed rows as the next delta.
        assert!(l.body.iter().any(|s| matches!(
            s,
            Step::Merge { delta_out: Some(d), .. } if d == "__delta___cte_cc_1"
        )));
        let text = q.explain();
        assert!(text.contains("TempScan: __delta___cte_cc_1"), "{text}");
        assert!(text.contains("Materialize __common_sn_1"), "{text}");
    }

    #[test]
    fn accumulator_sssp_is_semi_naive_with_filtered_delta() {
        let q = optimized(SSSP_ACC);
        let l = loop_step(&q);
        assert_eq!(delta_of(l), Some("__delta___cte_sssp_1"));
        // The pushed-down propagation filter survives on the delta scan.
        let text = q.explain();
        let delta_scan = text
            .find("TempScan: __delta___cte_sssp_1")
            .expect("delta scan in explain");
        let filter = text.find("Filter: (inc.distance#1 != 9999999)").unwrap();
        assert!(filter < delta_scan, "filter wraps the delta scan:\n{text}");
    }

    #[test]
    fn delta_plan_keeps_original_column_order() {
        // The restore projection must map [anchor, prop, inv] back to
        // [anchor, inv, prop]; a wrong mapping would feed the aggregate
        // edge weights where it expects labels.
        let q = optimized(CC);
        let l = loop_step(&q);
        let LoopKind::Iterative { working, .. } = &l.kind else {
            panic!()
        };
        let plan = l
            .body
            .iter()
            .find_map(|s| match s {
                Step::Materialize { name, plan, .. } if name == working => Some(plan),
                _ => None,
            })
            .unwrap();
        // Aggregate's input projection: anchor cols first, then edges, then
        // the delta columns mapped from positions [a, a+p).
        let mut restores = Vec::new();
        fn find_projections<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a Vec<PlanExpr>>) {
            if let LogicalPlan::Projection { exprs, .. } = p {
                out.push(exprs);
            }
            for c in p.children() {
                find_projections(c, out);
            }
        }
        find_projections(plan, &mut restores);
        let restore = restores
            .iter()
            .find(|exprs| exprs.len() == 7)
            .expect("restore projection over the combined row");
        let indices: Vec<_> = restore.iter().map(|e| bare(e).unwrap()).collect();
        assert_eq!(indices, vec![0, 1, 4, 5, 6, 2, 3]);
    }

    #[test]
    fn paper_sssp_scratch_column_falls_back_to_full_recompute() {
        // Fig. 7's third column is a raw COALESCE(MIN(..), 9999999) — the
        // minimum over delta rows differs from the minimum over all rows,
        // so the body must not be rewritten.
        let q = optimized(
            "WITH ITERATIVE sssp (node, distance, delta) AS ( \
                SELECT src, 9999999, CASE WHEN src = 1 THEN 0 ELSE 9999999 END \
                FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
              ITERATE SELECT sssp.node, LEAST(sssp.distance, sssp.delta), \
                        COALESCE(MIN(inc.delta + e.weight), 9999999) \
                 FROM sssp LEFT JOIN edges AS e ON sssp.node = e.dst \
                           LEFT JOIN sssp AS inc ON inc.node = e.src \
                 WHERE inc.delta != 9999999 \
                 GROUP BY sssp.node, LEAST(sssp.distance, sssp.delta) \
              UNTIL 10 ITERATIONS ) \
             SELECT node, distance FROM sssp ORDER BY node",
        );
        assert_eq!(delta_of(loop_step(&q)), None);
    }

    #[test]
    fn sum_aggregate_falls_back_to_full_recompute() {
        // PageRank's SUM is not a monotone fold: dropping unchanged
        // contributors changes the total, so no delta rewrite.
        let q = optimized(
            "WITH ITERATIVE pr (node, rank) AS ( \
                SELECT src, 0.15 FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
              ITERATE SELECT pr.node, LEAST(pr.rank, COALESCE(SUM(inc.rank), pr.rank)) \
                 FROM pr LEFT JOIN edges AS e ON pr.node = e.dst \
                         LEFT JOIN pr AS inc ON inc.node = e.src \
                 GROUP BY pr.node, pr.rank \
              UNTIL 5 ITERATIONS ) \
             SELECT node, rank FROM pr ORDER BY node",
        );
        assert_eq!(delta_of(loop_step(&q)), None);
    }

    #[test]
    fn single_cte_reference_falls_back() {
        // Forecast-Friends style: no propagation join at all.
        let q = optimized(
            "WITH ITERATIVE f (node, v) AS ( \
                SELECT src, CAST(count(dst) AS FLOAT) FROM edges GROUP BY src \
              ITERATE SELECT node, v * 2 FROM f \
              UNTIL 3 ITERATIONS ) \
             SELECT node, v FROM f ORDER BY node",
        );
        assert_eq!(delta_of(loop_step(&q)), None);
    }

    #[test]
    fn disabling_the_config_flag_keeps_full_recompute() {
        let config = EngineConfig::default().with_semi_naive(false);
        let stmt = parse_sql(CC).unwrap();
        let planned = plan_statement(&stmt, &Graph, &config).unwrap();
        let PlannedStatement::Query(q) = crate::optimize_statement(planned, &config).unwrap()
        else {
            panic!()
        };
        assert_eq!(delta_of(loop_step(&q)), None);
        assert!(!q.explain().contains("__delta_"));
    }

    #[test]
    fn rederived_key_column_falls_back() {
        // The merge key itself folded through LEAST would re-key rows.
        let q = optimized(
            "WITH ITERATIVE cc (node, label) AS ( \
                SELECT src, src FROM (SELECT src FROM edges UNION SELECT dst FROM edges) \
              ITERATE SELECT LEAST(cc.node, COALESCE(MIN(nbr.node), cc.node)), cc.label \
                 FROM cc LEFT JOIN edges AS e ON cc.node = e.dst \
                         LEFT JOIN cc AS nbr ON nbr.node = e.src \
                 GROUP BY cc.node, cc.label \
              UNTIL 3 ITERATIONS ) \
             SELECT node, label FROM cc ORDER BY node",
        );
        assert_eq!(delta_of(loop_step(&q)), None);
    }
}
