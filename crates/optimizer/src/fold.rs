//! Constant folding and trivial predicate simplification.
//!
//! Column-free subexpressions are evaluated at plan time; expressions that
//! would error at run time (division by zero in dead code, overflow) are
//! left untouched so the error surfaces only if the row is actually
//! evaluated. `Filter(TRUE)` disappears; `x AND TRUE` simplifies.

use spinner_common::{Result, Value};
use spinner_plan::expr::BinaryOp;
use spinner_plan::{LogicalPlan, PlanExpr};

/// Fold constants in every expression of the tree, bottom-up.
pub fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(fold_constants(*input)?),
            exprs: exprs.into_iter().map(fold_expr).collect(),
            schema,
        },
        LogicalPlan::Filter { input, predicate } => {
            let input = fold_constants(*input)?;
            let predicate = fold_expr(predicate);
            if predicate == PlanExpr::Literal(Value::Bool(true)) {
                input
            } else {
                LogicalPlan::Filter {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(fold_constants(*left)?),
            right: Box::new(fold_constants(*right)?),
            join_type,
            on: on
                .into_iter()
                .map(|(l, r)| (fold_expr(l), fold_expr(r)))
                .collect(),
            filter: filter.map(fold_expr),
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants(*input)?),
            group: group.into_iter().map(fold_expr).collect(),
            aggs,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(fold_constants(*input)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(fold_constants(*input)?),
            n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(fold_constants(*left)?),
            right: Box::new(fold_constants(*right)?),
            schema,
        },
        leaf @ (LogicalPlan::TableScan { .. }
        | LogicalPlan::TempScan { .. }
        | LogicalPlan::Values { .. }) => leaf,
    })
}

/// Fold one expression. Never errors: runtime-erroring constants stay
/// unfolded.
pub fn fold_expr(expr: PlanExpr) -> PlanExpr {
    // First fold children.
    let expr = match expr {
        PlanExpr::Binary { left, op, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            // Boolean identity simplifications (sound under 3VL for AND/OR
            // with TRUE/FALSE on one side).
            match (op, &left, &right) {
                (BinaryOp::And, PlanExpr::Literal(Value::Bool(true)), r) => return r.clone(),
                (BinaryOp::And, l, PlanExpr::Literal(Value::Bool(true))) => return l.clone(),
                (BinaryOp::And, PlanExpr::Literal(Value::Bool(false)), _)
                | (BinaryOp::And, _, PlanExpr::Literal(Value::Bool(false))) => {
                    return PlanExpr::Literal(Value::Bool(false))
                }
                (BinaryOp::Or, PlanExpr::Literal(Value::Bool(false)), r) => return r.clone(),
                (BinaryOp::Or, l, PlanExpr::Literal(Value::Bool(false))) => return l.clone(),
                (BinaryOp::Or, PlanExpr::Literal(Value::Bool(true)), _)
                | (BinaryOp::Or, _, PlanExpr::Literal(Value::Bool(true))) => {
                    return PlanExpr::Literal(Value::Bool(true))
                }
                _ => {}
            }
            PlanExpr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            }
        }
        PlanExpr::Unary { op, expr } => PlanExpr::Unary {
            op,
            expr: Box::new(fold_expr(*expr)),
        },
        PlanExpr::Scalar { func, args } => PlanExpr::Scalar {
            func,
            args: args.into_iter().map(fold_expr).collect(),
        },
        PlanExpr::Case {
            branches,
            else_expr,
        } => PlanExpr::Case {
            branches: branches
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(fold_expr(*e))),
        },
        PlanExpr::Cast { expr, to } => PlanExpr::Cast {
            expr: Box::new(fold_expr(*expr)),
            to,
        },
        PlanExpr::IsNull { expr, negated } => PlanExpr::IsNull {
            expr: Box::new(fold_expr(*expr)),
            negated,
        },
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => PlanExpr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        leaf @ (PlanExpr::Column(_) | PlanExpr::Literal(_)) => leaf,
    };
    // Then fold this node if it is column-free and evaluates cleanly.
    if !matches!(expr, PlanExpr::Literal(_)) && expr.is_constant() {
        if let Ok(v) = expr.evaluate(&[]) {
            return PlanExpr::Literal(v);
        }
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_arithmetic() {
        let e = PlanExpr::literal(2i64).binary(BinaryOp::Plus, PlanExpr::literal(3i64));
        assert_eq!(fold_expr(e), PlanExpr::Literal(Value::Int(5)));
    }

    #[test]
    fn leaves_erroring_constants_alone() {
        let e = PlanExpr::literal(1i64).binary(BinaryOp::Divide, PlanExpr::literal(0i64));
        let folded = fold_expr(e.clone());
        assert_eq!(folded, e);
    }

    #[test]
    fn simplifies_boolean_identities() {
        let x = PlanExpr::column(0, "x");
        let e = PlanExpr::literal(true).binary(BinaryOp::And, x.clone());
        assert_eq!(fold_expr(e), x);
        let e = PlanExpr::column(0, "x").binary(BinaryOp::Or, PlanExpr::literal(true));
        assert_eq!(fold_expr(e), PlanExpr::Literal(Value::Bool(true)));
    }

    #[test]
    fn folds_nested_partially() {
        // (1 + 2) < x  =>  3 < x
        let e = PlanExpr::literal(1i64)
            .binary(BinaryOp::Plus, PlanExpr::literal(2i64))
            .binary(BinaryOp::Lt, PlanExpr::column(0, "x"));
        let folded = fold_expr(e);
        let PlanExpr::Binary { left, .. } = &folded else {
            panic!()
        };
        assert_eq!(**left, PlanExpr::Literal(Value::Int(3)));
    }

    #[test]
    fn filter_true_removed() {
        let scan = LogicalPlan::TempScan {
            name: "t".into(),
            schema: std::sync::Arc::new(spinner_common::Schema::empty()),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(scan.clone()),
            predicate: PlanExpr::literal(1i64).binary(BinaryOp::Eq, PlanExpr::literal(1i64)),
        };
        assert_eq!(fold_constants(plan).unwrap(), scan);
    }
}
