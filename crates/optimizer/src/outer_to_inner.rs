//! Outer→inner join conversion.
//!
//! A LEFT (or RIGHT) outer join degenerates to an inner join when a
//! *null-rejecting* predicate on the padded side sits above it — NULL-padded
//! rows cannot satisfy a strict comparison, so the padding is dead weight.
//! The paper relies on this (§V): the PR-VS query's inner join with
//! `vertexStatus ON vs.node = e.dst` makes the earlier `LEFT JOIN edges`
//! effectively inner, which is what lets the common-result rewrite regroup
//! the loop-invariant `edges ⨝ vertexStatus` subtree (Fig. 5).
//!
//! Two trigger shapes are handled:
//! * `Filter(p) over LeftJoin(A, B)` with `p` null-rejecting on B,
//! * an upper join whose equi-keys or residual are null-rejecting on the
//!   padded side of a lower outer join.

use spinner_common::Result;
use spinner_plan::expr::BinaryOp;
use spinner_plan::{JoinType, LogicalPlan, PlanExpr};

use crate::split_conjuncts;

/// Apply outer→inner conversion everywhere in the tree (one pass).
pub fn convert_outer_joins(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = convert_outer_joins(*input)?;
            let input = apply_null_rejection(input, &predicate, 0);
            LogicalPlan::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => {
            let mut left = convert_outer_joins(*left)?;
            let mut right = convert_outer_joins(*right)?;
            // The upper join's own condition can null-reject a lower outer
            // join's padded side. Keys are evaluated per side; the residual
            // spans the combined schema.
            let lwidth = left.schema().len();
            if join_type == JoinType::Inner {
                // An equi-key is inherently strict: a NULL key never
                // matches. Wrap each key in a synthetic comparison so the
                // strictness test sees a comparison shape.
                let as_strict = |k: &PlanExpr| {
                    k.clone().binary(
                        BinaryOp::Eq,
                        PlanExpr::Literal(spinner_common::Value::Int(0)),
                    )
                };
                for (lk, _) in &on {
                    let probe = as_strict(lk);
                    left = apply_null_rejection(left, &probe, 0);
                }
                for (_, rk) in &on {
                    let probe = as_strict(rk);
                    right = apply_null_rejection(right, &probe, 0);
                }
                if let Some(f) = &filter {
                    left = apply_null_rejection(left, f, 0);
                    right = apply_null_rejection(right, f, lwidth);
                }
            }
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                join_type,
                on,
                filter,
                schema,
            }
        }
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(convert_outer_joins(*input)?),
            exprs,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(convert_outer_joins(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(convert_outer_joins(*input)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(convert_outer_joins(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(convert_outer_joins(*input)?),
            n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(convert_outer_joins(*left)?),
            right: Box::new(convert_outer_joins(*right)?),
            schema,
        },
        leaf => leaf,
    })
}

/// If `plan` is an outer join whose padded side is null-rejected by
/// `predicate` (whose column indices are relative to `plan`'s schema
/// shifted by `offset`), convert it to inner.
fn apply_null_rejection(plan: LogicalPlan, predicate: &PlanExpr, offset: usize) -> LogicalPlan {
    let LogicalPlan::Join {
        left,
        right,
        join_type,
        on,
        filter,
        schema,
    } = plan
    else {
        return plan;
    };
    let lwidth = left.schema().len();
    let width = schema.len();
    let rejects = |lo: usize, hi: usize| -> bool {
        let mut conjuncts = Vec::new();
        split_conjuncts(predicate, &mut conjuncts);
        conjuncts.iter().any(|c| {
            is_strict_comparison(c)
                && c.referenced_columns()
                    .iter()
                    .any(|&i| i >= offset + lo && i < offset + hi)
        })
    };
    let new_type = match join_type {
        JoinType::Left if rejects(lwidth, width) => JoinType::Inner,
        JoinType::Right if rejects(0, lwidth) => JoinType::Inner,
        JoinType::Full => {
            let left_rej = rejects(0, lwidth);
            let right_rej = rejects(lwidth, width);
            match (left_rej, right_rej) {
                (true, true) => JoinType::Inner,
                (true, false) => JoinType::Left,
                (false, true) => JoinType::Right,
                (false, false) => JoinType::Full,
            }
        }
        other => other,
    };
    LogicalPlan::Join {
        left,
        right,
        join_type: new_type,
        on,
        filter,
        schema,
    }
}

/// A conjunct is *strict* (null-rejecting on any column it references) when
/// it is a plain comparison over columns, literals and null-propagating
/// arithmetic — no COALESCE / CASE / IS NULL that could absorb a NULL into
/// TRUE.
pub fn is_strict_comparison(expr: &PlanExpr) -> bool {
    match expr {
        PlanExpr::Binary { left, op, right } => {
            matches!(
                op,
                BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Lt
                    | BinaryOp::LtEq
                    | BinaryOp::Gt
                    | BinaryOp::GtEq
            ) && null_propagating(left)
                && null_propagating(right)
        }
        PlanExpr::IsNull {
            negated: true,
            expr,
        } => null_propagating(expr),
        _ => false,
    }
}

/// Does `expr` yield NULL whenever any referenced column is NULL?
fn null_propagating(expr: &PlanExpr) -> bool {
    match expr {
        PlanExpr::Column(_) | PlanExpr::Literal(_) => true,
        PlanExpr::Binary { left, op, right } => {
            matches!(
                op,
                BinaryOp::Plus
                    | BinaryOp::Minus
                    | BinaryOp::Multiply
                    | BinaryOp::Divide
                    | BinaryOp::Modulo
            ) && null_propagating(left)
                && null_propagating(right)
        }
        PlanExpr::Unary { expr, .. } => null_propagating(expr),
        PlanExpr::Cast { expr, .. } => null_propagating(expr),
        // COALESCE, CASE, IS NULL etc. can turn NULL into non-NULL.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use spinner_plan::ScalarFn;
    use std::sync::Arc;

    fn scan(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::TempScan {
            name: name.into(),
            schema: Arc::new(Schema::new(
                cols.iter().map(|c| Field::new(*c, DataType::Int)).collect(),
            )),
        }
    }

    fn left_join(l: LogicalPlan, r: LogicalPlan) -> LogicalPlan {
        let schema = Arc::new(l.schema().join(&r.schema()));
        LogicalPlan::Join {
            left: Box::new(l),
            right: Box::new(r),
            join_type: JoinType::Left,
            on: vec![(PlanExpr::column(0, "a"), PlanExpr::column(0, "b"))],
            filter: None,
            schema,
        }
    }

    #[test]
    fn strict_filter_on_padded_side_converts() {
        let join = left_join(scan("l", &["a"]), scan("r", &["b"]));
        // b != 0 references the right (padded) side strictly
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: PlanExpr::column(1, "b").binary(BinaryOp::NotEq, PlanExpr::literal(0i64)),
        };
        let out = convert_outer_joins(plan).unwrap();
        let LogicalPlan::Filter { input, .. } = out else {
            panic!()
        };
        let LogicalPlan::Join { join_type, .. } = *input else {
            panic!()
        };
        assert_eq!(join_type, JoinType::Inner);
    }

    #[test]
    fn coalesce_absorbs_null_no_conversion() {
        let join = left_join(scan("l", &["a"]), scan("r", &["b"]));
        // COALESCE(b, 0) = 0 is satisfied by NULL-padded rows — not strict.
        let pred = PlanExpr::Scalar {
            func: ScalarFn::Coalesce,
            args: vec![PlanExpr::column(1, "b"), PlanExpr::literal(0i64)],
        }
        .binary(BinaryOp::Eq, PlanExpr::literal(0i64));
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: pred,
        };
        let out = convert_outer_joins(plan).unwrap();
        let LogicalPlan::Filter { input, .. } = out else {
            panic!()
        };
        let LogicalPlan::Join { join_type, .. } = *input else {
            panic!()
        };
        assert_eq!(join_type, JoinType::Left);
    }

    #[test]
    fn is_null_predicate_not_strict() {
        let join = left_join(scan("l", &["a"]), scan("r", &["b"]));
        let pred = PlanExpr::IsNull {
            expr: Box::new(PlanExpr::column(1, "b")),
            negated: false,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: pred,
        };
        let out = convert_outer_joins(plan).unwrap();
        let LogicalPlan::Filter { input, .. } = out else {
            panic!()
        };
        let LogicalPlan::Join { join_type, .. } = *input else {
            panic!()
        };
        assert_eq!(join_type, JoinType::Left);
    }

    #[test]
    fn upper_inner_join_key_converts_lower_outer() {
        // (l LEFT JOIN r) INNER JOIN s ON r.b = s.c  — the PR-VS shape.
        let lower = left_join(scan("l", &["a"]), scan("r", &["b"]));
        let s = scan("s", &["c"]);
        let schema = Arc::new(lower.schema().join(&s.schema()));
        let upper = LogicalPlan::Join {
            left: Box::new(lower),
            right: Box::new(s),
            join_type: JoinType::Inner,
            on: vec![(PlanExpr::column(1, "r.b"), PlanExpr::column(0, "s.c"))],
            filter: None,
            schema,
        };
        let out = convert_outer_joins(upper).unwrap();
        let LogicalPlan::Join { left, .. } = out else {
            panic!()
        };
        let LogicalPlan::Join { join_type, .. } = *left else {
            panic!()
        };
        assert_eq!(join_type, JoinType::Inner);
    }

    #[test]
    fn filter_on_preserved_side_keeps_outer() {
        let join = left_join(scan("l", &["a"]), scan("r", &["b"]));
        let pred = PlanExpr::column(0, "a").binary(BinaryOp::Gt, PlanExpr::literal(0i64));
        let plan = LogicalPlan::Filter {
            input: Box::new(join),
            predicate: pred,
        };
        let out = convert_outer_joins(plan).unwrap();
        let LogicalPlan::Filter { input, .. } = out else {
            panic!()
        };
        let LogicalPlan::Join { join_type, .. } = *input else {
            panic!()
        };
        assert_eq!(join_type, JoinType::Left);
    }
}
