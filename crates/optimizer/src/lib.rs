//! Rule-based logical optimizer.
//!
//! Two layers, matching the paper's split:
//!
//! * **General rewrites** applied to every plan tree (constant folding,
//!   filter merging, predicate push-down within a plan, outer→inner join
//!   conversion). These are the optimizations MPPDB already had that
//!   "simply work" for the rewritten iterative query (§V).
//! * **Iterative-CTE rewrites** applied to the step program as a whole:
//!   *common result extraction* (§V-A, Fig. 9) hoists loop-invariant join
//!   subtrees out of the loop, and *restricted predicate push-down*
//!   (§V-B, Fig. 10) moves final-query predicates into the non-iterative
//!   part when Ri provably processes rows independently.
//!
//! * **Semi-naive delta iteration** ([`semi_naive`]): when a loop body is
//!   a monotone accumulator over a self-join of the CTE, substitute the
//!   working *delta* table for the full table on the propagation side so
//!   per-iteration cost tracks the changed-row set instead of the whole
//!   working table. See `DESIGN.md` §7 for the iteration-model spec.
//!
//! Entry points: [`optimize`] for a [`QueryPlan`], [`optimize_statement`]
//! for any planned statement.
#![warn(missing_docs)]

pub mod common_result;
pub mod fold;
pub mod iterative_pushdown;
pub mod outer_to_inner;
pub mod projection;
pub mod pushdown;
pub mod semi_naive;

use spinner_common::{EngineConfig, Result};
use spinner_plan::{LogicalPlan, PlannedStatement, QueryPlan, Step};

/// Maximum fixpoint rounds for the per-plan rule pipeline.
const MAX_PASSES: usize = 10;

/// Optimize one logical plan tree with the general rewrites.
pub fn optimize_plan(mut plan: LogicalPlan, config: &EngineConfig) -> Result<LogicalPlan> {
    if !config.general_rewrites {
        return Ok(plan);
    }
    for _ in 0..MAX_PASSES {
        let mut next = fold::fold_constants(plan.clone())?;
        next = outer_to_inner::convert_outer_joins(next)?;
        next = pushdown::push_down_filters(next)?;
        next = projection::merge_projections(next)?;
        if next == plan {
            return Ok(next);
        }
        plan = next;
    }
    Ok(plan)
}

/// Optimize a full query plan: every step's plan tree, plus the program-
/// level iterative-CTE rewrites.
pub fn optimize(plan: QueryPlan, config: &EngineConfig) -> Result<QueryPlan> {
    let QueryPlan { steps, root } = plan;
    let mut steps = steps
        .into_iter()
        .map(|s| optimize_step(s, config))
        .collect::<Result<Vec<_>>>()?;
    let mut root = optimize_plan(root, config)?;

    if config.predicate_pushdown {
        let rewritten = iterative_pushdown::push_into_non_iterative(steps, root, config)?;
        steps = rewritten.0;
        root = rewritten.1;
        // The predicate the rewrite moved into R0 sits above R0's whole
        // plan; a second general pass sinks it further (e.g. below the FF
        // query's GROUP BY, into the scan).
        steps = steps
            .into_iter()
            .map(|s| optimize_step(s, config))
            .collect::<Result<Vec<_>>>()?;
        root = optimize_plan(root, config)?;
    }
    if config.common_result_optimization {
        steps = common_result::extract_common_results(steps)?;
    }
    if config.semi_naive {
        steps = semi_naive::apply(steps)?;
    }
    Ok(QueryPlan { steps, root })
}

fn optimize_step(step: Step, config: &EngineConfig) -> Result<Step> {
    Ok(match step {
        Step::Materialize {
            name,
            plan,
            distribute_by,
        } => Step::Materialize {
            name,
            plan: optimize_plan(plan, config)?,
            distribute_by,
        },
        Step::Loop(mut l) => {
            l.body = l
                .body
                .into_iter()
                .map(|s| optimize_step(s, config))
                .collect::<Result<Vec<_>>>()?;
            Step::Loop(l)
        }
        other @ (Step::Rename { .. } | Step::Merge { .. }) => other,
    })
}

/// Optimize any planned statement.
pub fn optimize_statement(
    stmt: PlannedStatement,
    config: &EngineConfig,
) -> Result<PlannedStatement> {
    Ok(match stmt {
        PlannedStatement::Query(q) => PlannedStatement::Query(optimize(q, config)?),
        PlannedStatement::Insert { table, source } => PlannedStatement::Insert {
            table,
            source: optimize(source, config)?,
        },
        PlannedStatement::Explain { statement, analyze } => PlannedStatement::Explain {
            statement: Box::new(optimize_statement(*statement, config)?),
            analyze,
        },
        other => other,
    })
}

/// Split an expression into AND-connected conjuncts.
pub(crate) fn split_conjuncts(
    expr: &spinner_plan::PlanExpr,
    out: &mut Vec<spinner_plan::PlanExpr>,
) {
    use spinner_plan::expr::BinaryOp;
    if let spinner_plan::PlanExpr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Combine conjuncts back with AND; `None` when empty.
pub(crate) fn conjoin(mut parts: Vec<spinner_plan::PlanExpr>) -> Option<spinner_plan::PlanExpr> {
    use spinner_plan::expr::BinaryOp;
    let first = if parts.is_empty() {
        return None;
    } else {
        parts.remove(0)
    };
    Some(
        parts
            .into_iter()
            .fold(first, |acc, p| acc.binary(BinaryOp::And, p)),
    )
}
