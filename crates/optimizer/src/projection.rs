//! Projection merging.
//!
//! Planning and the other rewrites can stack projections
//! (`Projection(Projection(x))` — e.g. a subquery alias wrapper over a
//! SELECT list, or the hidden-sort-column machinery). Evaluating two
//! projections costs two row materializations; merging composes the outer
//! expressions over the inner ones so one pass suffices. Identity
//! projections (straight column forwarding with an unchanged width) are
//! removed entirely.

use spinner_common::Result;
use spinner_plan::{LogicalPlan, PlanExpr};

/// One merging pass over the tree (run to fixpoint by the driver).
pub fn merge_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = map_children(plan, &mut |c| merge_projections(c))?;
    let LogicalPlan::Projection {
        input,
        exprs,
        schema,
    } = plan
    else {
        return Ok(plan);
    };
    match *input {
        // Projection over projection: compose.
        LogicalPlan::Projection {
            input: inner_input,
            exprs: inner_exprs,
            ..
        } => {
            let composed = exprs
                .iter()
                .map(|e| substitute(e, &inner_exprs))
                .collect::<Result<Vec<_>>>()?;
            Ok(LogicalPlan::Projection {
                input: inner_input,
                exprs: composed,
                schema,
            })
        }
        other => {
            // Identity projection over anything: drop it, keeping the
            // outer schema only if it matches the input's width AND names
            // do not matter (they do — the projection may re-qualify a
            // subquery alias). We therefore only drop when the schema is
            // structurally identical.
            let is_identity = exprs.len() == other.schema().len()
                && exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, PlanExpr::Column(c) if c.index == i))
                && *schema == *other.schema();
            if is_identity {
                Ok(other)
            } else {
                Ok(LogicalPlan::Projection {
                    input: Box::new(other),
                    exprs,
                    schema,
                })
            }
        }
    }
}

/// Replace `Column(i)` with `inner[i]`.
fn substitute(expr: &PlanExpr, inner: &[PlanExpr]) -> Result<PlanExpr> {
    Ok(match expr {
        PlanExpr::Column(c) => inner.get(c.index).cloned().ok_or_else(|| {
            spinner_common::Error::plan(format!(
                "column index {} out of range while merging projections",
                c.index
            ))
        })?,
        PlanExpr::Literal(v) => PlanExpr::Literal(v.clone()),
        PlanExpr::Binary { left, op, right } => PlanExpr::Binary {
            left: Box::new(substitute(left, inner)?),
            op: *op,
            right: Box::new(substitute(right, inner)?),
        },
        PlanExpr::Unary { op, expr } => PlanExpr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, inner)?),
        },
        PlanExpr::Scalar { func, args } => PlanExpr::Scalar {
            func: *func,
            args: args
                .iter()
                .map(|a| substitute(a, inner))
                .collect::<Result<_>>()?,
        },
        PlanExpr::Case {
            branches,
            else_expr,
        } => PlanExpr::Case {
            branches: branches
                .iter()
                .map(|(w, t)| Ok((substitute(w, inner)?, substitute(t, inner)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(substitute(e, inner)?)),
                None => None,
            },
        },
        PlanExpr::Cast { expr, to } => PlanExpr::Cast {
            expr: Box::new(substitute(expr, inner)?),
            to: *to,
        },
        PlanExpr::IsNull { expr, negated } => PlanExpr::IsNull {
            expr: Box::new(substitute(expr, inner)?),
            negated: *negated,
        },
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => PlanExpr::InList {
            expr: Box::new(substitute(expr, inner)?),
            list: list
                .iter()
                .map(|e| substitute(e, inner))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
    })
}

fn map_children(
    plan: LogicalPlan,
    f: &mut impl FnMut(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Projection {
            input,
            exprs,
            schema,
        } => LogicalPlan::Projection {
            input: Box::new(f(*input)?),
            exprs,
            schema,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)?),
            predicate,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            on,
            filter,
            schema,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            join_type,
            on,
            filter,
            schema,
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)?),
            group,
            aggs,
            schema,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(f(*input)?),
            n,
        },
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => LogicalPlan::SetOp {
            op,
            all,
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            schema,
        },
        leaf => leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field, Schema};
    use spinner_plan::expr::BinaryOp;
    use std::sync::Arc;

    fn scan() -> LogicalPlan {
        LogicalPlan::TempScan {
            name: "t".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ])),
        }
    }

    #[test]
    fn stacked_projections_compose() {
        let inner = LogicalPlan::Projection {
            input: Box::new(scan()),
            exprs: vec![
                PlanExpr::column(1, "b"),
                PlanExpr::column(0, "a").binary(BinaryOp::Plus, PlanExpr::literal(1i64)),
            ],
            schema: Arc::new(Schema::new(vec![
                Field::new("b", DataType::Int),
                Field::new("a1", DataType::Int),
            ])),
        };
        let outer = LogicalPlan::Projection {
            input: Box::new(inner),
            exprs: vec![
                PlanExpr::column(1, "a1").binary(BinaryOp::Multiply, PlanExpr::literal(2i64))
            ],
            schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int)])),
        };
        let merged = merge_projections(outer).unwrap();
        let LogicalPlan::Projection { input, exprs, .. } = merged else {
            panic!()
        };
        assert!(
            matches!(*input, LogicalPlan::TempScan { .. }),
            "one projection left"
        );
        assert_eq!(exprs[0].to_string(), "((a#0 + 1) * 2)");
    }

    #[test]
    fn identity_projection_removed() {
        let schema = scan().schema();
        let identity = LogicalPlan::Projection {
            input: Box::new(scan()),
            exprs: vec![PlanExpr::column(0, "a"), PlanExpr::column(1, "b")],
            schema,
        };
        let merged = merge_projections(identity).unwrap();
        assert!(matches!(merged, LogicalPlan::TempScan { .. }));
    }

    #[test]
    fn renaming_projection_kept() {
        // Same columns, but the schema differs (alias re-qualification) —
        // must not be dropped.
        let renamed = Arc::new(scan().schema().qualify_all("q"));
        let proj = LogicalPlan::Projection {
            input: Box::new(scan()),
            exprs: vec![PlanExpr::column(0, "a"), PlanExpr::column(1, "b")],
            schema: renamed,
        };
        let merged = merge_projections(proj).unwrap();
        assert!(matches!(merged, LogicalPlan::Projection { .. }));
    }

    #[test]
    fn reordering_projection_kept() {
        let proj = LogicalPlan::Projection {
            input: Box::new(scan()),
            exprs: vec![PlanExpr::column(1, "b"), PlanExpr::column(0, "a")],
            schema: Arc::new(Schema::new(vec![
                Field::new("b", DataType::Int),
                Field::new("a", DataType::Int),
            ])),
        };
        let merged = merge_projections(proj).unwrap();
        assert!(matches!(merged, LogicalPlan::Projection { .. }));
    }
}
