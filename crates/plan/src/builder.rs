//! AST → logical-plan builder (name resolution, aggregate extraction,
//! CTE binding).
//!
//! The builder produces a [`QueryPlan`] — a step program plus final plan.
//! Regular CTEs become [`Step::Materialize`]; recursive and iterative CTEs
//! are delegated to [`crate::rewrite`], the functional rewrite of the
//! paper's Algorithm 1.

use std::collections::HashMap;
use std::sync::Arc;

use spinner_common::{DataType, EngineConfig, Error, Field, Result, Schema, SchemaRef, Value};
use spinner_parser as ast;
use spinner_parser::{CteKind, InsertSource, SelectItem, SetOp, Statement, TableRef};

use crate::expr::{AggExpr, AggFunc, PlanExpr, ScalarFn};
use crate::logical::{
    JoinType, LogicalPlan, PlannedStatement, QueryPlan, SetOpKind, SortKey, Step,
};
use crate::rewrite;

/// Source of base-table schemas (implemented by the engine's catalog).
pub trait SchemaProvider {
    /// Schema of a base table, if it exists.
    fn table_schema(&self, name: &str) -> Option<SchemaRef>;
    /// Declared primary-key column of a base table.
    fn table_primary_key(&self, name: &str) -> Option<usize>;
}

/// A bound CTE visible to FROM clauses.
#[derive(Debug, Clone)]
pub struct CteBinding {
    /// Temp-registry name holding the CTE rows.
    pub temp_name: String,
    /// Output schema (unqualified names; qualified at the reference site).
    pub schema: SchemaRef,
}

/// Planning context: schema provider, config, visible CTEs.
pub struct PlanContext<'a> {
    /// Catalog access for table schemas and primary keys.
    pub provider: &'a dyn SchemaProvider,
    /// Feature toggles steering the iterative rewrites.
    pub config: &'a EngineConfig,
    ctes: HashMap<String, CteBinding>,
    temp_counter: u64,
}

impl<'a> PlanContext<'a> {
    /// Fresh context.
    pub fn new(provider: &'a dyn SchemaProvider, config: &'a EngineConfig) -> Self {
        PlanContext {
            provider,
            config,
            ctes: HashMap::new(),
            temp_counter: 0,
        }
    }

    /// Allocate a unique temp-result name with the given role prefix.
    pub fn fresh_temp(&mut self, prefix: &str) -> String {
        self.temp_counter += 1;
        format!("__{prefix}_{}", self.temp_counter)
    }

    /// Bind a CTE name for the remainder of the statement.
    pub fn bind_cte(&mut self, name: &str, binding: CteBinding) {
        self.ctes.insert(name.to_ascii_lowercase(), binding);
    }

    /// Look up a CTE binding.
    pub fn cte(&self, name: &str) -> Option<&CteBinding> {
        self.ctes.get(&name.to_ascii_lowercase())
    }
}

/// Plan a full statement.
pub fn plan_statement(
    stmt: &Statement,
    provider: &dyn SchemaProvider,
    config: &EngineConfig,
) -> Result<PlannedStatement> {
    match stmt {
        Statement::Query(q) => Ok(PlannedStatement::Query(plan_query(q, provider, config)?)),
        Statement::Explain { statement, analyze } => Ok(PlannedStatement::Explain {
            statement: Box::new(plan_statement(statement, provider, config)?),
            analyze: *analyze,
        }),
        Statement::CreateTable {
            name,
            columns,
            primary_key,
            partition_key,
            if_not_exists,
        } => {
            let fields: Vec<Field> = columns
                .iter()
                .map(|c| Field::new(c.name.clone(), c.data_type))
                .collect();
            let schema = Schema::new(fields);
            let pk = match primary_key {
                Some(col) => Some(schema.index_of(None, col)?),
                None => None,
            };
            let part = match partition_key {
                Some(col) => Some(schema.index_of(None, col)?),
                // Default distribution: by primary key when declared,
                // otherwise by the first column.
                None => pk.or(if schema.is_empty() { None } else { Some(0) }),
            };
            Ok(PlannedStatement::CreateTable {
                name: name.clone(),
                schema,
                primary_key: pk,
                partition_key: part,
                if_not_exists: *if_not_exists,
            })
        }
        Statement::DropTable { name, if_exists } => Ok(PlannedStatement::DropTable {
            name: name.clone(),
            if_exists: *if_exists,
        }),
        Statement::Insert {
            table,
            columns,
            source,
        } => plan_insert(table, columns.as_deref(), source, provider, config),
        Statement::Update {
            table,
            assignments,
            from,
            selection,
        } => plan_update(
            table,
            assignments,
            from.as_ref(),
            selection.as_ref(),
            provider,
            config,
        ),
        Statement::Delete { table, selection } => {
            let schema = provider
                .table_schema(table)
                .ok_or_else(|| Error::TableNotFound(table.clone()))?;
            let qualified = Arc::new(schema.qualify_all(table));
            let predicate = match selection {
                Some(e) => Some(resolve_expr(e, &qualified)?),
                None => None,
            };
            Ok(PlannedStatement::Delete {
                table: table.clone(),
                predicate,
            })
        }
    }
}

/// Plan a query into a step program + final plan.
pub fn plan_query(
    query: &ast::Query,
    provider: &dyn SchemaProvider,
    config: &EngineConfig,
) -> Result<QueryPlan> {
    let mut ctx = PlanContext::new(provider, config);
    let mut steps = Vec::new();
    let root = plan_query_internal(query, &mut ctx, &mut steps)?;
    Ok(QueryPlan { steps, root })
}

/// Plan a query, appending any required steps (CTE materializations,
/// loops) to `steps`, returning the final plan.
pub fn plan_query_internal(
    query: &ast::Query,
    ctx: &mut PlanContext<'_>,
    steps: &mut Vec<Step>,
) -> Result<LogicalPlan> {
    for cte in &query.ctes {
        match &cte.kind {
            CteKind::Regular(q) => {
                let plan = plan_query_internal(q, ctx, steps)?;
                let schema = apply_declared_columns(&plan.schema(), &cte.columns, &cte.name)?;
                let temp = ctx.fresh_temp(&format!("cte_{}", cte.name));
                steps.push(Step::Materialize {
                    name: temp.clone(),
                    plan,
                    distribute_by: None,
                });
                ctx.bind_cte(
                    &cte.name,
                    CteBinding {
                        temp_name: temp,
                        schema,
                    },
                );
            }
            CteKind::Recursive {
                base,
                step,
                union_all,
            } => {
                rewrite::build_recursive_cte(cte, base, step, *union_all, ctx, steps)?;
            }
            CteKind::Iterative { init, step, until } => {
                rewrite::build_iterative_cte(cte, init, step, until, ctx, steps)?;
            }
        }
    }
    let mut plan = plan_set_expr(&query.body, ctx, steps)?;
    if !query.order_by.is_empty() {
        plan = plan_order_by(plan, &query.order_by)?;
    }
    if let Some(n) = query.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

/// Plan ORDER BY over the query output.
///
/// Keys resolve against the SELECT output first (so aliases work); output
/// columns have lost their qualifiers, so `e.src` also matches output
/// column `src`. A key that only exists on the projection *input* (e.g.
/// `SELECT name FROM people ORDER BY age`) is added as a hidden sort
/// column and projected away after the sort, per standard SQL.
fn plan_order_by(plan: LogicalPlan, order_by: &[ast::OrderByExpr]) -> Result<LogicalPlan> {
    let out_schema = plan.schema();
    let resolve_with_fallback = |expr: &ast::Expr, schema: &Schema| {
        resolve_expr(expr, schema)
            .or_else(|e| resolve_expr(&strip_qualifiers(expr), schema).map_err(|_| e))
    };
    // First pass: which keys resolve against the output?
    let mut resolved: Vec<Option<PlanExpr>> = Vec::with_capacity(order_by.len());
    let mut all_output = true;
    for ob in order_by {
        match resolve_with_fallback(&ob.expr, &out_schema) {
            Ok(e) => resolved.push(Some(e)),
            Err(_) => {
                resolved.push(None);
                all_output = false;
            }
        }
    }
    if all_output {
        let keys = order_by
            .iter()
            .zip(resolved)
            .map(|(ob, e)| SortKey {
                expr: e.expect("resolved"),
                asc: ob.asc,
                nulls_first: ob.nulls_first,
            })
            .collect();
        return Ok(LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        });
    }
    // Hidden-column path: only possible when the root is a projection whose
    // input still exposes the key columns.
    let LogicalPlan::Projection {
        input,
        mut exprs,
        schema,
    } = plan
    else {
        // Re-raise the original resolution error.
        for ob in order_by {
            resolve_with_fallback(&ob.expr, &out_schema)?;
        }
        unreachable!("at least one key failed to resolve");
    };
    let in_schema = input.schema();
    let visible = exprs.len();
    let mut extended_fields: Vec<Field> = schema.fields().to_vec();
    let mut keys = Vec::with_capacity(order_by.len());
    for (ob, pre) in order_by.iter().zip(resolved) {
        let expr = match pre {
            Some(e) => e,
            None => {
                let inner = resolve_with_fallback(&ob.expr, &in_schema)?;
                let idx = exprs.len();
                extended_fields.push(Field::new(
                    format!("__sort_{idx}"),
                    inner.data_type(&in_schema),
                ));
                exprs.push(inner);
                PlanExpr::column(idx, format!("__sort_{idx}"))
            }
        };
        keys.push(SortKey {
            expr,
            asc: ob.asc,
            nulls_first: ob.nulls_first,
        });
    }
    let extended = LogicalPlan::Projection {
        input,
        exprs,
        schema: Arc::new(Schema::new(extended_fields)),
    };
    let sorted = LogicalPlan::Sort {
        input: Box::new(extended),
        keys,
    };
    // Project the hidden columns away again.
    let final_exprs: Vec<PlanExpr> = schema
        .fields()
        .iter()
        .take(visible)
        .enumerate()
        .map(|(i, f)| PlanExpr::column(i, f.qualified_name()))
        .collect();
    Ok(LogicalPlan::Projection {
        input: Box::new(sorted),
        exprs: final_exprs,
        schema,
    })
}

/// Remove table qualifiers from every column reference (ORDER BY fallback).
fn strip_qualifiers(expr: &ast::Expr) -> ast::Expr {
    match expr {
        ast::Expr::Column { name, .. } => ast::Expr::Column {
            relation: None,
            name: name.clone(),
        },
        ast::Expr::Literal(v) => ast::Expr::Literal(v.clone()),
        ast::Expr::BinaryOp { left, op, right } => ast::Expr::BinaryOp {
            left: Box::new(strip_qualifiers(left)),
            op: *op,
            right: Box::new(strip_qualifiers(right)),
        },
        ast::Expr::UnaryOp { op, expr } => ast::Expr::UnaryOp {
            op: *op,
            expr: Box::new(strip_qualifiers(expr)),
        },
        ast::Expr::Function {
            name,
            args,
            distinct,
            star,
        } => ast::Expr::Function {
            name: name.clone(),
            args: args.iter().map(strip_qualifiers).collect(),
            distinct: *distinct,
            star: *star,
        },
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => ast::Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(strip_qualifiers(o))),
            branches: branches
                .iter()
                .map(|(w, t)| (strip_qualifiers(w), strip_qualifiers(t)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(strip_qualifiers(e))),
        },
        ast::Expr::Cast { expr, data_type } => ast::Expr::Cast {
            expr: Box::new(strip_qualifiers(expr)),
            data_type: *data_type,
        },
        ast::Expr::IsNull { expr, negated } => ast::Expr::IsNull {
            expr: Box::new(strip_qualifiers(expr)),
            negated: *negated,
        },
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => ast::Expr::InList {
            expr: Box::new(strip_qualifiers(expr)),
            list: list.iter().map(strip_qualifiers).collect(),
            negated: *negated,
        },
        ast::Expr::Between {
            expr,
            low,
            high,
            negated,
        } => ast::Expr::Between {
            expr: Box::new(strip_qualifiers(expr)),
            low: Box::new(strip_qualifiers(low)),
            high: Box::new(strip_qualifiers(high)),
            negated: *negated,
        },
    }
}

/// Rename a schema's fields to the CTE's declared column list.
pub fn apply_declared_columns(
    schema: &Schema,
    columns: &[String],
    cte_name: &str,
) -> Result<SchemaRef> {
    if columns.is_empty() {
        // Strip qualifiers so outer references use the CTE's alias.
        return Ok(Arc::new(schema.unqualified()));
    }
    if columns.len() != schema.len() {
        return Err(Error::plan(format!(
            "CTE '{cte_name}' declares {} columns but its query produces {}",
            columns.len(),
            schema.len()
        )));
    }
    Ok(Arc::new(Schema::new(
        columns
            .iter()
            .zip(schema.fields())
            .map(|(name, f)| Field::new(name.clone(), f.data_type))
            .collect(),
    )))
}

fn plan_set_expr(
    body: &ast::SetExpr,
    ctx: &mut PlanContext<'_>,
    steps: &mut Vec<Step>,
) -> Result<LogicalPlan> {
    match body {
        ast::SetExpr::Select(s) => plan_select(s, ctx, steps),
        ast::SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = plan_set_expr(left, ctx, steps)?;
            let r = plan_set_expr(right, ctx, steps)?;
            if l.schema().len() != r.schema().len() {
                return Err(Error::plan(format!(
                    "{op} operands have different column counts ({} vs {})",
                    l.schema().len(),
                    r.schema().len()
                )));
            }
            let kind = match op {
                SetOp::Union => SetOpKind::Union,
                SetOp::Except => SetOpKind::Except,
                SetOp::Intersect => SetOpKind::Intersect,
            };
            // Output takes the left side's names; widen types per column.
            let rs = r.schema();
            let fields: Vec<Field> = l
                .schema()
                .fields()
                .iter()
                .zip(rs.fields())
                .map(|(a, b)| Field::new(a.name.clone(), a.data_type.widen(b.data_type)))
                .collect();
            Ok(LogicalPlan::SetOp {
                op: kind,
                all: *all,
                left: Box::new(l),
                right: Box::new(r),
                schema: Arc::new(Schema::new(fields)),
            })
        }
    }
}

fn plan_select(
    select: &ast::Select,
    ctx: &mut PlanContext<'_>,
    steps: &mut Vec<Step>,
) -> Result<LogicalPlan> {
    // FROM
    let mut input = match select.from.len() {
        0 => LogicalPlan::Values {
            schema: Arc::new(Schema::empty()),
            rows: vec![Vec::new()],
        },
        _ => {
            let mut it = select.from.iter();
            let mut plan = plan_table_ref(it.next().expect("non-empty"), ctx, steps)?;
            for tr in it {
                let right = plan_table_ref(tr, ctx, steps)?;
                let schema = Arc::new(plan.schema().join(&right.schema()));
                plan = LogicalPlan::Join {
                    left: Box::new(plan),
                    right: Box::new(right),
                    join_type: JoinType::Cross,
                    on: vec![],
                    filter: None,
                    schema,
                };
            }
            plan
        }
    };
    // WHERE
    if let Some(sel) = &select.selection {
        let schema = input.schema();
        let predicate = resolve_expr(sel, &schema)?;
        input = LogicalPlan::Filter {
            input: Box::new(input),
            predicate,
        };
    }
    // Aggregation?
    let has_aggs = select_has_aggregates(select);
    let mut plan = if has_aggs || !select.group_by.is_empty() {
        plan_aggregate_select(select, input)?
    } else {
        plan_plain_projection(select, input)?
    };
    if select.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }
    Ok(plan)
}

fn plan_plain_projection(select: &ast::Select, input: LogicalPlan) -> Result<LogicalPlan> {
    let in_schema = input.schema();
    let mut exprs = Vec::new();
    let mut fields = Vec::new();
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {
                for (i, f) in in_schema.fields().iter().enumerate() {
                    exprs.push(PlanExpr::column(i, f.qualified_name()));
                    fields.push(f.clone());
                }
            }
            SelectItem::QualifiedWildcard(rel) => {
                let mut matched = false;
                for (i, f) in in_schema.fields().iter().enumerate() {
                    if f.relation
                        .as_deref()
                        .is_some_and(|r| r.eq_ignore_ascii_case(rel))
                    {
                        exprs.push(PlanExpr::column(i, f.qualified_name()));
                        fields.push(f.clone());
                        matched = true;
                    }
                }
                if !matched {
                    return Err(Error::plan(format!("unknown relation '{rel}' in {rel}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let resolved = resolve_expr(expr, &in_schema)?;
                let name = output_name(expr, alias.as_deref(), exprs.len());
                let dt = resolved.data_type(&in_schema);
                exprs.push(resolved);
                fields.push(Field::new(name, dt));
            }
        }
    }
    Ok(LogicalPlan::Projection {
        input: Box::new(input),
        exprs,
        schema: Arc::new(Schema::new(fields)),
    })
}

/// Plan a SELECT with GROUP BY / aggregate functions.
///
/// Shape: `Projection( Filter?(HAVING) ( Aggregate(input) ) )` where the
/// aggregate's output schema is `[group columns..., agg results...]` and
/// the post-projection rewrites group-by expressions and aggregate calls
/// into positional references.
fn plan_aggregate_select(select: &ast::Select, input: LogicalPlan) -> Result<LogicalPlan> {
    let in_schema = input.schema();
    // Resolve group expressions.
    let group: Vec<PlanExpr> = select
        .group_by
        .iter()
        .map(|e| resolve_expr(e, &in_schema))
        .collect::<Result<_>>()?;
    // Collect aggregate calls (structurally deduplicated) from projection
    // and HAVING.
    let mut agg_calls: Vec<ast::Expr> = Vec::new();
    for item in &select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregates(expr, &mut agg_calls)?;
        }
    }
    if let Some(h) = &select.having {
        collect_aggregates(h, &mut agg_calls)?;
    }
    let aggs: Vec<AggExpr> = agg_calls
        .iter()
        .enumerate()
        .map(|(i, call)| resolve_aggregate(call, &in_schema, i))
        .collect::<Result<_>>()?;
    // Aggregate output schema.
    let mut agg_fields: Vec<Field> = Vec::new();
    for (i, g) in group.iter().enumerate() {
        let name = match (&select.group_by[i], g) {
            (ast::Expr::Column { name, .. }, _) => name.clone(),
            _ => format!("group_{i}"),
        };
        agg_fields.push(Field::new(name, g.data_type(&in_schema)));
    }
    for a in &aggs {
        agg_fields.push(Field::new(a.name.clone(), a.output_type(&in_schema)));
    }
    let agg_schema = Arc::new(Schema::new(agg_fields));
    let mut plan = LogicalPlan::Aggregate {
        input: Box::new(input),
        group: group.clone(),
        aggs,
        schema: Arc::clone(&agg_schema),
    };
    // HAVING
    if let Some(h) = &select.having {
        let predicate = rewrite_post_aggregate(h, &select.group_by, &agg_calls, &agg_schema)?;
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }
    // Final projection.
    let mut exprs = Vec::new();
    let mut fields = Vec::new();
    for item in &select.projection {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                return Err(Error::plan(
                    "SELECT * cannot be combined with GROUP BY / aggregates",
                ))
            }
            SelectItem::Expr { expr, alias } => {
                let resolved =
                    rewrite_post_aggregate(expr, &select.group_by, &agg_calls, &agg_schema)?;
                let name = output_name(expr, alias.as_deref(), exprs.len());
                let dt = resolved.data_type(&agg_schema);
                exprs.push(resolved);
                fields.push(Field::new(name, dt));
            }
        }
    }
    Ok(LogicalPlan::Projection {
        input: Box::new(plan),
        exprs,
        schema: Arc::new(Schema::new(fields)),
    })
}

/// Rewrite a post-aggregation expression: group-by expressions become
/// positional references into the aggregate output, aggregate calls become
/// references to their result column, and any other bare column is an
/// error ("must appear in GROUP BY").
fn rewrite_post_aggregate(
    expr: &ast::Expr,
    group_by: &[ast::Expr],
    agg_calls: &[ast::Expr],
    agg_schema: &Schema,
) -> Result<PlanExpr> {
    // Group-by match?
    if let Some(i) = group_by.iter().position(|g| g == expr) {
        return Ok(PlanExpr::column(i, agg_schema.field(i).name.clone()));
    }
    // Aggregate-call match?
    if let Some(j) = agg_calls.iter().position(|a| a == expr) {
        let idx = group_by.len() + j;
        return Ok(PlanExpr::column(idx, agg_schema.field(idx).name.clone()));
    }
    match expr {
        ast::Expr::Column { relation, name } => {
            // A bare column may still match a group-by *column* spelled with
            // a different qualifier.
            for (i, g) in group_by.iter().enumerate() {
                if let ast::Expr::Column { name: gname, .. } = g {
                    if gname.eq_ignore_ascii_case(name)
                        && (relation.is_none()
                            || matches!(
                                g,
                                ast::Expr::Column {
                                    relation: Some(_),
                                    ..
                                }
                            ))
                    {
                        return Ok(PlanExpr::column(i, agg_schema.field(i).name.clone()));
                    }
                }
            }
            Err(Error::plan(format!(
                "column '{}' must appear in the GROUP BY clause or be used in an aggregate",
                match relation {
                    Some(r) => format!("{r}.{name}"),
                    None => name.clone(),
                }
            )))
        }
        ast::Expr::Literal(v) => Ok(PlanExpr::Literal(v.clone())),
        ast::Expr::BinaryOp { left, op, right } => Ok(PlanExpr::Binary {
            left: Box::new(rewrite_post_aggregate(
                left, group_by, agg_calls, agg_schema,
            )?),
            op: *op,
            right: Box::new(rewrite_post_aggregate(
                right, group_by, agg_calls, agg_schema,
            )?),
        }),
        ast::Expr::UnaryOp { op, expr } => Ok(PlanExpr::Unary {
            op: *op,
            expr: Box::new(rewrite_post_aggregate(
                expr, group_by, agg_calls, agg_schema,
            )?),
        }),
        ast::Expr::Function { name, args, .. } => {
            let func = ScalarFn::from_name(name).ok_or_else(|| {
                Error::plan(format!("unknown function '{name}' after aggregation"))
            })?;
            Ok(PlanExpr::Scalar {
                func,
                args: args
                    .iter()
                    .map(|a| rewrite_post_aggregate(a, group_by, agg_calls, agg_schema))
                    .collect::<Result<_>>()?,
            })
        }
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let desugared = desugar_case(operand, branches, else_expr);
            let mut bs = Vec::new();
            for (w, t) in desugared.0 {
                bs.push((
                    rewrite_post_aggregate(&w, group_by, agg_calls, agg_schema)?,
                    rewrite_post_aggregate(&t, group_by, agg_calls, agg_schema)?,
                ));
            }
            let ee = match desugared.1 {
                Some(e) => Some(Box::new(rewrite_post_aggregate(
                    &e, group_by, agg_calls, agg_schema,
                )?)),
                None => None,
            };
            Ok(PlanExpr::Case {
                branches: bs,
                else_expr: ee,
            })
        }
        ast::Expr::Cast { expr, data_type } => Ok(PlanExpr::Cast {
            expr: Box::new(rewrite_post_aggregate(
                expr, group_by, agg_calls, agg_schema,
            )?),
            to: *data_type,
        }),
        ast::Expr::IsNull { expr, negated } => Ok(PlanExpr::IsNull {
            expr: Box::new(rewrite_post_aggregate(
                expr, group_by, agg_calls, agg_schema,
            )?),
            negated: *negated,
        }),
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => Ok(PlanExpr::InList {
            expr: Box::new(rewrite_post_aggregate(
                expr, group_by, agg_calls, agg_schema,
            )?),
            list: list
                .iter()
                .map(|e| rewrite_post_aggregate(e, group_by, agg_calls, agg_schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        ast::Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let desugared = desugar_between(expr, low, high, *negated);
            rewrite_post_aggregate(&desugared, group_by, agg_calls, agg_schema)
        }
    }
}

/// Is this function name an aggregate?
fn aggregate_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        "arg_min" => AggFunc::ArgMin,
        "arg_max" => AggFunc::ArgMax,
        _ => return None,
    })
}

fn select_has_aggregates(select: &ast::Select) -> bool {
    let mut found = false;
    let mut check = |e: &ast::Expr| {
        e.walk(&mut |x| {
            if let ast::Expr::Function { name, .. } = x {
                if aggregate_func(name).is_some() {
                    found = true;
                }
            }
        })
    };
    for item in &select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            check(expr);
        }
    }
    if let Some(h) = &select.having {
        check(h);
    }
    found
}

/// Collect top-most aggregate calls in `expr` into `out` (deduplicated).
/// Errors on nested aggregates.
fn collect_aggregates(expr: &ast::Expr, out: &mut Vec<ast::Expr>) -> Result<()> {
    if let ast::Expr::Function { name, args, .. } = expr {
        if aggregate_func(name).is_some() {
            // no nested aggregates
            for a in args {
                let mut nested = false;
                a.walk(&mut |x| {
                    if let ast::Expr::Function { name, .. } = x {
                        if aggregate_func(name).is_some() {
                            nested = true;
                        }
                    }
                });
                if nested {
                    return Err(Error::plan("nested aggregate functions are not allowed"));
                }
            }
            if !out.contains(expr) {
                out.push(expr.clone());
            }
            return Ok(());
        }
    }
    match expr {
        ast::Expr::Column { .. } | ast::Expr::Literal(_) => Ok(()),
        ast::Expr::BinaryOp { left, right, .. } => {
            collect_aggregates(left, out)?;
            collect_aggregates(right, out)
        }
        ast::Expr::UnaryOp { expr, .. } => collect_aggregates(expr, out),
        ast::Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out)?;
            }
            Ok(())
        }
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                collect_aggregates(op, out)?;
            }
            for (w, t) in branches {
                collect_aggregates(w, out)?;
                collect_aggregates(t, out)?;
            }
            if let Some(e) = else_expr {
                collect_aggregates(e, out)?;
            }
            Ok(())
        }
        ast::Expr::Cast { expr, .. } | ast::Expr::IsNull { expr, .. } => {
            collect_aggregates(expr, out)
        }
        ast::Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out)?;
            for e in list {
                collect_aggregates(e, out)?;
            }
            Ok(())
        }
        ast::Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out)?;
            collect_aggregates(low, out)?;
            collect_aggregates(high, out)
        }
    }
}

fn resolve_aggregate(call: &ast::Expr, input: &Schema, ordinal: usize) -> Result<AggExpr> {
    let ast::Expr::Function {
        name,
        args,
        distinct,
        star,
    } = call
    else {
        return Err(Error::plan("internal: not an aggregate call"));
    };
    let func = aggregate_func(name)
        .ok_or_else(|| Error::plan(format!("internal: '{name}' is not an aggregate")))?;
    if *star {
        if func != AggFunc::Count {
            return Err(Error::plan(format!("{name}(*) is not supported")));
        }
        return Ok(AggExpr {
            func: AggFunc::CountStar,
            arg: None,
            by: None,
            distinct: false,
            name: format!("count_star_{ordinal}"),
        });
    }
    if matches!(func, AggFunc::ArgMin | AggFunc::ArgMax) {
        if args.len() != 2 {
            return Err(Error::plan(format!(
                "aggregate {name} takes exactly two arguments (value, key), got {}",
                args.len()
            )));
        }
        if *distinct {
            return Err(Error::plan(format!(
                "aggregate {name} does not support DISTINCT"
            )));
        }
        return Ok(AggExpr {
            func,
            arg: Some(resolve_expr(&args[0], input)?),
            by: Some(resolve_expr(&args[1], input)?),
            distinct: false,
            name: format!("{name}_{ordinal}"),
        });
    }
    if args.len() != 1 {
        return Err(Error::plan(format!(
            "aggregate {name} takes exactly one argument, got {}",
            args.len()
        )));
    }
    Ok(AggExpr {
        func,
        arg: Some(resolve_expr(&args[0], input)?),
        by: None,
        distinct: *distinct,
        name: format!("{name}_{ordinal}"),
    })
}

/// Output column name for a projection item.
fn output_name(expr: &ast::Expr, alias: Option<&str>, ordinal: usize) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    match expr {
        ast::Expr::Column { name, .. } => name.clone(),
        ast::Expr::Function { name, .. } => name.clone(),
        _ => format!("col_{ordinal}"),
    }
}

// ---- FROM clause -------------------------------------------------------

fn plan_table_ref(
    tr: &TableRef,
    ctx: &mut PlanContext<'_>,
    steps: &mut Vec<Step>,
) -> Result<LogicalPlan> {
    match tr {
        TableRef::Table { name, alias } => {
            let visible = alias.as_deref().unwrap_or(name);
            if let Some(binding) = ctx.cte(name).cloned() {
                return Ok(LogicalPlan::TempScan {
                    name: binding.temp_name,
                    schema: Arc::new(binding.schema.qualify_all(visible)),
                });
            }
            let schema = ctx
                .provider
                .table_schema(name)
                .ok_or_else(|| Error::TableNotFound(name.clone()))?;
            Ok(LogicalPlan::TableScan {
                table: name.to_ascii_lowercase(),
                schema: Arc::new(schema.qualify_all(visible)),
            })
        }
        TableRef::Subquery { query, alias } => {
            let plan = plan_query_internal(query, ctx, steps)?;
            match alias {
                Some(a) => {
                    let schema = Arc::new(plan.schema().qualify_all(a));
                    // Re-qualification is metadata-only: wrap in an identity
                    // projection so the new schema is carried by the plan.
                    Ok(identity_projection(plan, schema))
                }
                None => Ok(plan),
            }
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let l = plan_table_ref(left, ctx, steps)?;
            let r = plan_table_ref(right, ctx, steps)?;
            build_join(l, r, *kind, on.as_ref())
        }
    }
}

/// Wrap `plan` in a projection that forwards every column under `schema`.
pub fn identity_projection(plan: LogicalPlan, schema: SchemaRef) -> LogicalPlan {
    let exprs = schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| PlanExpr::column(i, f.qualified_name()))
        .collect();
    LogicalPlan::Projection {
        input: Box::new(plan),
        exprs,
        schema,
    }
}

/// Build a join node, splitting the ON condition into equi-key pairs and a
/// residual filter.
pub fn build_join(
    left: LogicalPlan,
    right: LogicalPlan,
    kind: spinner_parser::JoinKind,
    on: Option<&ast::Expr>,
) -> Result<LogicalPlan> {
    let join_type = match kind {
        spinner_parser::JoinKind::Inner => JoinType::Inner,
        spinner_parser::JoinKind::LeftOuter => JoinType::Left,
        spinner_parser::JoinKind::RightOuter => JoinType::Right,
        spinner_parser::JoinKind::FullOuter => JoinType::Full,
        spinner_parser::JoinKind::Cross => JoinType::Cross,
    };
    let lw = left.schema().len();
    let combined = Arc::new(left.schema().join(&right.schema()));
    let mut keys = Vec::new();
    let mut residual: Option<PlanExpr> = None;
    if let Some(cond) = on {
        let mut conjuncts = Vec::new();
        split_conjuncts_ast(cond, &mut conjuncts);
        for c in conjuncts {
            let resolved = resolve_expr(&c, &combined)?;
            if let Some((lk, rk)) = as_equi_pair(&resolved, lw) {
                keys.push((lk, rk));
            } else {
                residual = Some(match residual {
                    Some(prev) => prev.binary(crate::expr::BinaryOp::And, resolved),
                    None => resolved,
                });
            }
        }
    }
    Ok(LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        join_type,
        on: keys,
        filter: residual,
        schema: combined,
    })
}

/// Split an AST expression into AND-connected conjuncts.
fn split_conjuncts_ast(expr: &ast::Expr, out: &mut Vec<ast::Expr>) {
    if let ast::Expr::BinaryOp {
        left,
        op: ast::BinaryOp::And,
        right,
    } = expr
    {
        split_conjuncts_ast(left, out);
        split_conjuncts_ast(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// If `expr` (resolved against the combined schema) is `a = b` with `a`
/// referencing only left columns and `b` only right columns (or swapped),
/// return (left key over left schema, right key over right schema).
fn as_equi_pair(expr: &PlanExpr, left_width: usize) -> Option<(PlanExpr, PlanExpr)> {
    let PlanExpr::Binary {
        left,
        op: crate::expr::BinaryOp::Eq,
        right,
    } = expr
    else {
        return None;
    };
    let lcols = left.referenced_columns();
    let rcols = right.referenced_columns();
    if lcols.is_empty() || rcols.is_empty() {
        return None;
    }
    let all_left = |cols: &[usize]| cols.iter().all(|&c| c < left_width);
    let all_right = |cols: &[usize]| cols.iter().all(|&c| c >= left_width);
    if all_left(&lcols) && all_right(&rcols) {
        let lk = (**left).clone();
        let rk = right.remap_columns(&|i| Some(i - left_width)).ok()?;
        return Some((lk, rk));
    }
    if all_right(&lcols) && all_left(&rcols) {
        let lk = (**right).clone();
        let rk = left.remap_columns(&|i| Some(i - left_width)).ok()?;
        return Some((lk, rk));
    }
    None
}

// ---- expression resolution ---------------------------------------------

/// Resolve an AST expression against `schema` into an evaluable
/// [`PlanExpr`]. Aggregate calls are rejected (they are handled by the
/// aggregate planning path).
pub fn resolve_expr(expr: &ast::Expr, schema: &Schema) -> Result<PlanExpr> {
    match expr {
        ast::Expr::Column { relation, name } => {
            let idx = schema.index_of(relation.as_deref(), name)?;
            Ok(PlanExpr::column(idx, schema.field(idx).qualified_name()))
        }
        ast::Expr::Literal(v) => Ok(PlanExpr::Literal(v.clone())),
        ast::Expr::BinaryOp { left, op, right } => Ok(PlanExpr::Binary {
            left: Box::new(resolve_expr(left, schema)?),
            op: *op,
            right: Box::new(resolve_expr(right, schema)?),
        }),
        ast::Expr::UnaryOp { op, expr } => Ok(PlanExpr::Unary {
            op: *op,
            expr: Box::new(resolve_expr(expr, schema)?),
        }),
        ast::Expr::Function { name, args, .. } => {
            if aggregate_func(name).is_some() {
                return Err(Error::plan(format!(
                    "aggregate function '{name}' is not allowed here"
                )));
            }
            let func = ScalarFn::from_name(name)
                .ok_or_else(|| Error::plan(format!("unknown function '{name}'")))?;
            Ok(PlanExpr::Scalar {
                func,
                args: args
                    .iter()
                    .map(|a| resolve_expr(a, schema))
                    .collect::<Result<_>>()?,
            })
        }
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let (branches, else_expr) = desugar_case(operand, branches, else_expr);
            let bs = branches
                .iter()
                .map(|(w, t)| Ok((resolve_expr(w, schema)?, resolve_expr(t, schema)?)))
                .collect::<Result<Vec<_>>>()?;
            let ee = match else_expr {
                Some(e) => Some(Box::new(resolve_expr(&e, schema)?)),
                None => None,
            };
            Ok(PlanExpr::Case {
                branches: bs,
                else_expr: ee,
            })
        }
        ast::Expr::Cast { expr, data_type } => Ok(PlanExpr::Cast {
            expr: Box::new(resolve_expr(expr, schema)?),
            to: *data_type,
        }),
        ast::Expr::IsNull { expr, negated } => Ok(PlanExpr::IsNull {
            expr: Box::new(resolve_expr(expr, schema)?),
            negated: *negated,
        }),
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => Ok(PlanExpr::InList {
            expr: Box::new(resolve_expr(expr, schema)?),
            list: list
                .iter()
                .map(|e| resolve_expr(e, schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        }),
        ast::Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let desugared = desugar_between(expr, low, high, *negated);
            resolve_expr(&desugared, schema)
        }
    }
}

/// Desugar operand-form CASE into searched form.
fn desugar_case(
    operand: &Option<Box<ast::Expr>>,
    branches: &[(ast::Expr, ast::Expr)],
    else_expr: &Option<Box<ast::Expr>>,
) -> (Vec<(ast::Expr, ast::Expr)>, Option<ast::Expr>) {
    let bs = match operand {
        Some(op) => branches
            .iter()
            .map(|(w, t)| {
                (
                    ast::Expr::BinaryOp {
                        left: op.clone(),
                        op: ast::BinaryOp::Eq,
                        right: Box::new(w.clone()),
                    },
                    t.clone(),
                )
            })
            .collect(),
        None => branches.to_vec(),
    };
    (bs, else_expr.as_deref().cloned())
}

/// Desugar BETWEEN into comparisons.
fn desugar_between(
    expr: &ast::Expr,
    low: &ast::Expr,
    high: &ast::Expr,
    negated: bool,
) -> ast::Expr {
    let ge = ast::Expr::BinaryOp {
        left: Box::new(expr.clone()),
        op: ast::BinaryOp::GtEq,
        right: Box::new(low.clone()),
    };
    let le = ast::Expr::BinaryOp {
        left: Box::new(expr.clone()),
        op: ast::BinaryOp::LtEq,
        right: Box::new(high.clone()),
    };
    let both = ast::Expr::BinaryOp {
        left: Box::new(ge),
        op: ast::BinaryOp::And,
        right: Box::new(le),
    };
    if negated {
        ast::Expr::UnaryOp {
            op: ast::UnaryOp::Not,
            expr: Box::new(both),
        }
    } else {
        both
    }
}

// ---- DML ----------------------------------------------------------------

fn plan_insert(
    table: &str,
    columns: Option<&[String]>,
    source: &InsertSource,
    provider: &dyn SchemaProvider,
    config: &EngineConfig,
) -> Result<PlannedStatement> {
    let table_schema = provider
        .table_schema(table)
        .ok_or_else(|| Error::TableNotFound(table.to_owned()))?;
    let source_plan = match source {
        InsertSource::Values(rows) => {
            let empty = Schema::empty();
            let mut resolved = Vec::with_capacity(rows.len());
            let width = rows.first().map(Vec::len).unwrap_or(0);
            for row in rows {
                if row.len() != width {
                    return Err(Error::plan("VALUES rows have inconsistent column counts"));
                }
                resolved.push(
                    row.iter()
                        .map(|e| resolve_expr(e, &empty))
                        .collect::<Result<Vec<_>>>()?,
                );
            }
            let fields = (0..width)
                .map(|i| Field::new(format!("col_{i}"), DataType::Null))
                .collect();
            QueryPlan::simple(LogicalPlan::Values {
                schema: Arc::new(Schema::new(fields)),
                rows: resolved,
            })
        }
        InsertSource::Query(q) => plan_query(q, provider, config)?,
    };
    // Map source columns into table positions, casting to declared types.
    let positions: Vec<usize> = match columns {
        Some(cols) => cols
            .iter()
            .map(|c| table_schema.index_of(None, c))
            .collect::<Result<_>>()?,
        None => (0..table_schema.len()).collect(),
    };
    let src_schema = source_plan.schema();
    if src_schema.len() != positions.len() {
        return Err(Error::plan(format!(
            "INSERT provides {} columns but {} are expected",
            src_schema.len(),
            positions.len()
        )));
    }
    let mut exprs: Vec<PlanExpr> = table_schema
        .fields()
        .iter()
        .map(|_| PlanExpr::Literal(Value::Null))
        .collect();
    for (src_idx, &tbl_idx) in positions.iter().enumerate() {
        exprs[tbl_idx] = PlanExpr::Cast {
            expr: Box::new(PlanExpr::column(
                src_idx,
                src_schema.field(src_idx).qualified_name(),
            )),
            to: table_schema.field(tbl_idx).data_type,
        };
    }
    let out_schema = Arc::new((*table_schema).clone());
    let root = LogicalPlan::Projection {
        input: Box::new(source_plan.root),
        exprs,
        schema: out_schema,
    };
    Ok(PlannedStatement::Insert {
        table: table.to_ascii_lowercase(),
        source: QueryPlan {
            steps: source_plan.steps,
            root,
        },
    })
}

fn plan_update(
    table: &str,
    assignments: &[(String, ast::Expr)],
    from: Option<&TableRef>,
    selection: Option<&ast::Expr>,
    provider: &dyn SchemaProvider,
    config: &EngineConfig,
) -> Result<PlannedStatement> {
    let table_schema = provider
        .table_schema(table)
        .ok_or_else(|| Error::TableNotFound(table.to_owned()))?;
    let qualified_table = table_schema.qualify_all(table);
    let mut ctx = PlanContext::new(provider, config);
    let mut steps = Vec::new();
    let from_plan = match from {
        Some(tr) => Some(plan_table_ref(tr, &mut ctx, &mut steps)?),
        None => None,
    };
    if !steps.is_empty() {
        return Err(Error::unsupported(
            "CTEs inside UPDATE ... FROM are not supported",
        ));
    }
    let combined = match &from_plan {
        Some(f) => qualified_table.join(&f.schema()),
        None => qualified_table.clone(),
    };
    let resolved_assignments = assignments
        .iter()
        .map(|(col, e)| {
            let idx = qualified_table.index_of(None, col)?;
            let expr = resolve_expr(e, &combined)?;
            Ok((idx, expr))
        })
        .collect::<Result<Vec<_>>>()?;
    let predicate = match selection {
        Some(e) => Some(resolve_expr(e, &combined)?),
        None => None,
    };
    Ok(PlannedStatement::Update {
        table: table.to_ascii_lowercase(),
        from: from_plan,
        assignments: resolved_assignments,
        predicate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_parser::parse_sql;

    struct TestProvider;

    impl SchemaProvider for TestProvider {
        fn table_schema(&self, name: &str) -> Option<SchemaRef> {
            match name.to_ascii_lowercase().as_str() {
                "edges" => Some(Arc::new(Schema::new(vec![
                    Field::new("src", DataType::Int),
                    Field::new("dst", DataType::Int),
                    Field::new("weight", DataType::Float),
                ]))),
                "vertexstatus" => Some(Arc::new(Schema::new(vec![
                    Field::new("node", DataType::Int),
                    Field::new("status", DataType::Int),
                ]))),
                _ => None,
            }
        }

        fn table_primary_key(&self, _name: &str) -> Option<usize> {
            None
        }
    }

    fn plan(sql: &str) -> QueryPlan {
        let stmt = parse_sql(sql).unwrap();
        let Statement::Query(q) = stmt else {
            panic!("not a query")
        };
        plan_query(&q, &TestProvider, &EngineConfig::default()).unwrap()
    }

    fn plan_err(sql: &str) -> Error {
        let stmt = parse_sql(sql).unwrap();
        let Statement::Query(q) = stmt else {
            panic!("not a query")
        };
        plan_query(&q, &TestProvider, &EngineConfig::default()).unwrap_err()
    }

    #[test]
    fn plain_projection_schema() {
        let p = plan("SELECT src, weight * 2 AS w2 FROM edges");
        let s = p.schema();
        assert_eq!(s.names(), vec!["src", "w2"]);
        assert_eq!(s.field(1).data_type, DataType::Float);
    }

    #[test]
    fn missing_table_errors() {
        let err = plan_err("SELECT * FROM nope");
        assert!(matches!(err, Error::TableNotFound(_)));
    }

    #[test]
    fn missing_column_errors() {
        let err = plan_err("SELECT ghost FROM edges");
        assert!(matches!(err, Error::ColumnNotFound(_)));
    }

    #[test]
    fn wildcard_expands_with_qualifiers() {
        let p = plan("SELECT * FROM edges e JOIN vertexStatus v ON e.src = v.node");
        assert_eq!(p.schema().len(), 5);
    }

    #[test]
    fn join_extracts_equi_keys() {
        let p = plan(
            "SELECT e.src FROM edges e JOIN vertexStatus v ON e.src = v.node AND e.weight > 1.0",
        );
        let LogicalPlan::Projection { input, .. } = &p.root else {
            panic!()
        };
        let LogicalPlan::Join { on, filter, .. } = &**input else {
            panic!()
        };
        assert_eq!(on.len(), 1);
        assert!(filter.is_some());
    }

    #[test]
    fn aggregate_plan_shape() {
        let p = plan("SELECT src, COUNT(dst) AS friends FROM edges GROUP BY src");
        let LogicalPlan::Projection { input, schema, .. } = &p.root else {
            panic!()
        };
        assert!(matches!(&**input, LogicalPlan::Aggregate { .. }));
        assert_eq!(schema.names(), vec!["src", "friends"]);
    }

    #[test]
    fn group_by_expression_matches_select_copy() {
        // The PR query groups by `rank + delta`-style expressions.
        let p = plan("SELECT src + dst, COUNT(*) FROM edges GROUP BY src + dst");
        let LogicalPlan::Projection { exprs, .. } = &p.root else {
            panic!()
        };
        // first output is a positional ref to group column 0
        assert!(matches!(&exprs[0], PlanExpr::Column(c) if c.index == 0));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = plan_err("SELECT src, dst FROM edges GROUP BY src");
        assert!(matches!(err, Error::Plan(m) if m.contains("GROUP BY")));
    }

    #[test]
    fn nested_aggregate_rejected() {
        let err = plan_err("SELECT SUM(COUNT(dst)) FROM edges GROUP BY src");
        assert!(matches!(err, Error::Plan(m) if m.contains("nested")));
    }

    #[test]
    fn having_becomes_filter_over_aggregate() {
        let p = plan("SELECT src FROM edges GROUP BY src HAVING COUNT(*) > 2");
        let LogicalPlan::Projection { input, .. } = &p.root else {
            panic!()
        };
        let LogicalPlan::Filter { input: agg, .. } = &**input else {
            panic!()
        };
        assert!(matches!(&**agg, LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn regular_cte_materializes() {
        let p = plan("WITH t AS (SELECT src FROM edges) SELECT * FROM t");
        assert_eq!(p.steps.len(), 1);
        assert!(matches!(&p.steps[0], Step::Materialize { .. }));
        assert!(matches!(&p.root, LogicalPlan::Projection { .. }));
    }

    #[test]
    fn iterative_cte_produces_loop_step() {
        let p = plan(
            "WITH ITERATIVE pr (node, rank) AS (
                SELECT src, 1.0 FROM edges
             ITERATE
                SELECT node, rank * 0.5 FROM pr
             UNTIL 3 ITERATIONS)
             SELECT * FROM pr",
        );
        assert_eq!(p.steps.len(), 2);
        assert!(matches!(&p.steps[0], Step::Materialize { .. }));
        let Step::Loop(l) = &p.steps[1] else {
            panic!("expected loop step")
        };
        assert_eq!(l.cte_display_name, "pr");
        assert_eq!(l.termination, crate::TerminationPlan::Iterations(3));
        // No WHERE in Ri and optimization on => rename path (no merge).
        assert!(matches!(
            &l.kind,
            crate::LoopKind::Iterative { merge: false, .. }
        ));
    }

    #[test]
    fn iterative_cte_with_where_uses_merge() {
        let p = plan(
            "WITH ITERATIVE pr (node, rank) AS (
                SELECT src, 1.0 FROM edges
             ITERATE
                SELECT node, rank * 0.5 FROM pr WHERE node > 3
             UNTIL 3 ITERATIONS)
             SELECT * FROM pr",
        );
        let Step::Loop(l) = &p.steps[1] else { panic!() };
        assert!(matches!(
            &l.kind,
            crate::LoopKind::Iterative { merge: true, .. }
        ));
        // body: materialize working, merge, rename
        assert_eq!(l.body.len(), 3);
    }

    #[test]
    fn naive_config_forces_merge_path() {
        let stmt = parse_sql(
            "WITH ITERATIVE pr (node, rank) AS (
                SELECT src, 1.0 FROM edges
             ITERATE SELECT node, rank * 0.5 FROM pr
             UNTIL 3 ITERATIONS) SELECT * FROM pr",
        )
        .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        let p = plan_query(&q, &TestProvider, &EngineConfig::naive()).unwrap();
        let Step::Loop(l) = &p.steps[1] else { panic!() };
        assert!(matches!(
            &l.kind,
            crate::LoopKind::Iterative { merge: true, .. }
        ));
    }

    #[test]
    fn cte_declared_column_count_checked() {
        let err = plan_err("WITH t (a, b) AS (SELECT src FROM edges) SELECT * FROM t");
        assert!(matches!(err, Error::Plan(m) if m.contains("declares")));
    }

    #[test]
    fn subquery_alias_requalifies() {
        let p = plan("SELECT q.src FROM (SELECT src FROM edges) AS q");
        assert_eq!(p.schema().names(), vec!["src"]);
    }

    #[test]
    fn union_widens_types() {
        let p = plan("SELECT src FROM edges UNION SELECT weight FROM edges");
        assert_eq!(p.schema().field(0).data_type, DataType::Float);
    }

    #[test]
    fn insert_pads_and_casts() {
        let stmt = parse_sql("INSERT INTO edges (dst) SELECT src FROM edges").unwrap();
        let planned = plan_statement(&stmt, &TestProvider, &EngineConfig::default()).unwrap();
        let PlannedStatement::Insert { source, .. } = planned else {
            panic!()
        };
        assert_eq!(source.schema().len(), 3);
    }

    #[test]
    fn update_with_from_resolves_combined_schema() {
        let stmt = parse_sql(
            "UPDATE vertexStatus SET status = e.src FROM edges AS e \
             WHERE vertexStatus.node = e.dst",
        )
        .unwrap();
        let planned = plan_statement(&stmt, &TestProvider, &EngineConfig::default()).unwrap();
        let PlannedStatement::Update {
            assignments,
            from,
            predicate,
            ..
        } = planned
        else {
            panic!()
        };
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].0, 1);
        assert!(from.is_some());
        assert!(predicate.is_some());
    }

    #[test]
    fn order_by_resolves_output_alias() {
        let p = plan("SELECT src AS s FROM edges ORDER BY s DESC LIMIT 5");
        assert!(matches!(&p.root, LogicalPlan::Limit { .. }));
    }

    #[test]
    fn select_without_from() {
        let p = plan("SELECT 1 + 1 AS two");
        assert_eq!(p.schema().names(), vec!["two"]);
    }

    #[test]
    fn recursive_cte_builds_fixed_point_loop() {
        let p = plan(
            "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5) \
             SELECT n FROM r",
        );
        let has_loop = p.steps.iter().any(
            |s| matches!(s, Step::Loop(l) if matches!(l.kind, crate::LoopKind::FixedPoint { .. })),
        );
        assert!(has_loop);
    }
}
