//! Resolved expression IR and its row-at-a-time evaluator.
//!
//! After planning, every column reference is an index into the input row
//! ([`ColumnRef`]), so evaluation is lookup + match dispatch with no name
//! resolution on the hot path. Three-valued logic follows SQL: comparisons
//! with NULL yield NULL, `AND`/`OR` use Kleene semantics, and predicates
//! treat NULL as "do not keep".

use std::fmt;

use spinner_common::{DataType, Error, Result, Schema, Value};

/// A resolved reference to an input column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Position in the input row.
    pub index: usize,
    /// Qualified display name, kept for EXPLAIN and for re-binding
    /// expressions when optimizer rules move them across operators.
    pub name: String,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` — non-NULL inputs.
    Count,
    /// `COUNT(*)` — all rows.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
    /// `ARG_MIN(val, key)` — the `val` of the row with the smallest `key`.
    ArgMin,
    /// `ARG_MAX(val, key)` — the `val` of the row with the largest `key`.
    ArgMax,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::CountStar => "count(*)",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::ArgMin => "arg_min",
            AggFunc::ArgMax => "arg_max",
        })
    }
}

/// One aggregate call inside an [`Aggregate`](crate::LogicalPlan::Aggregate)
/// node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Which aggregate function.
    pub func: AggFunc,
    /// Argument; `None` only for `COUNT(*)`.
    pub arg: Option<PlanExpr>,
    /// Ordering key — the second argument of `ARG_MIN`/`ARG_MAX`; `None`
    /// for every single-argument aggregate.
    pub by: Option<PlanExpr>,
    /// `true` for `AGG(DISTINCT ...)`.
    pub distinct: bool,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Result type of the aggregate given its argument type.
    pub fn output_type(&self, input: &Schema) -> DataType {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::ArgMin | AggFunc::ArgMax => self
                .arg
                .as_ref()
                .map(|a| a.data_type(input))
                .unwrap_or(DataType::Null),
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFn {
    /// Smallest non-NULL argument.
    Least,
    /// Largest non-NULL argument.
    Greatest,
    /// First non-NULL argument.
    Coalesce,
    /// Round up to an integer.
    Ceiling,
    /// Round down to an integer.
    Floor,
    /// Round to N digits (default 0).
    Round,
    /// Absolute value.
    Abs,
    /// `mod(a, b)` — same semantics as the `%` operator.
    Mod,
    /// Square root.
    Sqrt,
    /// `e^x`.
    Exp,
    /// Natural logarithm.
    Ln,
    /// `power(a, b)` = `a^b`.
    Power,
    /// -1, 0 or 1 by sign.
    Sign,
    /// Uppercase a string.
    Upper,
    /// Lowercase a string.
    Lower,
    /// Character count of a string.
    Length,
    /// Concatenate arguments, skipping NULLs.
    Concat,
    /// NULL when both arguments are equal, else the first.
    NullIf,
}

impl ScalarFn {
    /// Look up a scalar function by its SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFn> {
        Some(match name {
            "least" => ScalarFn::Least,
            "greatest" => ScalarFn::Greatest,
            "coalesce" => ScalarFn::Coalesce,
            "ceiling" | "ceil" => ScalarFn::Ceiling,
            "floor" => ScalarFn::Floor,
            "round" => ScalarFn::Round,
            "abs" => ScalarFn::Abs,
            "mod" => ScalarFn::Mod,
            "sqrt" => ScalarFn::Sqrt,
            "exp" => ScalarFn::Exp,
            "ln" => ScalarFn::Ln,
            "power" | "pow" => ScalarFn::Power,
            "sign" => ScalarFn::Sign,
            "upper" => ScalarFn::Upper,
            "lower" => ScalarFn::Lower,
            "length" => ScalarFn::Length,
            "concat" => ScalarFn::Concat,
            "nullif" => ScalarFn::NullIf,
            _ => return None,
        })
    }

    /// SQL name for display.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFn::Least => "least",
            ScalarFn::Greatest => "greatest",
            ScalarFn::Coalesce => "coalesce",
            ScalarFn::Ceiling => "ceiling",
            ScalarFn::Floor => "floor",
            ScalarFn::Round => "round",
            ScalarFn::Abs => "abs",
            ScalarFn::Mod => "mod",
            ScalarFn::Sqrt => "sqrt",
            ScalarFn::Exp => "exp",
            ScalarFn::Ln => "ln",
            ScalarFn::Power => "power",
            ScalarFn::Sign => "sign",
            ScalarFn::Upper => "upper",
            ScalarFn::Lower => "lower",
            ScalarFn::Length => "length",
            ScalarFn::Concat => "concat",
            ScalarFn::NullIf => "nullif",
        }
    }

    fn arity_ok(&self, n: usize) -> bool {
        match self {
            ScalarFn::Least | ScalarFn::Greatest | ScalarFn::Coalesce | ScalarFn::Concat => n >= 1,
            ScalarFn::Round => n == 1 || n == 2,
            ScalarFn::Mod | ScalarFn::Power | ScalarFn::NullIf => n == 2,
            _ => n == 1,
        }
    }
}

/// Binary operators (shared shape with the AST, but resolved).
pub use spinner_parser::BinaryOp;
/// Unary operators.
pub use spinner_parser::UnaryOp;

/// A resolved scalar expression, evaluable against a row.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanExpr {
    /// Input column by position.
    Column(ColumnRef),
    /// Constant.
    Literal(Value),
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<PlanExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<PlanExpr>,
    },
    /// `op expr`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<PlanExpr>,
    },
    /// Scalar function call.
    Scalar {
        /// Which function.
        func: ScalarFn,
        /// Arguments in call order.
        args: Vec<PlanExpr>,
    },
    /// `CASE` (searched form; operand form is desugared by the builder).
    Case {
        /// `(WHEN, THEN)` pairs, tried in order.
        branches: Vec<(PlanExpr, PlanExpr)>,
        /// `ELSE` result; NULL when absent.
        else_expr: Option<Box<PlanExpr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Input expression.
        expr: Box<PlanExpr>,
        /// Target type.
        to: DataType,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<PlanExpr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<PlanExpr>,
        /// Candidate values.
        list: Vec<PlanExpr>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
}

impl PlanExpr {
    /// Column helper.
    pub fn column(index: usize, name: impl Into<String>) -> PlanExpr {
        PlanExpr::Column(ColumnRef {
            index,
            name: name.into(),
        })
    }

    /// Literal helper.
    pub fn literal(v: impl Into<Value>) -> PlanExpr {
        PlanExpr::Literal(v.into())
    }

    /// `self op other` helper.
    pub fn binary(self, op: BinaryOp, other: PlanExpr) -> PlanExpr {
        PlanExpr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// Evaluate against one input row.
    pub fn evaluate(&self, row: &[Value]) -> Result<Value> {
        match self {
            PlanExpr::Column(c) => row.get(c.index).cloned().ok_or_else(|| {
                Error::execution(format!(
                    "column index {} ('{}') out of bounds for row of width {}",
                    c.index,
                    c.name,
                    row.len()
                ))
            }),
            PlanExpr::Literal(v) => Ok(v.clone()),
            PlanExpr::Binary { left, op, right } => eval_binary(*op, left, right, row),
            PlanExpr::Unary { op, expr } => {
                let v = expr.evaluate(row)?;
                match op {
                    UnaryOp::Not => Ok(match v.as_bool()? {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    }),
                    UnaryOp::Minus => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(i.checked_neg().ok_or_else(|| {
                            Error::Arithmetic("integer negation overflow".into())
                        })?)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(Error::type_error(format!(
                            "cannot negate {}",
                            other.data_type()
                        ))),
                    },
                    UnaryOp::Plus => Ok(v),
                }
            }
            PlanExpr::Scalar { func, args } => eval_scalar(*func, args, row),
            PlanExpr::Case {
                branches,
                else_expr,
            } => {
                for (when, then) in branches {
                    if when.evaluate(row)?.as_bool()? == Some(true) {
                        return then.evaluate(row);
                    }
                }
                match else_expr {
                    Some(e) => e.evaluate(row),
                    None => Ok(Value::Null),
                }
            }
            PlanExpr::Cast { expr, to } => expr.evaluate(row)?.cast(*to),
            PlanExpr::IsNull { expr, negated } => {
                let is_null = expr.evaluate(row)?.is_null();
                Ok(Value::Bool(is_null != *negated))
            }
            PlanExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.evaluate(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.evaluate(row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
        }
    }

    /// Evaluate as a filter predicate: NULL counts as "drop the row".
    pub fn matches(&self, row: &[Value]) -> Result<bool> {
        Ok(self.evaluate(row)?.as_bool()? == Some(true))
    }

    /// Static result type given the input schema.
    pub fn data_type(&self, input: &Schema) -> DataType {
        match self {
            PlanExpr::Column(c) => input
                .fields()
                .get(c.index)
                .map(|f| f.data_type)
                .unwrap_or(DataType::Null),
            PlanExpr::Literal(v) => v.data_type(),
            PlanExpr::Binary { left, op, right } => match op {
                BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Modulo => {
                    left.data_type(input).widen(right.data_type(input))
                }
                BinaryOp::Divide => {
                    // Integer division truncates; mixed widens to float.
                    left.data_type(input).widen(right.data_type(input))
                }
                _ => DataType::Bool,
            },
            PlanExpr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Bool,
                _ => expr.data_type(input),
            },
            PlanExpr::Scalar { func, args } => match func {
                ScalarFn::Ceiling | ScalarFn::Floor => DataType::Int,
                ScalarFn::Round
                | ScalarFn::Sqrt
                | ScalarFn::Exp
                | ScalarFn::Ln
                | ScalarFn::Power => DataType::Float,
                ScalarFn::Sign | ScalarFn::Length => DataType::Int,
                ScalarFn::Upper | ScalarFn::Lower | ScalarFn::Concat => DataType::Text,
                ScalarFn::Abs | ScalarFn::NullIf => args
                    .first()
                    .map(|a| a.data_type(input))
                    .unwrap_or(DataType::Null),
                ScalarFn::Mod => args
                    .first()
                    .map(|a| a.data_type(input))
                    .unwrap_or(DataType::Null)
                    .widen(
                        args.get(1)
                            .map(|a| a.data_type(input))
                            .unwrap_or(DataType::Null),
                    ),
                ScalarFn::Least | ScalarFn::Greatest | ScalarFn::Coalesce => {
                    let mut t = DataType::Null;
                    for a in args {
                        t = t.widen(a.data_type(input));
                    }
                    t
                }
            },
            PlanExpr::Case {
                branches,
                else_expr,
            } => {
                let mut t = DataType::Null;
                for (_, then) in branches {
                    t = t.widen(then.data_type(input));
                }
                if let Some(e) = else_expr {
                    t = t.widen(e.data_type(input));
                }
                t
            }
            PlanExpr::Cast { to, .. } => *to,
            PlanExpr::IsNull { .. } | PlanExpr::InList { .. } => DataType::Bool,
        }
    }

    /// Indices of all referenced input columns (deduplicated, sorted).
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let PlanExpr::Column(c) = e {
                cols.push(c.index);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Pre-order visit of this expression tree.
    pub fn walk(&self, f: &mut impl FnMut(&PlanExpr)) {
        f(self);
        match self {
            PlanExpr::Column(_) | PlanExpr::Literal(_) => {}
            PlanExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            PlanExpr::Unary { expr, .. } => expr.walk(f),
            PlanExpr::Scalar { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            PlanExpr::Case {
                branches,
                else_expr,
            } => {
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            PlanExpr::Cast { expr, .. } => expr.walk(f),
            PlanExpr::IsNull { expr, .. } => expr.walk(f),
            PlanExpr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
        }
    }

    /// Rewrite every column index through `map` (old index → new index).
    /// Fails if a referenced column has no mapping.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Result<PlanExpr> {
        Ok(match self {
            PlanExpr::Column(c) => {
                let new = map(c.index).ok_or_else(|| {
                    Error::plan(format!("cannot remap column '{}' across operator", c.name))
                })?;
                PlanExpr::Column(ColumnRef {
                    index: new,
                    name: c.name.clone(),
                })
            }
            PlanExpr::Literal(v) => PlanExpr::Literal(v.clone()),
            PlanExpr::Binary { left, op, right } => PlanExpr::Binary {
                left: Box::new(left.remap_columns(map)?),
                op: *op,
                right: Box::new(right.remap_columns(map)?),
            },
            PlanExpr::Unary { op, expr } => PlanExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap_columns(map)?),
            },
            PlanExpr::Scalar { func, args } => PlanExpr::Scalar {
                func: *func,
                args: args
                    .iter()
                    .map(|a| a.remap_columns(map))
                    .collect::<Result<_>>()?,
            },
            PlanExpr::Case {
                branches,
                else_expr,
            } => PlanExpr::Case {
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((w.remap_columns(map)?, t.remap_columns(map)?)))
                    .collect::<Result<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(e.remap_columns(map)?)),
                    None => None,
                },
            },
            PlanExpr::Cast { expr, to } => PlanExpr::Cast {
                expr: Box::new(expr.remap_columns(map)?),
                to: *to,
            },
            PlanExpr::IsNull { expr, negated } => PlanExpr::IsNull {
                expr: Box::new(expr.remap_columns(map)?),
                negated: *negated,
            },
            PlanExpr::InList {
                expr,
                list,
                negated,
            } => PlanExpr::InList {
                expr: Box::new(expr.remap_columns(map)?),
                list: list
                    .iter()
                    .map(|e| e.remap_columns(map))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
        })
    }

    /// True when the expression contains no column references (a constant).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.walk(&mut |e| {
            if matches!(e, PlanExpr::Column(_)) {
                constant = false;
            }
        });
        constant
    }
}

fn eval_binary(op: BinaryOp, left: &PlanExpr, right: &PlanExpr, row: &[Value]) -> Result<Value> {
    // Kleene logic needs lazy/short-circuit handling per operand nullness.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = left.evaluate(row)?.as_bool()?;
        // Short-circuit where the left side decides.
        match (op, l) {
            (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = right.evaluate(row)?.as_bool()?;
        return Ok(match (op, l, r) {
            (BinaryOp::And, Some(true), Some(b)) => Value::Bool(b),
            (BinaryOp::And, Some(b), Some(true)) => Value::Bool(b),
            (BinaryOp::And, _, Some(false)) | (BinaryOp::And, Some(false), _) => Value::Bool(false),
            (BinaryOp::Or, Some(false), Some(b)) => Value::Bool(b),
            (BinaryOp::Or, Some(b), Some(false)) => Value::Bool(b),
            (BinaryOp::Or, _, Some(true)) | (BinaryOp::Or, Some(true), _) => Value::Bool(true),
            _ => Value::Null,
        });
    }
    let l = left.evaluate(row)?;
    let r = right.evaluate(row)?;
    match op {
        BinaryOp::Plus
        | BinaryOp::Minus
        | BinaryOp::Multiply
        | BinaryOp::Divide
        | BinaryOp::Modulo => eval_arithmetic(op, &l, &r),
        BinaryOp::Eq => Ok(bool3(l.sql_eq(&r))),
        BinaryOp::NotEq => Ok(bool3(l.sql_eq(&r).map(|b| !b))),
        BinaryOp::Lt => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_lt()))),
        BinaryOp::LtEq => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_le()))),
        BinaryOp::Gt => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_gt()))),
        BinaryOp::GtEq => Ok(bool3(l.sql_cmp(&r).map(|o| o.is_ge()))),
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn bool3(b: Option<bool>) -> Value {
    match b {
        Some(v) => Value::Bool(v),
        None => Value::Null,
    }
}

fn eval_arithmetic(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let both_int = l.data_type() == DataType::Int && r.data_type() == DataType::Int;
    if both_int {
        let (a, b) = (l.as_i64()?, r.as_i64()?);
        let out = match op {
            BinaryOp::Plus => a.checked_add(b),
            BinaryOp::Minus => a.checked_sub(b),
            BinaryOp::Multiply => a.checked_mul(b),
            BinaryOp::Divide => {
                if b == 0 {
                    return Err(Error::Arithmetic("division by zero".into()));
                }
                a.checked_div(b)
            }
            BinaryOp::Modulo => {
                if b == 0 {
                    return Err(Error::Arithmetic("modulo by zero".into()));
                }
                a.checked_rem(b)
            }
            _ => unreachable!(),
        };
        return out
            .map(Value::Int)
            .ok_or_else(|| Error::Arithmetic(format!("integer overflow in {a} {op} {b}")));
    }
    let (a, b) = (l.as_f64()?, r.as_f64()?);
    let out = match op {
        BinaryOp::Plus => a + b,
        BinaryOp::Minus => a - b,
        BinaryOp::Multiply => a * b,
        BinaryOp::Divide => {
            if b == 0.0 {
                return Err(Error::Arithmetic("division by zero".into()));
            }
            a / b
        }
        BinaryOp::Modulo => {
            if b == 0.0 {
                return Err(Error::Arithmetic("modulo by zero".into()));
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

fn eval_scalar(func: ScalarFn, args: &[PlanExpr], row: &[Value]) -> Result<Value> {
    if !func.arity_ok(args.len()) {
        return Err(Error::plan(format!(
            "wrong number of arguments ({}) for {}",
            args.len(),
            func.name()
        )));
    }
    match func {
        ScalarFn::Coalesce => {
            for a in args {
                let v = a.evaluate(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFn::Least | ScalarFn::Greatest => {
            // SQL LEAST/GREATEST ignore NULL arguments.
            let mut best: Option<Value> = None;
            for a in args {
                let v = a.evaluate(row)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match func {
                            ScalarFn::Least => v.cmp_total(&b).is_lt(),
                            _ => v.cmp_total(&b).is_gt(),
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        ScalarFn::NullIf => {
            let a = args[0].evaluate(row)?;
            let b = args[1].evaluate(row)?;
            if a.sql_eq(&b) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(a)
            }
        }
        ScalarFn::Concat => {
            let mut s = String::new();
            for a in args {
                let v = a.evaluate(row)?;
                if !v.is_null() {
                    s.push_str(&v.to_string());
                }
            }
            Ok(Value::Text(s))
        }
        _ => {
            let v0 = args[0].evaluate(row)?;
            if v0.is_null() {
                return Ok(Value::Null);
            }
            match func {
                ScalarFn::Ceiling => Ok(Value::Int(v0.as_f64()?.ceil() as i64)),
                ScalarFn::Floor => Ok(Value::Int(v0.as_f64()?.floor() as i64)),
                ScalarFn::Round => {
                    let digits = match args.get(1) {
                        Some(d) => {
                            let dv = d.evaluate(row)?;
                            if dv.is_null() {
                                return Ok(Value::Null);
                            }
                            dv.as_i64()?
                        }
                        None => 0,
                    };
                    let factor = 10f64.powi(digits as i32);
                    Ok(Value::Float((v0.as_f64()? * factor).round() / factor))
                }
                ScalarFn::Abs => match v0 {
                    Value::Int(i) => {
                        Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                            Error::Arithmetic("integer overflow in abs".into())
                        })?))
                    }
                    other => Ok(Value::Float(other.as_f64()?.abs())),
                },
                ScalarFn::Mod => {
                    let v1 = args[1].evaluate(row)?;
                    eval_arithmetic(BinaryOp::Modulo, &v0, &v1)
                }
                ScalarFn::Sqrt => {
                    let f = v0.as_f64()?;
                    if f < 0.0 {
                        return Err(Error::Arithmetic("sqrt of negative number".into()));
                    }
                    Ok(Value::Float(f.sqrt()))
                }
                ScalarFn::Exp => Ok(Value::Float(v0.as_f64()?.exp())),
                ScalarFn::Ln => {
                    let f = v0.as_f64()?;
                    if f <= 0.0 {
                        return Err(Error::Arithmetic("ln of non-positive number".into()));
                    }
                    Ok(Value::Float(f.ln()))
                }
                ScalarFn::Power => {
                    let v1 = args[1].evaluate(row)?;
                    if v1.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Float(v0.as_f64()?.powf(v1.as_f64()?)))
                }
                ScalarFn::Sign => {
                    let f = v0.as_f64()?;
                    Ok(Value::Int(if f > 0.0 {
                        1
                    } else if f < 0.0 {
                        -1
                    } else {
                        0
                    }))
                }
                ScalarFn::Upper => Ok(Value::Text(v0.to_string().to_uppercase())),
                ScalarFn::Lower => Ok(Value::Text(v0.to_string().to_lowercase())),
                ScalarFn::Length => Ok(Value::Int(v0.to_string().chars().count() as i64)),
                ScalarFn::Least
                | ScalarFn::Greatest
                | ScalarFn::Coalesce
                | ScalarFn::Concat
                | ScalarFn::NullIf => unreachable!("handled above"),
            }
        }
    }
}

impl fmt::Display for PlanExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanExpr::Column(c) => write!(f, "{}#{}", c.name, c.index),
            PlanExpr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            PlanExpr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            PlanExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Minus => write!(f, "(-{expr})"),
                UnaryOp::Plus => write!(f, "(+{expr})"),
            },
            PlanExpr::Scalar { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            PlanExpr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            PlanExpr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            PlanExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            PlanExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[Value]) -> Vec<Value> {
        vals.to_vec()
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = PlanExpr::literal(2i64).binary(BinaryOp::Plus, PlanExpr::literal(3i64));
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Int(5));
        let e = PlanExpr::literal(2i64).binary(BinaryOp::Multiply, PlanExpr::literal(1.5));
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = PlanExpr::literal(1i64).binary(BinaryOp::Divide, PlanExpr::literal(0i64));
        assert!(matches!(e.evaluate(&[]), Err(Error::Arithmetic(_))));
        let e = PlanExpr::literal(1.0).binary(BinaryOp::Divide, PlanExpr::literal(0.0));
        assert!(matches!(e.evaluate(&[]), Err(Error::Arithmetic(_))));
    }

    #[test]
    fn integer_overflow_detected() {
        let e = PlanExpr::literal(i64::MAX).binary(BinaryOp::Plus, PlanExpr::literal(1i64));
        assert!(matches!(e.evaluate(&[]), Err(Error::Arithmetic(_))));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = PlanExpr::Literal(Value::Null).binary(BinaryOp::Plus, PlanExpr::literal(1i64));
        assert!(e.evaluate(&[]).unwrap().is_null());
    }

    #[test]
    fn kleene_and_or() {
        let null = PlanExpr::Literal(Value::Null);
        let t = PlanExpr::literal(true);
        let f = PlanExpr::literal(false);
        // false AND NULL = false
        assert_eq!(
            f.clone()
                .binary(BinaryOp::And, null.clone())
                .evaluate(&[])
                .unwrap(),
            Value::Bool(false)
        );
        // NULL AND false = false (right side decides)
        assert_eq!(
            null.clone()
                .binary(BinaryOp::And, f.clone())
                .evaluate(&[])
                .unwrap(),
            Value::Bool(false)
        );
        // true OR NULL = true
        assert_eq!(
            t.clone()
                .binary(BinaryOp::Or, null.clone())
                .evaluate(&[])
                .unwrap(),
            Value::Bool(true)
        );
        // NULL OR NULL = NULL
        assert!(null
            .clone()
            .binary(BinaryOp::Or, null)
            .evaluate(&[])
            .unwrap()
            .is_null());
    }

    #[test]
    fn comparisons_with_null_are_null() {
        let e = PlanExpr::Literal(Value::Null).binary(BinaryOp::Eq, PlanExpr::literal(1i64));
        assert!(e.evaluate(&[]).unwrap().is_null());
        assert!(!e.matches(&[]).unwrap());
    }

    #[test]
    fn least_greatest_skip_nulls() {
        let e = PlanExpr::Scalar {
            func: ScalarFn::Least,
            args: vec![
                PlanExpr::Literal(Value::Null),
                PlanExpr::literal(5i64),
                PlanExpr::literal(3i64),
            ],
        };
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Int(3));
        let e = PlanExpr::Scalar {
            func: ScalarFn::Greatest,
            args: vec![PlanExpr::Literal(Value::Null)],
        };
        assert!(e.evaluate(&[]).unwrap().is_null());
    }

    #[test]
    fn coalesce_takes_first_non_null() {
        let e = PlanExpr::Scalar {
            func: ScalarFn::Coalesce,
            args: vec![PlanExpr::Literal(Value::Null), PlanExpr::literal(9i64)],
        };
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Int(9));
    }

    #[test]
    fn round_with_digits() {
        let e = PlanExpr::Scalar {
            func: ScalarFn::Round,
            args: vec![PlanExpr::literal(2.34567), PlanExpr::literal(2i64)],
        };
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Float(2.35));
    }

    #[test]
    fn ceiling_matches_ff_query_semantics() {
        // ceiling(count * (1.0 - (src % 10) / 100.0)) from Figure 6
        let e = PlanExpr::Scalar {
            func: ScalarFn::Ceiling,
            args: vec![PlanExpr::literal(4.2)],
        };
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn mod_function_and_operator_agree() {
        let f = PlanExpr::Scalar {
            func: ScalarFn::Mod,
            args: vec![PlanExpr::literal(17i64), PlanExpr::literal(5i64)],
        };
        let o = PlanExpr::literal(17i64).binary(BinaryOp::Modulo, PlanExpr::literal(5i64));
        assert_eq!(f.evaluate(&[]).unwrap(), o.evaluate(&[]).unwrap());
    }

    #[test]
    fn case_returns_null_without_else() {
        let e = PlanExpr::Case {
            branches: vec![(PlanExpr::literal(false), PlanExpr::literal(1i64))],
            else_expr: None,
        };
        assert!(e.evaluate(&[]).unwrap().is_null());
    }

    #[test]
    fn in_list_three_valued() {
        // 1 IN (2, NULL) => NULL
        let e = PlanExpr::InList {
            expr: Box::new(PlanExpr::literal(1i64)),
            list: vec![PlanExpr::literal(2i64), PlanExpr::Literal(Value::Null)],
            negated: false,
        };
        assert!(e.evaluate(&[]).unwrap().is_null());
        // 2 IN (2, NULL) => true
        let e = PlanExpr::InList {
            expr: Box::new(PlanExpr::literal(2i64)),
            list: vec![PlanExpr::literal(2i64), PlanExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(e.evaluate(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn column_reads_row() {
        let e = PlanExpr::column(1, "b");
        assert_eq!(
            e.evaluate(&row(&[Value::Int(1), Value::Int(2)])).unwrap(),
            Value::Int(2)
        );
        assert!(e.evaluate(&row(&[Value::Int(1)])).is_err());
    }

    #[test]
    fn remap_columns_moves_indices() {
        let e = PlanExpr::column(0, "a").binary(BinaryOp::Plus, PlanExpr::column(2, "c"));
        let remapped = e.remap_columns(&|i| Some(i + 10)).unwrap();
        assert_eq!(remapped.referenced_columns(), vec![10, 12]);
        assert!(e.remap_columns(&|_| None).is_err());
    }

    #[test]
    fn is_constant_detects_columns() {
        assert!(PlanExpr::literal(1i64).is_constant());
        assert!(!PlanExpr::column(0, "a").is_constant());
    }

    #[test]
    fn nullif_semantics() {
        let e = PlanExpr::Scalar {
            func: ScalarFn::NullIf,
            args: vec![PlanExpr::literal(3i64), PlanExpr::literal(3i64)],
        };
        assert!(e.evaluate(&[]).unwrap().is_null());
    }
}
