//! The functional rewrite of iterative and recursive CTEs — DBSpinner's
//! core algorithm (paper §IV, Algorithm 1).
//!
//! An iterative CTE
//!
//! ```sql
//! WITH ITERATIVE R AS ( R0 ITERATE Ri UNTIL Tc ) Qf
//! ```
//!
//! is expanded into the step program
//!
//! ```text
//! 1. Materialize R0 into cteTable            (Algorithm 1, line 1)
//! 2. Loop (initializes the loop operator):   (line 2)
//!      3. Materialize Ri into workingTable   (line 3)
//!      4a. [no WHERE in Ri, rename optimization on]
//!          Rename workingTable to cteTable   (lines 5-6)
//!      4b. [otherwise]
//!          Merge workingTable into cteTable by key  (lines 8-9)
//!          Rename mergeTable to cteTable
//!      5. update loop, repeat if condition holds     (lines 11-14)
//! ```
//!
//! The merge key is the CTE's **first declared column** (the paper uses the
//! declared primary key or generated row ids; graph queries key on the node
//! id, which is the first column in PR, SSSP and FF alike). A working table
//! with duplicate keys raises [`Error::DuplicateIterationKey`] during the
//! merge, as §II requires.

use spinner_common::{Error, Result};
use spinner_parser as ast;
use spinner_parser::Termination;

use crate::builder::{
    apply_declared_columns, plan_query_internal, resolve_expr, CteBinding, PlanContext,
};
use crate::logical::{LoopKind, LoopStep, Step, TerminationPlan};

/// Expand an iterative CTE into steps, binding its name for later
/// references. See the module docs for the produced shape.
pub fn build_iterative_cte(
    cte: &ast::Cte,
    init: &ast::Query,
    step: &ast::Query,
    until: &Termination,
    ctx: &mut PlanContext<'_>,
    steps: &mut Vec<Step>,
) -> Result<()> {
    // R0 — planned before the CTE name is visible.
    let init_plan = plan_query_internal(init, ctx, steps)?;
    let schema = apply_declared_columns(&init_plan.schema(), &cte.columns, &cte.name)?;
    if schema.is_empty() {
        return Err(Error::plan(format!(
            "iterative CTE '{}' must produce at least one column",
            cte.name
        )));
    }
    let cte_temp = ctx.fresh_temp(&format!("cte_{}", cte.name));
    let working = ctx.fresh_temp(&format!("work_{}", cte.name));
    let merged = ctx.fresh_temp(&format!("merge_{}", cte.name));
    // Distribute the CTE table on its merge key, like an MPP planner
    // distributing a table on its primary key.
    steps.push(Step::Materialize {
        name: cte_temp.clone(),
        plan: init_plan,
        distribute_by: Some(0),
    });

    // Bind the CTE so Ri's references resolve to the cte table.
    ctx.bind_cte(
        &cte.name,
        CteBinding {
            temp_name: cte_temp.clone(),
            schema: schema.clone(),
        },
    );

    // Ri — its own sub-steps (nested CTE materializations) belong inside
    // the loop body so they re-run per iteration.
    let mut body = Vec::new();
    let step_plan = plan_query_internal(step, ctx, &mut body)?;
    if step_plan.schema().len() != schema.len() {
        return Err(Error::plan(format!(
            "iterative part of CTE '{}' produces {} columns, expected {}",
            cte.name,
            step_plan.schema().len(),
            schema.len()
        )));
    }

    // Algorithm 1, line 4: the rename fast path applies when Ri has no
    // WHERE clause (the whole dataset is replaced). The Fig. 8 baseline
    // disables it via config and always merges.
    let has_where = query_has_top_level_where(step);
    let merge = has_where || !ctx.config.minimize_data_movement;

    body.push(Step::Materialize {
        name: working.clone(),
        plan: step_plan,
        distribute_by: Some(0),
    });
    if merge {
        body.push(Step::Merge {
            cte: cte_temp.clone(),
            working: working.clone(),
            merged: merged.clone(),
            key: 0,
            cte_display_name: cte.name.clone(),
            delta_out: None,
        });
        body.push(Step::Rename {
            from: merged,
            to: cte_temp.clone(),
        });
    } else {
        body.push(Step::Rename {
            from: working.clone(),
            to: cte_temp.clone(),
        });
    }

    let termination = plan_termination(until, &schema, &cte.name)?;
    steps.push(Step::Loop(LoopStep {
        cte: cte_temp,
        cte_display_name: cte.name.clone(),
        kind: LoopKind::Iterative {
            working,
            merge,
            delta: None,
        },
        body,
        termination,
        key: 0,
        schema,
    }));
    Ok(())
}

/// Expand a recursive CTE into a fixed-point loop: materialize the base,
/// then repeatedly evaluate the step against the *delta* (rows added by the
/// previous round), appending new rows until none appear.
pub fn build_recursive_cte(
    cte: &ast::Cte,
    base: &ast::Query,
    step: &ast::Query,
    union_all: bool,
    ctx: &mut PlanContext<'_>,
    steps: &mut Vec<Step>,
) -> Result<()> {
    let base_plan = plan_query_internal(base, ctx, steps)?;
    let schema = apply_declared_columns(&base_plan.schema(), &cte.columns, &cte.name)?;
    let cte_temp = ctx.fresh_temp(&format!("cte_{}", cte.name));
    let delta_temp = format!("__delta_{cte_temp}");
    let working = ctx.fresh_temp(&format!("work_{}", cte.name));
    steps.push(Step::Materialize {
        name: cte_temp.clone(),
        plan: base_plan,
        distribute_by: Some(0),
    });

    // Inside the loop the recursive reference reads the delta.
    ctx.bind_cte(
        &cte.name,
        CteBinding {
            temp_name: delta_temp,
            schema: schema.clone(),
        },
    );
    let mut body = Vec::new();
    let step_plan = plan_query_internal(step, ctx, &mut body)?;
    if step_plan.schema().len() != schema.len() {
        return Err(Error::plan(format!(
            "recursive part of CTE '{}' produces {} columns, expected {}",
            cte.name,
            step_plan.schema().len(),
            schema.len()
        )));
    }
    body.push(Step::Materialize {
        name: working.clone(),
        plan: step_plan,
        distribute_by: Some(0),
    });

    steps.push(Step::Loop(LoopStep {
        cte: cte_temp.clone(),
        cte_display_name: cte.name.clone(),
        kind: LoopKind::FixedPoint { working, union_all },
        body,
        // A fixed-point loop stops when an iteration contributes no new
        // rows — precisely "fewer than 1 row changed".
        termination: TerminationPlan::Delta { threshold: 1 },
        key: 0,
        schema: schema.clone(),
    }));

    // After the loop, references read the full accumulated table.
    ctx.bind_cte(
        &cte.name,
        CteBinding {
            temp_name: cte_temp,
            schema,
        },
    );
    Ok(())
}

/// Resolve the termination condition against the CTE schema.
fn plan_termination(
    until: &Termination,
    schema: &spinner_common::Schema,
    cte_name: &str,
) -> Result<TerminationPlan> {
    Ok(match until {
        Termination::Iterations(n) => TerminationPlan::Iterations(*n),
        Termination::Updates(n) => TerminationPlan::Updates(*n),
        Termination::Data { expr, rows } => {
            let predicate = resolve_expr(expr, schema).map_err(|e| {
                Error::plan(format!(
                    "termination condition of CTE '{cte_name}' is invalid: {e}"
                ))
            })?;
            TerminationPlan::Data {
                predicate,
                rows: *rows,
            }
        }
        Termination::Delta { threshold } => TerminationPlan::Delta {
            threshold: *threshold,
        },
    })
}

/// Does the query's top-level SELECT carry a WHERE clause? This is the
/// Algorithm-1 test for "the iterative part updates only a subset".
fn query_has_top_level_where(q: &ast::Query) -> bool {
    fn body_has_where(b: &ast::SetExpr) -> bool {
        match b {
            ast::SetExpr::Select(s) => s.selection.is_some(),
            ast::SetExpr::SetOp { left, right, .. } => {
                body_has_where(left) || body_has_where(right)
            }
        }
    }
    body_has_where(&q.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_parser::parse_sql;

    #[test]
    fn top_level_where_detection() {
        let get = |sql: &str| {
            let ast::Statement::Query(q) = parse_sql(sql).unwrap() else {
                panic!()
            };
            query_has_top_level_where(&q)
        };
        assert!(get("SELECT 1 WHERE 1 = 1"));
        assert!(!get("SELECT 1"));
        // WHERE inside a subquery does not count — only the top level
        // decides whether the whole dataset is replaced.
        assert!(!get("SELECT a FROM (SELECT 1 AS a WHERE 1 = 1) q"));
        assert!(get("SELECT 1 UNION SELECT 2 WHERE 1 = 1"));
    }
}
