//! Logical plan tree and the step program that wraps it.
//!
//! A [`QueryPlan`] is what DBSpinner's planner hands to the executor: a
//! sequence of [`Step`]s — materializations of intermediate results,
//! `rename`s, key-merges and [`Step::Loop`]s — followed by a final plan
//! (`Qf` in the paper). For plain queries the step list is empty. `EXPLAIN`
//! renders the step list in the numbered style of the paper's Table I.

use std::fmt;
use std::sync::Arc;

use spinner_common::{Schema, SchemaRef};

use crate::expr::{AggExpr, PlanExpr};

/// Join flavours at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching row pairs.
    Inner,
    /// Keep all left rows, NULL-padding unmatched ones.
    Left,
    /// Keep all right rows, NULL-padding unmatched ones.
    Right,
    /// Keep all rows from both sides.
    Full,
    /// Cartesian product.
    Cross,
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinType::Inner => "Inner",
            JoinType::Left => "Left",
            JoinType::Right => "Right",
            JoinType::Full => "Full",
            JoinType::Cross => "Cross",
        })
    }
}

/// Set-operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// Rows in either input.
    Union,
    /// Rows in the left input but not the right.
    Except,
    /// Rows in both inputs.
    Intersect,
}

impl fmt::Display for SetOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SetOpKind::Union => "Union",
            SetOpKind::Except => "Except",
            SetOpKind::Intersect => "Intersect",
        })
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression.
    pub expr: PlanExpr,
    /// Ascending when `true`.
    pub asc: bool,
    /// NULLs sort before non-NULLs when `true`.
    pub nulls_first: bool,
}

/// The relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base (catalog) table.
    TableScan {
        /// Catalog table name.
        table: String,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Scan of a named intermediate result in the temp registry — CTE
    /// tables, working tables and common-result materializations.
    TempScan {
        /// Temp-registry entry name.
        name: String,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Literal rows (INSERT ... VALUES, SELECT without FROM).
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// One expression list per row.
        rows: Vec<Vec<PlanExpr>>,
    },
    /// Compute expressions over each input row.
    Projection {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// One expression per output column.
        exprs: Vec<PlanExpr>,
        /// Output schema.
        schema: SchemaRef,
    },
    /// Keep rows where the predicate is true.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Boolean filter expression.
        predicate: PlanExpr,
    },
    /// Join. `on` holds equi-key pairs (left expr, right expr); `filter` is
    /// the residual non-equi condition over the combined schema.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Inner / left-outer / etc.
        join_type: JoinType,
        /// Equi-key pairs (left expr, right expr).
        on: Vec<(PlanExpr, PlanExpr)>,
        /// Residual non-equi condition over the combined schema.
        filter: Option<PlanExpr>,
        /// Output schema (left columns then right columns).
        schema: SchemaRef,
    },
    /// Grouped aggregation. Output schema = group columns then aggregates.
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Group-key expressions; empty for global aggregation.
        group: Vec<PlanExpr>,
        /// Aggregate functions to compute.
        aggs: Vec<AggExpr>,
        /// Output schema (group keys then aggregates).
        schema: SchemaRef,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input operator.
        input: Box<LogicalPlan>,
    },
    /// Sort rows.
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Row limit.
        n: u64,
    },
    /// UNION / EXCEPT / INTERSECT.
    SetOp {
        /// Which set operation.
        op: SetOpKind,
        /// `true` keeps duplicates (`ALL`).
        all: bool,
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Output schema.
        schema: SchemaRef,
    },
}

impl LogicalPlan {
    /// Output schema of this operator.
    pub fn schema(&self) -> SchemaRef {
        match self {
            LogicalPlan::TableScan { schema, .. }
            | LogicalPlan::TempScan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Projection { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. }
            | LogicalPlan::SetOp { schema, .. } => Arc::clone(schema),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan { .. }
            | LogicalPlan::TempScan { .. }
            | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Projection { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Whether any node in this subtree scans the temp result `name`
    /// (used to find loop-variant subtrees — references to the iterative
    /// CTE table).
    pub fn references_temp(&self, name: &str) -> bool {
        if let LogicalPlan::TempScan { name: n, .. } = self {
            if n.eq_ignore_ascii_case(name) {
                return true;
            }
        }
        self.children().iter().any(|c| c.references_temp(name))
    }

    /// Count of TempScan nodes for `name` in this subtree.
    pub fn count_temp_refs(&self, name: &str) -> usize {
        let own = usize::from(matches!(
            self, LogicalPlan::TempScan { name: n, .. } if n.eq_ignore_ascii_case(name)
        ));
        own + self
            .children()
            .iter()
            .map(|c| c.count_temp_refs(name))
            .sum::<usize>()
    }

    /// Number of Join nodes in this subtree.
    pub fn count_joins(&self) -> usize {
        let own = usize::from(matches!(self, LogicalPlan::Join { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.count_joins())
            .sum::<usize>()
    }

    /// One-line description for EXPLAIN.
    fn describe(&self) -> String {
        match self {
            LogicalPlan::TableScan { table, .. } => format!("TableScan: {table}"),
            LogicalPlan::TempScan { name, .. } => format!("TempScan: {name}"),
            LogicalPlan::Values { rows, .. } => format!("Values: {} rows", rows.len()),
            LogicalPlan::Projection { exprs, .. } => {
                let items: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                format!("Projection: {}", items.join(", "))
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter: {predicate}"),
            LogicalPlan::Join {
                join_type,
                on,
                filter,
                ..
            } => {
                let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                let mut s = format!("{join_type} Join: {}", keys.join(", "));
                if let Some(fp) = filter {
                    s.push_str(&format!(" filter: {fp}"));
                }
                s
            }
            LogicalPlan::Aggregate { group, aggs, .. } => {
                let g: Vec<String> = group.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs
                    .iter()
                    .map(|agg| match (&agg.arg, &agg.by) {
                        (Some(arg), Some(by)) => format!("{}({arg}, {by})", agg.func),
                        (Some(arg), None) => format!("{}({arg})", agg.func),
                        _ => agg.func.to_string(),
                    })
                    .collect();
                format!(
                    "Aggregate: groupBy=[{}] aggs=[{}]",
                    g.join(", "),
                    a.join(", ")
                )
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
            LogicalPlan::Sort { keys, .. } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|s| format!("{} {}", s.expr, if s.asc { "ASC" } else { "DESC" }))
                    .collect();
                format!("Sort: {}", k.join(", "))
            }
            LogicalPlan::Limit { n, .. } => format!("Limit: {n}"),
            LogicalPlan::SetOp { op, all, .. } => {
                format!("{op}{}", if *all { " All" } else { "" })
            }
        }
    }

    /// Multi-line indented rendering of the subtree.
    pub fn display_indent(&self, indent: usize, out: &mut String) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(&self.describe());
        out.push('\n');
        for c in self.children() {
            c.display_indent(indent + 1, out);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.display_indent(0, &mut s);
        f.write_str(s.trim_end())
    }
}

/// Planned termination condition of a loop (paper §VI-B).
#[derive(Debug, Clone, PartialEq)]
pub enum TerminationPlan {
    /// Stop after N iterations.
    Iterations(u64),
    /// Stop when the cumulative number of updated rows reaches N.
    Updates(u64),
    /// Stop when at least `rows` rows of the CTE table satisfy `predicate`
    /// (resolved against the CTE schema).
    Data {
        /// Condition checked against each CTE row.
        predicate: PlanExpr,
        /// Required number of satisfying rows.
        rows: u64,
    },
    /// Stop when fewer than `threshold` rows changed in the last iteration.
    Delta {
        /// Changed-row count below which the loop stops.
        threshold: u64,
    },
}

impl fmt::Display for TerminationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationPlan::Iterations(n) => {
                write!(f, "<<Type:metadata, N:{n} iterations, Expr:NONE>>")
            }
            TerminationPlan::Updates(n) => {
                write!(f, "<<Type:metadata, N:{n} updates, Expr:NONE>>")
            }
            TerminationPlan::Data { predicate, rows } => {
                write!(f, "<<Type:data, N:{rows}, Expr:{predicate}>>")
            }
            TerminationPlan::Delta { threshold } => {
                write!(f, "<<Type:delta, N:{threshold}, Expr:NONE>>")
            }
        }
    }
}

/// How a loop advances its main table each round.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopKind {
    /// Iterative CTE (update semantics). The body materializes the working
    /// table; the steps that follow it (merge/rename) are part of `body`.
    Iterative {
        /// Name of the working table the body materializes.
        working: String,
        /// Whether the merge path is used (Ri has a WHERE clause, or the
        /// data-movement optimization is disabled).
        merge: bool,
        /// Semi-naive marker: when `Some`, the optimizer proved the body
        /// delta-eligible and rewrote it to join against this delta table
        /// (which holds only the rows that changed last iteration) instead
        /// of the full CTE table. The executor seeds the delta with the
        /// full table before iteration 1 and the merge step refills it
        /// with the changed rows each round. `None` = full recompute.
        delta: Option<String>,
    },
    /// Recursive CTE (append semantics): body materializes `working`; the
    /// executor appends it to the CTE table (deduplicating unless
    /// `union_all`), binds the *delta* scan to the new rows, and stops when
    /// an iteration adds nothing.
    FixedPoint {
        /// Name of the working table the body materializes.
        working: String,
        /// `true` for `UNION ALL` recursion (no deduplication).
        union_all: bool,
    },
}

/// A loop step: run `body` until `termination` is satisfied.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStep {
    /// Temp-registry name of the main CTE table.
    pub cte: String,
    /// User-visible CTE name (for error messages).
    pub cte_display_name: String,
    /// Update (iterative) or append (recursive) semantics.
    pub kind: LoopKind,
    /// Steps executed each round.
    pub body: Vec<Step>,
    /// When the loop stops.
    pub termination: TerminationPlan,
    /// Merge key column (index into the CTE schema).
    pub key: usize,
    /// CTE table schema.
    pub schema: SchemaRef,
}

/// One step of the query program (the rows of the paper's Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Materialize `plan` into the temp registry under `name`.
    /// `distribute_by` asks the executor to hash-distribute the stored
    /// rows on that column — the MPP planner's "distribute the CTE table
    /// on its key" decision, which keeps the rename path's renamed working
    /// table co-located for the next iteration's joins and merges.
    Materialize {
        /// Temp-registry name to store under.
        name: String,
        /// Plan producing the rows.
        plan: LogicalPlan,
        /// Hash-distribution column, when requested.
        distribute_by: Option<usize>,
    },
    /// Re-point temp `to` at the buffer of temp `from` (the paper's new
    /// `rename` executor operator).
    Rename {
        /// Source temp name (consumed).
        from: String,
        /// Destination temp name.
        to: String,
    },
    /// Merge `working` into `cte` by equality on column `key`, producing
    /// temp `merged` (Algorithm 1, lines 8-10). Errors on duplicate keys in
    /// the working table.
    Merge {
        /// Temp name of the current CTE table.
        cte: String,
        /// Temp name of this iteration's working table.
        working: String,
        /// Temp name the merged result is stored under.
        merged: String,
        /// Merge key (column index into the CTE schema).
        key: usize,
        /// User-visible CTE name (for duplicate-key errors).
        cte_display_name: String,
        /// When `Some`, the merge also materializes the set of rows whose
        /// value actually changed (new key, or same key with different
        /// columns) under this temp name — the delta table a semi-naive
        /// loop feeds into its next iteration. `None` for full loops.
        delta_out: Option<String>,
    },
    /// Conditional repetition (the paper's new `loop` executor operator).
    Loop(LoopStep),
}

impl Step {
    fn explain_into(&self, step_no: &mut usize, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            Step::Materialize {
                name,
                plan,
                distribute_by,
            } => {
                let dist = match distribute_by {
                    Some(c) => format!(" (distributed by column #{c})"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{pad}{}. Materialize {name}{dist} with:\n",
                    step_no
                ));
                *step_no += 1;
                plan.display_indent(indent + 2, out);
            }
            Step::Rename { from, to } => {
                out.push_str(&format!("{pad}{}. Rename {from} to {to}.\n", step_no));
                *step_no += 1;
            }
            Step::Merge {
                cte,
                working,
                merged,
                key,
                ..
            } => {
                out.push_str(&format!(
                    "{pad}{}. Merge {working} into {cte} by key column #{key} producing {merged}.\n",
                    step_no
                ));
                *step_no += 1;
            }
            Step::Loop(l) => {
                out.push_str(&format!(
                    "{pad}{}. Initialize loop operator {} for {}.\n",
                    step_no, l.termination, l.cte_display_name
                ));
                *step_no += 1;
                let loop_start = *step_no;
                for s in &l.body {
                    s.explain_into(step_no, indent + 1, out);
                }
                out.push_str(&format!(
                    "{pad}{}. Go to step {} if loop condition holds.\n",
                    step_no, loop_start
                ));
                *step_no += 1;
            }
        }
    }
}

/// A complete planned query: a step program plus the final plan (`Qf`).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Step program executed before the final plan (empty for plain
    /// queries).
    pub steps: Vec<Step>,
    /// The final plan (`Qf`), run after all steps.
    pub root: LogicalPlan,
}

impl QueryPlan {
    /// Plan with no steps.
    pub fn simple(root: LogicalPlan) -> Self {
        QueryPlan {
            steps: Vec::new(),
            root,
        }
    }

    /// Output schema.
    pub fn schema(&self) -> SchemaRef {
        self.root.schema()
    }

    /// Paper-Table-I style rendering used by EXPLAIN.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let mut step_no = 1;
        for s in &self.steps {
            s.explain_into(&mut step_no, 0, &mut out);
        }
        out.push_str(&format!("{step_no}. Return:\n"));
        self.root.display_indent(2, &mut out);
        out
    }
}

/// A planned statement: queries plus the DDL/DML the baselines need.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedStatement {
    /// A SELECT (or iterative CTE query).
    Query(QueryPlan),
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        schema: Schema,
        /// Declared primary-key column.
        primary_key: Option<usize>,
        /// Hash-partition column; defaults to the primary key.
        partition_key: Option<usize>,
        /// `true` for `IF NOT EXISTS`.
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// `true` for `IF EXISTS`.
        if_exists: bool,
    },
    /// INSERT: the source plan produces rows already reordered/padded to
    /// the table's column order.
    Insert {
        /// Destination table.
        table: String,
        /// Plan producing the rows to insert.
        source: QueryPlan,
    },
    /// UPDATE with optional FROM. Assignments map table-column index to an
    /// expression over (table row ∥ from row); `from` is `None` for plain
    /// UPDATE and expressions see only the table row.
    Update {
        /// Target table.
        table: String,
        /// Optional FROM source joined against the target.
        from: Option<LogicalPlan>,
        /// `(target column index, new value)` pairs.
        assignments: Vec<(usize, PlanExpr)>,
        /// Row filter; `None` updates every row.
        predicate: Option<PlanExpr>,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: String,
        /// Row filter; `None` deletes every row.
        predicate: Option<PlanExpr>,
    },
    /// EXPLAIN / EXPLAIN ANALYZE wrapper around another statement.
    Explain {
        /// The planned statement being explained.
        statement: Box<PlannedStatement>,
        /// `true` for `EXPLAIN ANALYZE`: execute and profile the statement.
        analyze: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::{DataType, Field};

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::TempScan {
            name: name.into(),
            schema: Arc::new(Schema::new(vec![Field::new("x", DataType::Int)])),
        }
    }

    #[test]
    fn references_temp_is_case_insensitive() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("PageRank")),
            predicate: PlanExpr::literal(true),
        };
        assert!(plan.references_temp("pagerank"));
        assert!(!plan.references_temp("edges"));
    }

    #[test]
    fn count_temp_refs_counts_self_joins() {
        let schema = scan("pr").schema();
        let join = LogicalPlan::Join {
            left: Box::new(scan("pr")),
            right: Box::new(scan("pr")),
            join_type: JoinType::Inner,
            on: vec![],
            filter: None,
            schema,
        };
        assert_eq!(join.count_temp_refs("pr"), 2);
        assert_eq!(join.count_joins(), 1);
    }

    #[test]
    fn explain_numbers_steps_like_table_one() {
        let plan = QueryPlan {
            steps: vec![
                Step::Materialize {
                    name: "pagerank".into(),
                    plan: scan("src"),
                    distribute_by: None,
                },
                Step::Loop(LoopStep {
                    cte: "pagerank".into(),
                    cte_display_name: "PageRank".into(),
                    kind: LoopKind::Iterative {
                        working: "__work".into(),
                        merge: false,
                        delta: None,
                    },
                    body: vec![
                        Step::Materialize {
                            name: "__work".into(),
                            plan: scan("pagerank"),
                            distribute_by: None,
                        },
                        Step::Rename {
                            from: "__work".into(),
                            to: "pagerank".into(),
                        },
                    ],
                    termination: TerminationPlan::Iterations(10),
                    key: 0,
                    schema: scan("pagerank").schema(),
                }),
            ],
            root: scan("pagerank"),
        };
        let text = plan.explain();
        assert!(text.contains("1. Materialize pagerank"));
        assert!(text
            .contains("2. Initialize loop operator <<Type:metadata, N:10 iterations, Expr:NONE>>"));
        assert!(text.contains("4. Rename __work to pagerank."));
        assert!(text.contains("5. Go to step 3 if loop condition holds."));
        assert!(text.contains("6. Return:"));
    }
}
