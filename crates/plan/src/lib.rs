//! Logical planning layer.
//!
//! This crate turns the parser's AST into an executable *step program*
//! ([`QueryPlan`]): a sequence of [`Step`]s (materialize / rename / merge /
//! loop) followed by a final [`LogicalPlan`] — exactly the shape DBSpinner's
//! functional rewrite produces (paper Table I and Algorithm 1). Iterative
//! and recursive CTEs become [`Step::Loop`] nodes whose bodies are regular
//! materializations; the `rename`-vs-merge decision of Algorithm 1 lives in
//! [`rewrite`].

#![warn(missing_docs)]

pub mod builder;
pub mod expr;
pub mod logical;
pub mod rewrite;

pub use builder::{plan_query, plan_statement, PlanContext};
pub use expr::{AggExpr, AggFunc, ColumnRef, PlanExpr, ScalarFn};
pub use logical::{
    JoinType, LogicalPlan, LoopKind, LoopStep, PlannedStatement, QueryPlan, SetOpKind, SortKey,
    Step, TerminationPlan,
};
