//! Evaluation of physical operator trees over partitioned row sets.
//!
//! Every operator consumes and produces a [`Partitioned`] (one immutable
//! row vector per virtual MPP worker). Per-partition work can run in
//! parallel when `EngineConfig::parallel_partitions` is set — on the
//! database's persistent [`WorkerPool`] when one is installed (zero
//! thread spawns in steady state), else on crossbeam scoped threads
//! spawned per operator. The default is sequential execution for
//! determinism.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use spinner_common::memory::RegionKind;
use spinner_common::profile::{SpanKind, Tracer};
use spinner_common::{EngineConfig, Error, FaultSite, QueryGuard, Result, Row, Value};
use spinner_plan::{AggExpr, JoinType, PlanExpr, SetOpKind, SortKey};
use spinner_storage::{Catalog, Partitioned, TempRegistry};

use crate::aggregate::Accumulator;
use crate::cache::{CachedBuild, JoinStateCache, JoinTable};
use crate::fault::FaultInjector;
use crate::physical::{partition_for_key, ExchangeMode, PhysicalPlan};
use crate::pool::WorkerPool;
use crate::stats::ExecStats;

/// Everything an operator needs at run time.
pub struct OpContext<'a> {
    /// Base tables.
    pub catalog: &'a Catalog,
    /// Named temporary results (CTE working tables).
    pub registry: &'a TempRegistry,
    /// Optimization toggles and partition count.
    pub config: &'a EngineConfig,
    /// Flat per-statement counters (always on).
    pub stats: &'a ExecStats,
    /// Cancellation / deadline / budget enforcement.
    pub guard: &'a QueryGuard,
    /// Chaos-testing fault injector.
    pub faults: &'a FaultInjector,
    /// Span collector for `EXPLAIN ANALYZE`; disabled for normal statements.
    pub tracer: &'a Tracer,
    /// Persistent worker pool for parallel partitions; `None` falls back
    /// to the spawn-per-operator path.
    pub pool: Option<&'a WorkerPool>,
    /// Statement-scoped cache of loop-invariant hash-join builds.
    pub join_cache: &'a JoinStateCache,
}

impl OpContext<'_> {
    fn partitions(&self) -> usize {
        self.config.partitions
    }
}

/// Track the approximate bytes of an operator's in-flight hash state (a
/// join build side, aggregation groups) against the memory accountant for
/// the duration of `scope`. Such state is *pinned* — an operator cannot
/// have its hash table moved to disk mid-build — so it contributes to
/// pressure (pushing colder named state out) and to the peak high-water
/// mark, but is never itself a spill victim. No-op without a spill
/// environment.
fn with_transient_tracking<T>(
    ctx: &OpContext<'_>,
    label: &str,
    kind: RegionKind,
    bytes: u64,
    scope: impl FnOnce() -> Result<T>,
) -> Result<T> {
    match ctx.registry.spill_env() {
        Some(env) => {
            let _region = env.accountant.track_transient(label, kind, bytes);
            scope()
        }
        None => scope(),
    }
}

/// Execute a physical plan tree to a partitioned result.
pub fn execute(plan: &PhysicalPlan, ctx: &OpContext<'_>) -> Result<Partitioned> {
    // Operator batch boundary: every operator in the tree passes through
    // here, so cancellation and deadlines are honoured between operators
    // even when a single plan has no loop.
    ctx.guard.check()?;
    if !ctx.tracer.is_enabled() {
        return execute_inner(plan, ctx);
    }
    ctx.tracer.enter(SpanKind::Operator, plan.describe());
    match execute_inner(plan, ctx) {
        Ok(data) => {
            ctx.tracer
                .exit(data.total_rows() as u64, data.estimated_bytes());
            Ok(data)
        }
        Err(e) => {
            ctx.tracer.exit(0, 0);
            Err(e)
        }
    }
}

fn execute_inner(plan: &PhysicalPlan, ctx: &OpContext<'_>) -> Result<Partitioned> {
    match plan {
        PhysicalPlan::SeqScan { table, .. } => {
            let snapshot = ctx.catalog.get(table)?.snapshot();
            Ok(normalize_partitions(
                snapshot,
                ctx.partitions(),
                plan.schema(),
            ))
        }
        PhysicalPlan::TempScan { name, .. } => {
            let data = ctx.registry.get(name)?;
            Ok(normalize_partitions(data, ctx.partitions(), plan.schema()))
        }
        PhysicalPlan::Values { rows, .. } => {
            let mut out: Vec<Row> = Vec::with_capacity(rows.len());
            for exprs in rows {
                let row: Vec<Value> = exprs
                    .iter()
                    .map(|e| e.evaluate(&[]))
                    .collect::<Result<_>>()?;
                out.push(row.into_boxed_slice());
            }
            let mut parts: Vec<Arc<Vec<Row>>> = (0..ctx.partitions())
                .map(|_| Arc::new(Vec::new()))
                .collect();
            parts[0] = Arc::new(out);
            Ok(Partitioned {
                schema: plan.schema(),
                parts,
            })
        }
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let data = execute(input, ctx)?;
            let out = unary_map(&data, ctx, |rows| {
                let mut result = Vec::with_capacity(rows.len());
                for r in rows {
                    let row: Vec<Value> =
                        exprs.iter().map(|e| e.evaluate(r)).collect::<Result<_>>()?;
                    result.push(row.into_boxed_slice());
                }
                Ok(result)
            })?;
            Ok(Partitioned {
                schema: schema.clone(),
                parts: out,
            })
        }
        PhysicalPlan::Filter { input, predicate } => {
            let data = execute(input, ctx)?;
            let schema = data.schema.clone();
            let out = unary_map(&data, ctx, |rows| {
                let mut result = Vec::new();
                for r in rows {
                    if predicate.matches(r)? {
                        result.push(r.clone());
                    }
                }
                Ok(result)
            })?;
            Ok(Partitioned { schema, parts: out })
        }
        PhysicalPlan::Exchange { input, mode } => {
            let data = execute(input, ctx)?;
            exchange(data, mode, ctx)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let l = execute(left, ctx)?;
            // A loop-invariant build side (hash repartition of a hoisted
            // §V-A common result) is built once per temp identity and
            // re-probed on every later iteration.
            if ctx.config.join_state_cache {
                if let Some(name) = right.invariant_build_name() {
                    let out = cached_hash_join(
                        &l,
                        right,
                        name,
                        *join_type,
                        left_keys,
                        right_keys,
                        residual.as_ref(),
                        ctx,
                    )?;
                    return Ok(Partitioned {
                        schema: schema.clone(),
                        parts: out,
                    });
                }
            }
            let r = execute(right, ctx)?;
            ExecStats::add(&ctx.stats.joins_executed, 1);
            let (lwidth, rwidth) = (l.schema.len(), r.schema.len());
            let out = with_transient_tracking(
                ctx,
                "hash join build",
                RegionKind::HashJoinBuild,
                r.estimated_bytes(),
                || {
                    binary_map(&l, &r, ctx, |lrows, rrows| {
                        hash_join_partition(
                            lrows,
                            rrows,
                            *join_type,
                            left_keys,
                            right_keys,
                            residual.as_ref(),
                            lwidth,
                            rwidth,
                        )
                    })
                },
            )?;
            Ok(Partitioned {
                schema: schema.clone(),
                parts: out,
            })
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            join_type,
            residual,
            schema,
        } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            ExecStats::add(&ctx.stats.joins_executed, 1);
            let (lwidth, rwidth) = (l.schema.len(), r.schema.len());
            // Inputs were gathered to partition 0 by the planner.
            let lrows = l.gather();
            let rrows = r.gather();
            let joined = nested_loop_join(
                &lrows,
                &rrows,
                *join_type,
                residual.as_ref(),
                lwidth,
                rwidth,
            )?;
            let mut parts: Vec<Arc<Vec<Row>>> = (0..ctx.partitions())
                .map(|_| Arc::new(Vec::new()))
                .collect();
            parts[0] = Arc::new(joined);
            Ok(Partitioned {
                schema: schema.clone(),
                parts,
            })
        }
        PhysicalPlan::HashAggregate {
            input,
            group,
            aggs,
            schema,
        } => {
            let data = execute(input, ctx)?;
            if group.is_empty() {
                global_aggregate(&data, aggs, schema.clone(), ctx)
            } else {
                let out = with_transient_tracking(
                    ctx,
                    "hash aggregate",
                    RegionKind::HashAggregate,
                    data.estimated_bytes(),
                    || {
                        unary_map(&data, ctx, |rows| {
                            grouped_aggregate_partition(rows, group, aggs)
                        })
                    },
                )?;
                Ok(Partitioned {
                    schema: schema.clone(),
                    parts: out,
                })
            }
        }
        PhysicalPlan::AggregatePartial {
            input,
            group,
            aggs,
            schema,
        } => {
            let data = execute(input, ctx)?;
            let out = with_transient_tracking(
                ctx,
                "partial aggregate",
                RegionKind::HashAggregate,
                data.estimated_bytes(),
                || {
                    unary_map(&data, ctx, |rows| {
                        partial_aggregate_partition(rows, group, aggs)
                    })
                },
            )?;
            Ok(Partitioned {
                schema: schema.clone(),
                parts: out,
            })
        }
        PhysicalPlan::AggregateFinal {
            input,
            group_len,
            aggs,
            schema,
        } => {
            let data = execute(input, ctx)?;
            let out = with_transient_tracking(
                ctx,
                "final aggregate",
                RegionKind::HashAggregate,
                data.estimated_bytes(),
                || {
                    unary_map(&data, ctx, |rows| {
                        final_aggregate_partition(rows, *group_len, aggs)
                    })
                },
            )?;
            Ok(Partitioned {
                schema: schema.clone(),
                parts: out,
            })
        }
        PhysicalPlan::Distinct { input } => {
            let data = execute(input, ctx)?;
            let schema = data.schema.clone();
            let out = unary_map(&data, ctx, |rows| {
                let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
                let mut result = Vec::new();
                for r in rows {
                    if seen.insert(r.clone()) {
                        result.push(r.clone());
                    }
                }
                Ok(result)
            })?;
            Ok(Partitioned { schema, parts: out })
        }
        PhysicalPlan::Sort { input, keys } => {
            let data = execute(input, ctx)?;
            let schema = data.schema.clone();
            let mut rows = data.gather();
            sort_rows(&mut rows, keys)?;
            let mut parts: Vec<Arc<Vec<Row>>> = (0..ctx.partitions())
                .map(|_| Arc::new(Vec::new()))
                .collect();
            parts[0] = Arc::new(rows);
            Ok(Partitioned { schema, parts })
        }
        PhysicalPlan::Limit { input, n } => {
            let data = execute(input, ctx)?;
            let schema = data.schema.clone();
            let mut rows = data.gather();
            rows.truncate(*n as usize);
            let mut parts: Vec<Arc<Vec<Row>>> = (0..ctx.partitions())
                .map(|_| Arc::new(Vec::new()))
                .collect();
            parts[0] = Arc::new(rows);
            Ok(Partitioned { schema, parts })
        }
        PhysicalPlan::SetOp {
            op,
            all,
            left,
            right,
            schema,
        } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            let out = binary_map(&l, &r, ctx, |lrows, rrows| {
                set_op_partition(lrows, rrows, *op, *all)
            })?;
            Ok(Partitioned {
                schema: schema.clone(),
                parts: out,
            })
        }
    }
}

/// Bring a row set to exactly `parts` partitions, preserving data. Used at
/// scan boundaries when a stored result was partitioned under a different
/// configuration.
fn normalize_partitions(
    data: Partitioned,
    parts: usize,
    schema: spinner_common::SchemaRef,
) -> Partitioned {
    if data.parts.len() == parts {
        return Partitioned {
            schema,
            parts: data.parts,
        };
    }
    let rows = data.gather();
    let buckets = spinner_storage::hash_partition(rows, None, parts);
    Partitioned {
        schema,
        parts: buckets.into_iter().map(Arc::new).collect(),
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Deterministic exponential backoff before retry number `retry_index`
/// (1-based): sleeps `base_ms * 2^(retry_index-1)`, exponent capped.
/// `base_ms == 0` (the default, and the right setting for tests) sleeps
/// not at all.
pub(crate) fn backoff_sleep(base_ms: u64, retry_index: u64) {
    if base_ms == 0 || retry_index == 0 {
        return;
    }
    let factor = 1u64 << (retry_index - 1).min(16);
    std::thread::sleep(std::time::Duration::from_millis(
        base_ms.saturating_mul(factor),
    ));
}

/// Run one partition's work with panic isolation and bounded transient
/// retry.
///
/// A panic inside `f` (user expression evaluation, an injected chaos
/// fault, a bug) is caught at the partition boundary and converted into
/// [`Error::WorkerPanicked`]. Transient failures (see
/// [`Error::is_retryable`]) are retried in place up to
/// `max_partition_retries` times with deterministic backoff — the
/// partition's input snapshot is immutable, so a retry re-runs exactly
/// the failed subtree. Only when the budget is exhausted does the guard's
/// *worker abort* fire, stopping sibling partitions at their next batch
/// boundary; the mid-loop recovery driver clears that flag before a
/// replay, whereas external cancellation stays sticky. Fatal errors
/// propagate immediately, as before. The catalog and registry use
/// non-poisoning locks, so the process (and the session) stays usable.
fn run_partition(
    ctx: &OpContext<'_>,
    partition: usize,
    f: impl Fn() -> Result<Vec<Row>>,
) -> Result<Vec<Row>> {
    let attempts = ctx.config.max_partition_retries.saturating_add(1);
    let mut last_err: Option<Error> = None;
    for attempt in 1..=attempts {
        if attempt > 1 {
            if ctx.guard.is_cancelled() {
                return Err(Error::Cancelled);
            }
            if ctx.guard.worker_abort_requested() {
                // A sibling already gave up; stop retrying but surface our
                // own (transient) error so the caller sees what happened
                // in this partition, not a misleading `Cancelled`.
                break;
            }
            ctx.guard.check()?; // deadline
            backoff_sleep(ctx.config.retry_backoff_ms, attempt - 1);
            ExecStats::add(&ctx.stats.partition_retries, 1);
            ctx.tracer.note_retry();
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.faults.hit(FaultSite::Worker, ctx.stats)?;
            f()
        })) {
            Ok(Ok(rows)) => return Ok(rows),
            Ok(Err(e)) => {
                if !e.is_retryable() {
                    return Err(e);
                }
                last_err = Some(e);
            }
            Err(payload) => {
                last_err = Some(Error::WorkerPanicked {
                    partition,
                    message: panic_message(payload),
                });
            }
        }
    }
    // A transient failure survived every retry: stop sibling partitions
    // at their next boundary instead of computing results nobody reads.
    ctx.guard.abort_workers();
    Err(last_err.expect("retry loop runs at least once"))
}

/// Shared scheduling driver for [`unary_map`]/[`binary_map`]: run
/// `work(i)` for every partition index `0..count` and collect the
/// results.
///
/// Scheduling policy:
/// - serial mode (or fewer than two *occupied* partitions): everything
///   runs inline on the coordinator, in partition order — deterministic,
///   zero threads;
/// - parallel with a persistent [`WorkerPool`] installed: one pool task
///   per occupied partition (`pool_tasks` counts them; no threads are
///   spawned);
/// - parallel without a pool: one crossbeam scoped thread per occupied
///   partition (`threads_spawned` counts them).
///
/// Empty partitions never get a thread or a pool task — their closures
/// run inline on the coordinator after the parallel batch. They still go
/// through `work` (and therefore [`run_partition`]), so fault-injection
/// hit counts and retry accounting are identical in every mode.
fn map_partitions(
    ctx: &OpContext<'_>,
    count: usize,
    is_empty: &dyn Fn(usize) -> bool,
    work: &(dyn Fn(usize) -> Result<Vec<Row>> + Sync),
) -> Result<Vec<Arc<Vec<Row>>>> {
    let occupied: Vec<usize> = (0..count).filter(|&i| !is_empty(i)).collect();
    if !(ctx.config.parallel_partitions && count > 1 && occupied.len() > 1) {
        return (0..count).map(|i| work(i).map(Arc::new)).collect();
    }
    let mut results: Vec<Option<Result<Vec<Row>>>> = (0..count).map(|_| None).collect();
    if let Some(pool) = ctx.pool {
        ExecStats::add(&ctx.stats.pool_tasks, occupied.len() as u64);
        let outcomes = pool.scope(occupied.iter().map(|&i| move || work(i)).collect())?;
        for (&i, outcome) in occupied.iter().zip(outcomes) {
            results[i] = Some(outcome.unwrap_or_else(|payload| {
                // Unreachable in practice (run_partition catches panics
                // inside the worker), kept as a second line of defense.
                ctx.guard.abort_workers();
                Err(Error::WorkerPanicked {
                    partition: i,
                    message: panic_message(payload),
                })
            }));
        }
    } else {
        ExecStats::add(&ctx.stats.threads_spawned, occupied.len() as u64);
        let spawned: Vec<Result<Vec<Row>>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = occupied
                .iter()
                .map(|&i| s.spawn(move |_| work(i)))
                .collect();
            handles
                .into_iter()
                .zip(occupied.iter())
                .map(|(h, &i)| {
                    h.join().unwrap_or_else(|payload| {
                        ctx.guard.abort_workers();
                        Err(Error::WorkerPanicked {
                            partition: i,
                            message: panic_message(payload),
                        })
                    })
                })
                .collect()
        })
        .map_err(|payload| Error::WorkerPanicked {
            partition: usize::MAX,
            message: panic_message(payload),
        })?;
        for (&i, outcome) in occupied.iter().zip(spawned) {
            results[i] = Some(outcome);
        }
    }
    for (i, slot) in results.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some(work(i));
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every partition filled").map(Arc::new))
        .collect()
}

/// Run `f` over every partition of `input`, optionally in parallel.
/// Workers are panic-isolated; see [`run_partition`].
fn unary_map(
    input: &Partitioned,
    ctx: &OpContext<'_>,
    f: impl Fn(&[Row]) -> Result<Vec<Row>> + Sync,
) -> Result<Vec<Arc<Vec<Row>>>> {
    unary_map_indexed(input, ctx, |_, rows| f(rows))
}

/// Like [`unary_map`], but `f` also receives the partition index so the
/// caller can pair each partition with co-indexed external state (the
/// cached join build).
fn unary_map_indexed(
    input: &Partitioned,
    ctx: &OpContext<'_>,
    f: impl Fn(usize, &[Row]) -> Result<Vec<Row>> + Sync,
) -> Result<Vec<Arc<Vec<Row>>>> {
    map_partitions(
        ctx,
        input.parts.len(),
        &|i| input.parts[i].is_empty(),
        &|i| run_partition(ctx, i, || f(i, input.parts[i].as_slice())),
    )
}

/// Run `f` over co-indexed partition pairs, optionally in parallel.
/// Workers are panic-isolated; see [`run_partition`].
fn binary_map(
    l: &Partitioned,
    r: &Partitioned,
    ctx: &OpContext<'_>,
    f: impl Fn(&[Row], &[Row]) -> Result<Vec<Row>> + Sync,
) -> Result<Vec<Arc<Vec<Row>>>> {
    if l.parts.len() != r.parts.len() {
        return Err(Error::execution(format!(
            "partition count mismatch: {} vs {}",
            l.parts.len(),
            r.parts.len()
        )));
    }
    map_partitions(
        ctx,
        l.parts.len(),
        &|i| l.parts[i].is_empty() && r.parts[i].is_empty(),
        &|i| run_partition(ctx, i, || f(l.parts[i].as_slice(), r.parts[i].as_slice())),
    )
}

/// Redistribute rows according to `mode`, counting movement.
pub fn exchange(
    data: Partitioned,
    mode: &ExchangeMode,
    ctx: &OpContext<'_>,
) -> Result<Partitioned> {
    ctx.faults.hit(FaultSite::Exchange, ctx.stats)?;
    let parts = ctx.partitions();
    let schema = data.schema.clone();
    match mode {
        ExchangeMode::Hash(keys) => {
            let mut buckets: Vec<Vec<Row>> = (0..parts).map(|_| Vec::new()).collect();
            let mut moved = 0u64;
            for (src, part) in data.parts.iter().enumerate() {
                for row in part.iter() {
                    let key: Vec<Value> = keys
                        .iter()
                        .map(|k| k.evaluate(row))
                        .collect::<Result<_>>()?;
                    let target = partition_for_key(&key, parts)?;
                    if target != src {
                        moved += 1;
                    }
                    buckets[target].push(row.clone());
                }
            }
            ctx.guard.charge_rows_moved(moved)?;
            ExecStats::add(&ctx.stats.rows_moved, moved);
            ctx.tracer.note_rows_moved(moved);
            Ok(Partitioned {
                schema,
                parts: buckets.into_iter().map(Arc::new).collect(),
            })
        }
        ExchangeMode::Gather => {
            let moved: u64 = data
                .parts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 0)
                .map(|(_, p)| p.len() as u64)
                .sum();
            ctx.guard.charge_rows_moved(moved)?;
            ExecStats::add(&ctx.stats.rows_moved, moved);
            ctx.tracer.note_rows_moved(moved);
            let rows = data.gather();
            let mut out: Vec<Arc<Vec<Row>>> = (0..parts).map(|_| Arc::new(Vec::new())).collect();
            out[0] = Arc::new(rows);
            Ok(Partitioned { schema, parts: out })
        }
        ExchangeMode::Broadcast => {
            let rows = data.gather();
            let copies = rows.len() as u64 * (parts as u64).saturating_sub(1);
            ctx.guard.charge_rows_moved(copies)?;
            ExecStats::add(&ctx.stats.rows_broadcast, copies);
            ctx.tracer.note_rows_moved(copies);
            let shared = Arc::new(rows);
            Ok(Partitioned {
                schema,
                parts: (0..parts).map(|_| Arc::clone(&shared)).collect(),
            })
        }
    }
}

fn combine_rows(left: &[Value], right: &[Value]) -> Row {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out.into_boxed_slice()
}

fn null_row(width: usize) -> Vec<Value> {
    vec![Value::Null; width]
}

/// Hash join of one co-partitioned pair. `lwidth`/`rwidth` are the schema
/// widths, needed to pad outer-join rows when a partition is empty.
#[allow(clippy::too_many_arguments)]
fn hash_join_partition(
    lrows: &[Row],
    rrows: &[Row],
    join_type: JoinType,
    left_keys: &[PlanExpr],
    right_keys: &[PlanExpr],
    residual: Option<&PlanExpr>,
    lwidth: usize,
    rwidth: usize,
) -> Result<Vec<Row>> {
    let table = build_join_table(rrows, right_keys)?;
    probe_join_partition(
        lrows, rrows, &table, join_type, left_keys, residual, lwidth, rwidth,
    )
}

/// Build-side hash table for one partition: join key → row indices into
/// `rrows`. NULL keys never participate in matches.
fn build_join_table(rrows: &[Row], right_keys: &[PlanExpr]) -> Result<JoinTable> {
    let mut table: JoinTable = HashMap::with_capacity(rrows.len());
    for (i, row) in rrows.iter().enumerate() {
        let key: Vec<Value> = right_keys
            .iter()
            .map(|k| k.evaluate(row))
            .collect::<Result<_>>()?;
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(i);
    }
    Ok(table)
}

/// Probe one partition against a prebuilt hash table over `rrows`. The
/// `matched_right` bookkeeping for Right/Full joins is per-call state, so
/// a build shared across iterations by the join-state cache stays
/// read-only.
#[allow(clippy::too_many_arguments)]
fn probe_join_partition(
    lrows: &[Row],
    rrows: &[Row],
    table: &JoinTable,
    join_type: JoinType,
    left_keys: &[PlanExpr],
    residual: Option<&PlanExpr>,
    lwidth: usize,
    rwidth: usize,
) -> Result<Vec<Row>> {
    let mut matched_right = vec![false; rrows.len()];
    let mut out = Vec::new();
    for lrow in lrows {
        let key: Vec<Value> = left_keys
            .iter()
            .map(|k| k.evaluate(lrow))
            .collect::<Result<_>>()?;
        let mut found = false;
        if !key.iter().any(Value::is_null) {
            if let Some(candidates) = table.get(&key) {
                for &ri in candidates {
                    let combined = combine_rows(lrow, &rrows[ri]);
                    let keep = match residual {
                        Some(p) => p.matches(&combined)?,
                        None => true,
                    };
                    if keep {
                        found = true;
                        matched_right[ri] = true;
                        out.push(combined);
                    }
                }
            }
        }
        if !found && matches!(join_type, JoinType::Left | JoinType::Full) {
            out.push(combine_rows(lrow, &null_row(rwidth)));
        }
    }
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (i, rrow) in rrows.iter().enumerate() {
            if !matched_right[i] {
                out.push(combine_rows(&null_row(lwidth), rrow));
            }
        }
    }
    Ok(out)
}

/// Hash join against a loop-invariant build side, through the
/// [`JoinStateCache`].
///
/// On a hit (`join_builds_reused`) the right subtree is not executed at
/// all — no temp scan, no exchange, no re-hash; the probe runs against
/// the cached partitioned build. On a miss (`join_builds`) the right
/// subtree executes once, the per-partition hash tables are built under
/// pinned transient tracking, and the result is cached as an evictable
/// `join_build:<name>` region keyed by the source temp's buffer identity.
#[allow(clippy::too_many_arguments)]
fn cached_hash_join(
    l: &Partitioned,
    right: &PhysicalPlan,
    name: &str,
    join_type: JoinType,
    left_keys: &[PlanExpr],
    right_keys: &[PlanExpr],
    residual: Option<&PlanExpr>,
    ctx: &OpContext<'_>,
) -> Result<Vec<Arc<Vec<Row>>>> {
    ExecStats::add(&ctx.stats.joins_executed, 1);
    let entry: Arc<CachedBuild> = match ctx.join_cache.lookup(name, ctx.registry) {
        Some(entry) => {
            ExecStats::add(&ctx.stats.join_builds_reused, 1);
            entry
        }
        None => {
            let r = execute(right, ctx)?;
            let tables = with_transient_tracking(
                ctx,
                "hash join build",
                RegionKind::HashJoinBuild,
                r.estimated_bytes(),
                || {
                    r.parts
                        .iter()
                        .map(|p| build_join_table(p, right_keys))
                        .collect::<Result<Vec<JoinTable>>>()
                },
            )?;
            ExecStats::add(&ctx.stats.join_builds, 1);
            ctx.join_cache.insert(name, r, tables, ctx.registry)
        }
    };
    if entry.build.parts.len() != l.parts.len() {
        return Err(Error::execution(format!(
            "partition count mismatch: {} vs {}",
            l.parts.len(),
            entry.build.parts.len()
        )));
    }
    let (lwidth, rwidth) = (l.schema.len(), entry.build.schema.len());
    let entry_ref = &entry;
    unary_map_indexed(l, ctx, |i, lrows| {
        probe_join_partition(
            lrows,
            &entry_ref.build.parts[i],
            &entry_ref.tables[i],
            join_type,
            left_keys,
            residual,
            lwidth,
            rwidth,
        )
    })
}

/// Nested-loop join over gathered inputs.
fn nested_loop_join(
    lrows: &[Row],
    rrows: &[Row],
    join_type: JoinType,
    residual: Option<&PlanExpr>,
    lwidth: usize,
    rwidth: usize,
) -> Result<Vec<Row>> {
    let mut matched_right = vec![false; rrows.len()];
    let mut out = Vec::new();
    for lrow in lrows {
        let mut found = false;
        for (ri, rrow) in rrows.iter().enumerate() {
            let combined = combine_rows(lrow, rrow);
            let keep = match residual {
                Some(p) => p.matches(&combined)?,
                None => true,
            };
            if keep {
                found = true;
                matched_right[ri] = true;
                out.push(combined);
            }
        }
        if !found && matches!(join_type, JoinType::Left | JoinType::Full) {
            out.push(combine_rows(lrow, &null_row(rwidth)));
        }
    }
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (ri, rrow) in rrows.iter().enumerate() {
            if !matched_right[ri] {
                out.push(combine_rows(&null_row(lwidth), rrow));
            }
        }
    }
    Ok(out)
}

/// Evaluate one aggregate's argument(s) against a row and feed the
/// accumulator: two-argument aggregates (ARG_MIN/ARG_MAX) evaluate both
/// the value and the ordering key, everything else the single argument
/// (`Value::Null` for `COUNT(*)`, which ignores its input).
fn update_accumulator(agg: &AggExpr, acc: &mut Accumulator, row: &Row) -> Result<()> {
    match (&agg.arg, &agg.by) {
        (Some(val), Some(key)) => acc.update_pair(&val.evaluate(row)?, &key.evaluate(row)?),
        (Some(val), None) => acc.update(&val.evaluate(row)?),
        (None, _) => acc.update(&Value::Null),
    }
}

/// Grouped aggregation of one (already key-exchanged) partition.
fn grouped_aggregate_partition(
    rows: &[Row],
    group: &[PlanExpr],
    aggs: &[AggExpr],
) -> Result<Vec<Row>> {
    // Preserve first-seen group order for deterministic output.
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for row in rows {
        let key: Vec<Value> = group
            .iter()
            .map(|g| g.evaluate(row))
            .collect::<Result<_>>()?;
        let slot = match index.get(&key) {
            Some(&i) => i,
            None => {
                let i = groups.len();
                index.insert(key.clone(), i);
                groups.push((key, aggs.iter().map(Accumulator::new).collect()));
                i
            }
        };
        let accs = &mut groups[slot].1;
        for (agg, acc) in aggs.iter().zip(accs.iter_mut()) {
            update_accumulator(agg, acc, row)?;
        }
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut row = key;
        row.extend(accs.into_iter().map(Accumulator::finish));
        out.push(row.into_boxed_slice());
    }
    Ok(out)
}

/// Phase 1 of two-phase aggregation: aggregate one partition locally and
/// emit `[group keys..., partial states...]` rows.
fn partial_aggregate_partition(
    rows: &[Row],
    group: &[PlanExpr],
    aggs: &[AggExpr],
) -> Result<Vec<Row>> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for row in rows {
        let key: Vec<Value> = group
            .iter()
            .map(|g| g.evaluate(row))
            .collect::<Result<_>>()?;
        let slot = match index.get(&key) {
            Some(&i) => i,
            None => {
                let i = groups.len();
                index.insert(key.clone(), i);
                groups.push((key, aggs.iter().map(Accumulator::new).collect()));
                i
            }
        };
        for (agg, acc) in aggs.iter().zip(groups[slot].1.iter_mut()) {
            update_accumulator(agg, acc, row)?;
        }
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut row = key;
        for acc in accs {
            row.extend(acc.into_state());
        }
        out.push(row.into_boxed_slice());
    }
    Ok(out)
}

/// Phase 2 of two-phase aggregation: merge partial-state rows of one
/// (key-exchanged) partition into final results.
fn final_aggregate_partition(rows: &[Row], group_len: usize, aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    for row in rows {
        let key: Vec<Value> = row[..group_len].to_vec();
        let slot = match index.get(&key) {
            Some(&i) => i,
            None => {
                let i = groups.len();
                index.insert(key.clone(), i);
                groups.push((key, aggs.iter().map(Accumulator::new).collect()));
                i
            }
        };
        let mut offset = group_len;
        for (agg, acc) in aggs.iter().zip(groups[slot].1.iter_mut()) {
            let width = Accumulator::state_width(agg.func);
            acc.merge_state(&row[offset..offset + width])?;
            offset += width;
        }
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut row = key;
        row.extend(accs.into_iter().map(Accumulator::finish));
        out.push(row.into_boxed_slice());
    }
    Ok(out)
}

/// Global aggregation: partial accumulators per partition, merged, one
/// output row in partition 0 (even over empty input).
fn global_aggregate(
    data: &Partitioned,
    aggs: &[AggExpr],
    schema: spinner_common::SchemaRef,
    ctx: &OpContext<'_>,
) -> Result<Partitioned> {
    let mut final_accs: Vec<Accumulator> = aggs.iter().map(Accumulator::new).collect();
    for part in &data.parts {
        let mut partial: Vec<Accumulator> = aggs.iter().map(Accumulator::new).collect();
        for row in part.iter() {
            for (agg, acc) in aggs.iter().zip(partial.iter_mut()) {
                update_accumulator(agg, acc, row)?;
            }
        }
        for (f, p) in final_accs.iter_mut().zip(partial) {
            f.merge(p)?;
        }
    }
    let row: Vec<Value> = final_accs.into_iter().map(Accumulator::finish).collect();
    let mut parts: Vec<Arc<Vec<Row>>> = (0..ctx.partitions())
        .map(|_| Arc::new(Vec::new()))
        .collect();
    parts[0] = Arc::new(vec![row.into_boxed_slice()]);
    Ok(Partitioned { schema, parts })
}

/// Distinct set operations over one co-partitioned pair.
fn set_op_partition(lrows: &[Row], rrows: &[Row], op: SetOpKind, all: bool) -> Result<Vec<Row>> {
    match (op, all) {
        (SetOpKind::Union, true) => {
            let mut out = Vec::with_capacity(lrows.len() + rrows.len());
            out.extend_from_slice(lrows);
            out.extend_from_slice(rrows);
            Ok(out)
        }
        (SetOpKind::Union, false) => {
            let mut seen: HashSet<Row> = HashSet::with_capacity(lrows.len() + rrows.len());
            let mut out = Vec::new();
            for r in lrows.iter().chain(rrows) {
                if seen.insert(r.clone()) {
                    out.push(r.clone());
                }
            }
            Ok(out)
        }
        (SetOpKind::Except, false) => {
            let right: HashSet<&Row> = rrows.iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            let mut out = Vec::new();
            for r in lrows {
                if !right.contains(r) && seen.insert(r.clone()) {
                    out.push(r.clone());
                }
            }
            Ok(out)
        }
        (SetOpKind::Except, true) => {
            // Bag difference: each right occurrence cancels one left.
            let mut counts: HashMap<&Row, usize> = HashMap::new();
            for r in rrows {
                *counts.entry(r).or_insert(0) += 1;
            }
            let mut out = Vec::new();
            for r in lrows {
                match counts.get_mut(r) {
                    Some(c) if *c > 0 => *c -= 1,
                    _ => out.push(r.clone()),
                }
            }
            Ok(out)
        }
        (SetOpKind::Intersect, false) => {
            let right: HashSet<&Row> = rrows.iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            let mut out = Vec::new();
            for r in lrows {
                if right.contains(r) && seen.insert(r.clone()) {
                    out.push(r.clone());
                }
            }
            Ok(out)
        }
        (SetOpKind::Intersect, true) => {
            let mut counts: HashMap<&Row, usize> = HashMap::new();
            for r in rrows {
                *counts.entry(r).or_insert(0) += 1;
            }
            let mut out = Vec::new();
            for r in lrows {
                if let Some(c) = counts.get_mut(r) {
                    if *c > 0 {
                        *c -= 1;
                        out.push(r.clone());
                    }
                }
            }
            Ok(out)
        }
    }
}

/// Sort rows in place by the given keys.
pub fn sort_rows(rows: &mut [Row], keys: &[SortKey]) -> Result<()> {
    // Precompute key tuples to avoid re-evaluating expressions in the
    // comparator (and to surface evaluation errors before sorting).
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.iter() {
        let k: Vec<Value> = keys
            .iter()
            .map(|s| s.expr.evaluate(row))
            .collect::<Result<_>>()?;
        keyed.push((k, row.clone()));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let (a, b) = (&ka[i], &kb[i]);
            let ord = match (a.is_null(), b.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => {
                    if key.nulls_first {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                }
                (false, true) => {
                    if key.nulls_first {
                        std::cmp::Ordering::Greater
                    } else {
                        std::cmp::Ordering::Less
                    }
                }
                (false, false) => {
                    let o = a.cmp_total(b);
                    if key.asc {
                        o
                    } else {
                        o.reverse()
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    for (slot, (_, row)) in rows.iter_mut().zip(keyed) {
        *slot = row;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::row_of;

    #[test]
    fn sort_rows_respects_desc_and_nulls() {
        let mut rows = vec![
            row_of([Value::Int(1)]),
            row_of([Value::Null]),
            row_of([Value::Int(3)]),
        ];
        let keys = vec![SortKey {
            expr: PlanExpr::column(0, "x"),
            asc: false,
            nulls_first: false,
        }];
        sort_rows(&mut rows, &keys).unwrap();
        assert_eq!(rows[0][0], Value::Int(3));
        assert_eq!(rows[1][0], Value::Int(1));
        assert!(rows[2][0].is_null());
    }

    #[test]
    fn nested_loop_left_join_pads() {
        let l = vec![row_of([Value::Int(1)]), row_of([Value::Int(2)])];
        let r = vec![row_of([Value::Int(1), Value::Int(10)])];
        let pred = PlanExpr::column(0, "l")
            .binary(spinner_plan::expr::BinaryOp::Eq, PlanExpr::column(1, "r"));
        let out = nested_loop_join(&l, &r, JoinType::Left, Some(&pred), 1, 2).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[1][1].is_null()); // unmatched row padded
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let l = vec![row_of([Value::Null]), row_of([Value::Int(1)])];
        let r = vec![row_of([Value::Null]), row_of([Value::Int(1)])];
        let keys = vec![PlanExpr::column(0, "k")];
        let out = hash_join_partition(&l, &r, JoinType::Inner, &keys, &keys, None, 1, 1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(1));
    }

    #[test]
    fn hash_join_full_outer_emits_both_sides() {
        let l = vec![row_of([Value::Int(1)]), row_of([Value::Int(2)])];
        let r = vec![row_of([Value::Int(2)]), row_of([Value::Int(3)])];
        let keys = vec![PlanExpr::column(0, "k")];
        let mut out =
            hash_join_partition(&l, &r, JoinType::Full, &keys, &keys, None, 1, 1).unwrap();
        out.sort();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn except_all_is_bag_difference() {
        let l = vec![
            row_of([Value::Int(1)]),
            row_of([Value::Int(1)]),
            row_of([Value::Int(2)]),
        ];
        let r = vec![row_of([Value::Int(1)])];
        let out = set_op_partition(&l, &r, SetOpKind::Except, true).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn union_distinct_dedupes_across_sides() {
        let l = vec![row_of([Value::Int(1)])];
        let r = vec![row_of([Value::Int(1)]), row_of([Value::Int(2)])];
        let out = set_op_partition(&l, &r, SetOpKind::Union, false).unwrap();
        assert_eq!(out.len(), 2);
    }
}
