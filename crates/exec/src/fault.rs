//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultInjector`] is built from the `faults` list of an
//! `EngineConfig` (empty = disabled, the default — the hot-path cost is
//! one slice-emptiness check per site hit). The executor and operators
//! call [`FaultInjector::hit`] at the guarded pipeline sites
//! ([`FaultSite`]); when a configured fault's trigger matches, the
//! injector either returns `Error::FaultInjected`, sleeps (to make
//! timeout tests deterministic without huge datasets), or panics (to
//! exercise the worker panic-isolation path).
//!
//! Determinism: triggers are hit-count based (`Nth`) or driven by a
//! PRNG seeded from the config (`Seeded`), never by wall-clock or global
//! randomness, so a failing chaos run reproduces exactly.

use std::sync::atomic::{AtomicU64, Ordering};

use spinner_common::{
    EngineConfig, Error, FaultConfig, FaultKind, FaultSite, FaultTrigger, Result,
};

use crate::stats::ExecStats;

/// Runtime state for one configured fault.
#[derive(Debug)]
struct PlanState {
    cfg: FaultConfig,
    /// Times this site has been hit (for `Nth` triggers).
    hits: AtomicU64,
    /// PRNG state (for `Seeded` triggers); advanced atomically per hit.
    rng: AtomicU64,
}

/// Checks pipeline sites against the configured fault plans.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plans: Vec<PlanState>,
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x
}

/// Stable lowercase site name used in error messages.
pub fn site_name(site: FaultSite) -> &'static str {
    match site {
        FaultSite::Exchange => "exchange",
        FaultSite::Materialize => "materialize",
        FaultSite::Rename => "rename",
        FaultSite::LoopIteration => "loop",
        FaultSite::Worker => "worker",
        FaultSite::Checkpoint => "checkpoint",
        FaultSite::Recovery => "recovery",
        FaultSite::SpillWrite => "spill_write",
        FaultSite::SpillRead => "spill_read",
        FaultSite::Accept => "accept",
        FaultSite::SessionRead => "session_read",
        FaultSite::SessionWrite => "session_write",
        FaultSite::TornWrite => "torn_write",
        FaultSite::BitFlip => "bit_flip",
        FaultSite::DiskFull => "disk_full",
        FaultSite::FsyncFail => "fsync_fail",
        FaultSite::ManifestCommit => "manifest_commit",
    }
}

impl FaultInjector {
    /// An injector that never fires (no configured faults).
    pub fn disabled() -> Self {
        FaultInjector { plans: Vec::new() }
    }

    /// Build from the `faults` list of a config.
    pub fn from_config(config: &EngineConfig) -> Self {
        FaultInjector {
            plans: config
                .faults
                .iter()
                .map(|cfg| PlanState {
                    cfg: cfg.clone(),
                    hits: AtomicU64::new(0),
                    rng: AtomicU64::new(match cfg.trigger {
                        FaultTrigger::Seeded { seed, .. } => splitmix(seed),
                        FaultTrigger::Nth(_) => 0,
                    }),
                })
                .collect(),
        }
    }

    /// Whether any fault plans are configured.
    pub fn is_enabled(&self) -> bool {
        !self.plans.is_empty()
    }

    /// Record a hit of `site`; fires the configured fault when its
    /// trigger matches. A fired fault bumps `stats.faults_injected` and
    /// then errors, sleeps or panics according to its kind.
    pub fn hit(&self, site: FaultSite, stats: &ExecStats) -> Result<()> {
        if self.plans.is_empty() {
            return Ok(());
        }
        for plan in &self.plans {
            if plan.cfg.site != site {
                continue;
            }
            let fire = match plan.cfg.trigger {
                FaultTrigger::Nth(n) => plan.hits.fetch_add(1, Ordering::Relaxed) + 1 == n,
                FaultTrigger::Seeded {
                    probability_ppm, ..
                } => {
                    let draw = plan
                        .rng
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(xorshift(s)))
                        .map(xorshift)
                        .unwrap_or(0);
                    // Widening multiply keeps the draw uniform in
                    // [0, 1_000_000) without modulo bias.
                    let bucket = ((u128::from(draw) * 1_000_000u128) >> 64) as u64;
                    bucket < u64::from(probability_ppm)
                }
            };
            if fire {
                ExecStats::add(&stats.faults_injected, 1);
                match plan.cfg.kind {
                    FaultKind::Error => {
                        return Err(Error::FaultInjected {
                            site: site_name(site).to_string(),
                        });
                    }
                    FaultKind::DelayMs(ms) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    FaultKind::Panic => {
                        panic!("injected panic at {}", site_name(site));
                    }
                    FaultKind::Abort => {
                        // SIGKILL-equivalent: no unwinding, no destructors,
                        // no atexit — spill/journal files stay on disk
                        // exactly as a hard crash would leave them.
                        std::process::abort();
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_common::FaultConfig;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        let stats = ExecStats::new();
        for _ in 0..1000 {
            assert!(inj.hit(FaultSite::Exchange, &stats).is_ok());
        }
        assert_eq!(stats.snapshot().faults_injected, 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let config =
            EngineConfig::default().with_fault(FaultConfig::fail_nth(FaultSite::Materialize, 3));
        let inj = FaultInjector::from_config(&config);
        let stats = ExecStats::new();
        assert!(inj.hit(FaultSite::Materialize, &stats).is_ok());
        assert!(inj.hit(FaultSite::Materialize, &stats).is_ok());
        let err = inj.hit(FaultSite::Materialize, &stats).unwrap_err();
        assert_eq!(
            err,
            Error::FaultInjected {
                site: "materialize".into()
            }
        );
        // Past the n-th hit, it never fires again.
        for _ in 0..10 {
            assert!(inj.hit(FaultSite::Materialize, &stats).is_ok());
        }
        assert_eq!(stats.snapshot().faults_injected, 1);
    }

    #[test]
    fn sites_are_independent() {
        let config =
            EngineConfig::default().with_fault(FaultConfig::fail_nth(FaultSite::Rename, 1));
        let inj = FaultInjector::from_config(&config);
        let stats = ExecStats::new();
        assert!(inj.hit(FaultSite::Exchange, &stats).is_ok());
        assert!(inj.hit(FaultSite::LoopIteration, &stats).is_ok());
        assert!(inj.hit(FaultSite::Rename, &stats).is_err());
    }

    #[test]
    fn seeded_trigger_is_deterministic_and_calibrated() {
        let config = EngineConfig::default().with_fault(FaultConfig::seeded(
            FaultSite::Exchange,
            FaultKind::Error,
            42,
            500_000, // 50%
        ));
        let run = || {
            let inj = FaultInjector::from_config(&config);
            let stats = ExecStats::new();
            (0..64)
                .map(|_| inj.hit(FaultSite::Exchange, &stats).is_err())
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the same fault pattern");
        let fired = a.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&fired), "50% of 64 hits, got {fired}");
    }

    #[test]
    fn always_seeded_fires_every_hit() {
        let config = EngineConfig::default().with_fault(FaultConfig::seeded(
            FaultSite::LoopIteration,
            FaultKind::Error,
            7,
            1_000_000,
        ));
        let inj = FaultInjector::from_config(&config);
        let stats = ExecStats::new();
        for _ in 0..16 {
            assert!(inj.hit(FaultSite::LoopIteration, &stats).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "injected panic at worker")]
    fn panic_kind_panics() {
        let config =
            EngineConfig::default().with_fault(FaultConfig::panic_nth(FaultSite::Worker, 1));
        let inj = FaultInjector::from_config(&config);
        let stats = ExecStats::new();
        let _ = inj.hit(FaultSite::Worker, &stats);
    }
}
