//! Persistent worker pool for parallel partition execution.
//!
//! The spawn-per-operator parallel path creates a fresh scoped OS thread
//! for every partition of every operator invocation — dozens of spawns
//! *per iteration* of an iterative CTE. This module keeps a fixed set of
//! long-lived workers (one per configured partition) alive for the
//! lifetime of a `Database` and hands them per-partition closures
//! instead, so the steady-state loop body spawns zero threads.
//!
//! [`WorkerPool::scope`] mirrors `crossbeam::thread::scope` semantics:
//! it accepts non-`'static` closures, blocks until every submitted task
//! has finished, and reports each task's outcome as a
//! [`std::thread::Result`] so callers keep the exact panic-isolation
//! handling (`Err(payload)` on panic) they already use for spawned
//! threads. Cancellation and per-partition retry are unchanged: the
//! closures submitted by the operators run `run_partition`, which checks
//! the `QueryGuard` and drives the retry/backoff loop exactly as it does
//! on a spawned thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A queued unit of work. Tasks are lifetime-erased to `'static`; the
/// safety argument lives in [`WorkerPool::scope`].
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the pool handle and its workers.
struct Shared {
    /// Pending tasks plus the shutdown flag, guarded together so a worker
    /// never misses a shutdown edge between checks.
    queue: Mutex<(VecDeque<Task>, bool)>,
    /// Signalled when tasks arrive or shutdown begins.
    available: Condvar,
}

/// Per-`scope` completion state: result slots plus a countdown latch.
struct ScopeState<R> {
    /// `(slot per task, tasks still running)` under one lock so the final
    /// decrement and the waiter's check cannot interleave badly.
    slots: Mutex<(Vec<Option<std::thread::Result<R>>>, usize)>,
    /// Signalled when the last task of the scope finishes.
    done: Condvar,
}

/// A fixed-size pool of long-lived worker threads executing scoped tasks.
///
/// Created once per `Database` (from `EngineConfig::partitions`) and
/// shared by every statement; dropped (joining its workers) when the
/// database reconfigures or shuts down.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one) that live until the pool is
    /// dropped.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spinner-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every closure in `tasks` on the pool, blocking until all have
    /// finished, and return their outcomes in submission order.
    ///
    /// A task that panics yields `Err(payload)` — the panic is caught on
    /// the worker (which survives and keeps serving tasks) and surfaced
    /// here exactly like a `crossbeam` handle join, so callers reuse
    /// their existing `WorkerPanicked` translation.
    pub fn scope<'env, R, F>(&self, tasks: Vec<F>) -> Vec<std::thread::Result<R>>
    where
        R: Send + 'env,
        F: FnOnce() -> R + Send + 'env,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let state: Arc<ScopeState<R>> = Arc::new(ScopeState {
            slots: Mutex::new(((0..n).map(|_| None).collect(), n)),
            done: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool queue");
            for (i, task) in tasks.into_iter().enumerate() {
                let state = Arc::clone(&state);
                let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    let mut slots = state.slots.lock().expect("scope slots");
                    slots.0[i] = Some(outcome);
                    slots.1 -= 1;
                    if slots.1 == 0 {
                        state.done.notify_all();
                    }
                });
                // SAFETY: the queue requires `'static` tasks but `wrapped`
                // borrows from `'env`. This function does not return until
                // the countdown latch below reaches zero, i.e. until every
                // task enqueued here has run to completion and dropped its
                // closure — so no `'env` borrow is ever used after `'env`
                // ends. The transmute only erases the lifetime; layout is
                // identical. This is the standard scoped-pool technique
                // (`std::thread::scope` does the morally equivalent erasure
                // internally).
                let wrapped: Task = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped)
                };
                queue.0.push_back(wrapped);
            }
            self.shared.available.notify_all();
        }
        let mut slots = state.slots.lock().expect("scope slots");
        while slots.1 > 0 {
            slots = state.done.wait(slots).expect("scope slots");
        }
        slots
            .0
            .drain(..)
            .map(|r| r.expect("latch guarantees every slot is filled"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue");
            queue.1 = true;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker body: pop and run tasks until shutdown. The pop loop drains any
/// remaining queued tasks before honouring shutdown so a racing `scope`
/// caller is never left waiting on a latch nobody will decrement.
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(task) = queue.0.pop_front() {
                    break task;
                }
                if queue.1 {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue");
            }
        };
        // Belt-and-braces: scope's wrapper already catches panics, but a
        // worker must never die (or poison anything) even if a future task
        // kind forgets to.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_and_preserves_order() {
        let pool = WorkerPool::new(4);
        let data = [1i64, 2, 3, 4, 5, 6, 7, 8];
        let tasks: Vec<_> = data.iter().map(|&x| move || x * 10).collect();
        let results: Vec<i64> = pool
            .scope(tasks)
            .into_iter()
            .map(|r| r.expect("no panic"))
            .collect();
        assert_eq!(results, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn tasks_run_on_pool_threads_not_the_caller() {
        let pool = WorkerPool::new(2);
        let names: Vec<String> = pool
            .scope(vec![
                || std::thread::current().name().unwrap_or("").to_string(),
                || std::thread::current().name().unwrap_or("").to_string(),
            ])
            .into_iter()
            .map(|r| r.expect("no panic"))
            .collect();
        for name in names {
            assert!(
                name.starts_with("spinner-worker-"),
                "task ran on {name:?}, not a pool worker"
            );
        }
    }

    #[test]
    fn panicking_task_is_isolated_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let outcomes = pool.scope(vec![
            Box::new(|| 1i64) as Box<dyn FnOnce() -> i64 + Send>,
            Box::new(|| panic!("boom")),
            Box::new(|| 3i64),
        ]);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        assert!(outcomes[2].is_ok());
        // The pool keeps working after a task panicked.
        let again = pool.scope(vec![|| 7i64]);
        assert_eq!(*again[0].as_ref().expect("pool survived"), 7);
    }

    #[test]
    fn scope_borrows_caller_state() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..16)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let results = pool.scope(tasks);
        assert_eq!(results.len(), 16);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn empty_scope_is_a_no_op() {
        let pool = WorkerPool::new(1);
        let results: Vec<std::thread::Result<()>> = pool.scope(Vec::<fn()>::new());
        assert!(results.is_empty());
    }

    #[test]
    fn concurrent_scopes_from_multiple_threads_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let tasks: Vec<_> = (0..8).map(|i| move || (t * 100 + i) as i64).collect();
                    pool.scope(tasks)
                        .into_iter()
                        .map(|r| r.expect("no panic"))
                        .sum::<i64>()
                })
            })
            .collect();
        for (t, handle) in handles.into_iter().enumerate() {
            let expected: i64 = (0..8).map(|i| (t as i64) * 100 + i).sum();
            assert_eq!(handle.join().expect("scope thread"), expected);
        }
    }
}
